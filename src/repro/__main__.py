"""``python -m repro`` — launch the FUDJ SQL shell."""

import sys

from repro.cli import main

sys.exit(main())
