"""Word tokenization used by the Text-Similarity FUDJ.

The paper's ``tokenize(text)`` / SQL ``word_tokens`` returns the set of
words in a text.  Set semantics matter: Jaccard similarity and the prefix
filter both operate on token *sets*, so duplicates within one record are
dropped here once rather than by every caller.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> frozenset:
    """Lower-cased distinct word tokens of ``text`` as a frozenset."""
    return frozenset(_WORD_RE.findall(text.lower()))


def word_tokens(text: str) -> list:
    """Deterministically ordered token list (SQL ``word_tokens`` builtin).

    Sorted so that repeated calls on equal texts produce equal lists; the
    similarity functions accept either lists or sets.
    """
    return sorted(tokenize(text))
