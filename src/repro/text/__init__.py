"""Text substrate: tokenization, Jaccard similarity, prefix filtering."""

from repro.text.tokenizer import tokenize, word_tokens
from repro.text.similarity import jaccard_similarity, prefix_length

__all__ = ["tokenize", "word_tokens", "jaccard_similarity", "prefix_length"]
