"""Set-similarity measures and the prefix-filter bound.

``jaccard_similarity`` is the paper's verification predicate;
``prefix_length`` is the bound from the prefix-filtering literature used by
the Text-Similarity FUDJ ``assign``: two sets with Jaccard similarity >= t
must share at least one token among the first ``p`` tokens of each set in
a global token ordering, where ``p = l - ceil(t * l) + 1``.
"""

from __future__ import annotations

import math


def jaccard_similarity(a, b) -> float:
    """Jaccard similarity ``|a & b| / |a | b|`` of two token collections.

    Accepts any iterables; empty-vs-empty is defined as 1.0 (identical),
    empty-vs-non-empty as 0.0.
    """
    sa = a if isinstance(a, (set, frozenset)) else set(a)
    sb = b if isinstance(b, (set, frozenset)) else set(b)
    if not sa and not sb:
        return 1.0
    inter = len(sa & sb)
    union = len(sa) + len(sb) - inter
    return inter / union


def prefix_length(set_size: int, threshold: float) -> int:
    """Prefix-filter length for a set of ``set_size`` tokens.

    ``p = l - ceil(t * l) + 1`` (paper §V-B); clamped to ``[0, l]`` so the
    degenerate cases (empty sets, threshold 0 or 1) stay well-defined.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"similarity threshold out of [0, 1]: {threshold}")
    if set_size <= 0:
        return 0
    p = set_size - math.ceil(threshold * set_size) + 1
    return max(0, min(set_size, p))


def overlap_lower_bound(size_a: int, size_b: int, threshold: float) -> int:
    """Minimum token overlap implied by Jaccard >= threshold.

    Used by length filtering: ``|a & b| >= ceil(t/(1+t) * (|a| + |b|))``.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"similarity threshold out of [0, 1]: {threshold}")
    return math.ceil(threshold / (1.0 + threshold) * (size_a + size_b))
