"""Hand-written built-in join operators (the paper's comparison baseline).

These implement the same three algorithms as :mod:`repro.joins`, but the
way a DBMS developer would: as dedicated physical operators wired straight
into the engine, reading engine values natively (no FUDJ translation
layer) and fusing the summarize/assign/combine phases.  They are the
"Built-in" series of Figures 9/10/12 and the right-hand column of
Table II — which is why they are deliberately *not* refactored to share
code with the FUDJ framework: the paper's productivity claim is precisely
that each of these takes ~10x more code than its FUDJ twin.

``install_builtin_joins(db)`` registers the operator factories with a
:class:`~repro.database.Database` so that ``mode="builtin"`` queries use
them.
"""

from repro.builtin.spatial_operator import (
    AdvancedSpatialJoinOperator,
    BuiltinSpatialJoinOperator,
)
from repro.builtin.interval_operator import BuiltinIntervalJoinOperator
from repro.builtin.text_operator import BuiltinTextSimilarityJoinOperator


def install_builtin_joins(db, spatial_n: int = 64, interval_buckets: int = 100,
                          plane_sweep: bool = False) -> None:
    """Register built-in operator factories for the paper's three joins.

    Factories match the names the FUDJ experiments register
    (``st_contains``, ``st_intersects``, ``overlapping_interval``,
    ``similarity_jaccard``), so the same SQL runs in all three modes.

    Args:
        db: the Database to install into.
        spatial_n: grid size for the spatial operators.
        interval_buckets: timeline granule count for the interval operator.
        plane_sweep: use the advanced plane-sweep spatial operator
            (paper §VII-F) instead of the per-tile nested verification.
    """
    spatial_cls = (
        AdvancedSpatialJoinOperator if plane_sweep else BuiltinSpatialJoinOperator
    )

    def spatial_contains(left, right, lkey, rkey, params):
        n = int(params[0]) if params else spatial_n
        return spatial_cls(left, right, lkey, rkey, n=n, predicate="contains")

    def spatial_intersects(left, right, lkey, rkey, params):
        n = int(params[0]) if params else spatial_n
        return spatial_cls(left, right, lkey, rkey, n=n, predicate="intersects")

    def interval(left, right, lkey, rkey, params):
        n = int(params[0]) if params else interval_buckets
        return BuiltinIntervalJoinOperator(left, right, lkey, rkey, num_buckets=n)

    def text(left, right, lkey, rkey, params):
        threshold = float(params[0]) if params else 0.9
        return BuiltinTextSimilarityJoinOperator(
            left, right, lkey, rkey, threshold=threshold
        )

    db.register_builtin_join("st_contains", spatial_contains)
    db.register_builtin_join("st_intersects", spatial_intersects)
    db.register_builtin_join("overlapping_interval", interval)
    db.register_builtin_join("interval_overlapping", interval)
    db.register_builtin_join("similarity_jaccard", text)
    db.register_builtin_join("jaccard_similarity", text)


__all__ = [
    "BuiltinSpatialJoinOperator",
    "AdvancedSpatialJoinOperator",
    "BuiltinIntervalJoinOperator",
    "BuiltinTextSimilarityJoinOperator",
    "install_builtin_joins",
]
