"""Built-in overlapping-interval join operator (hand-written baseline).

OIPJoin as a dedicated engine operator: timeline summary, granule
bucketing with the smallest-fitting-bucket rule, the theta bucket-matching
plan (spread one side, broadcast the other — AsterixDB has no partitioned
theta join, paper §VII-C), and fused verification.  Single-assign, so no
duplicate handling is needed.
"""

from __future__ import annotations

import math

from repro.engine.context import ExecutionContext
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.errors import ExecutionError

_BITS = 16
_MASK = (1 << _BITS) - 1


class BuiltinIntervalJoinOperator(PhysicalOperator):
    """OIPJoin-style overlap join as a dedicated operator."""

    label = "builtin-interval-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key, right_key, num_buckets: int = 100) -> None:
        super().__init__()
        if not 1 <= num_buckets <= _MASK:
            raise ExecutionError(
                f"number of buckets must be in [1, {_MASK}], got {num_buckets}"
            )
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.num_buckets = num_buckets

    def describe(self) -> str:
        return f"BUILTIN INTERVAL JOIN (buckets={self.num_buckets})"

    def children(self) -> list:
        return [self.left, self.right]

    # -- phase 1: timeline summary ----------------------------------------------

    def _side_range(self, result: OperatorResult, key_fn, ctx: ExecutionContext):
        stage = ctx.metrics.stage(f"{self.stage_name}/range")
        model = ctx.cost_model
        min_start = math.inf
        max_end = -math.inf
        seen = False
        for worker, partition in enumerate(result.partitions):
            for record in partition:
                interval = key_fn(record)
                if interval.start < min_start:
                    min_start = interval.start
                if interval.end > max_end:
                    max_end = interval.end
                seen = True
            stage.charge(worker, len(partition) * model.record_touch)
        stage.network_bytes += 32 * max(0, ctx.num_partitions - 1)
        return (min_start, max_end) if seen else None

    # -- phase 2: bucket assignment -----------------------------------------------

    def _bucket_of(self, interval, origin: float, granule: float) -> int:
        top = self.num_buckets - 1
        start = int((interval.start - origin) / granule)
        start = max(0, min(top, start))
        end = int(math.ceil((interval.end - origin) / granule)) - 1
        end = max(start, min(top, end))
        return (start << _BITS) | end

    def _assign(self, result: OperatorResult, key_fn, origin, granule,
                ctx: ExecutionContext, tag: str) -> list:
        stage = ctx.metrics.stage(f"{self.stage_name}/assign-{tag}")
        model = ctx.cost_model
        out = []
        for worker, partition in enumerate(result.partitions):
            rows = []
            for record in partition:
                interval = key_fn(record)
                rows.append((self._bucket_of(interval, origin, granule),
                             interval, record))
            stage.charge(worker, len(partition) * (model.record_touch + model.hash_op))
            stage.records_in += len(partition)
            out.append(rows)
        return out

    # -- phase 3: theta bucket matching ---------------------------------------------

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        out_schema = left.schema.concat(right.schema)

        left_range = self._side_range(left, self.left_key, ctx)
        right_range = self._side_range(right, self.right_key, ctx)
        if left_range is None or right_range is None:
            return OperatorResult([[] for _ in range(ctx.num_partitions)], out_schema)
        origin = min(left_range[0], right_range[0])
        span = max(left_range[1], right_range[1]) - origin
        granule = span / self.num_buckets if span > 0 else 1.0

        left_assigned = self._assign(left, self.left_key, origin, granule, ctx, "left")
        right_assigned = self._assign(right, self.right_key, origin, granule, ctx,
                                      "right")

        # Theta plan: spread left round-robin, broadcast right.
        spread_stage = ctx.metrics.stage(f"{self.stage_name}/spread")
        model = ctx.cost_model
        left_parts = [[] for _ in range(ctx.num_partitions)]
        cursor = 0
        for worker, entries in enumerate(left_assigned):
            moved_bytes = 0
            for entry in entries:
                target = cursor % ctx.num_partitions
                cursor += 1
                left_parts[target].append(entry)
                if target != worker:
                    moved_bytes += 9 + entry[2].serialized_size()
                spread_stage.charge(worker, model.record_touch)
            spread_stage.network_bytes += moved_bytes

        bcast_stage = ctx.metrics.stage(f"{self.stage_name}/broadcast")
        everything = [entry for entries in right_assigned for entry in entries]
        total_bytes = sum(9 + e[2].serialized_size() for e in everything)
        bcast_stage.fabric_bytes += total_bytes * max(0, ctx.num_partitions - 1)
        for worker in range(ctx.num_partitions):
            bcast_stage.charge(
                worker,
                len(everything) * model.record_touch + total_bytes * model.serde_byte,
            )

        stage = ctx.metrics.stage(f"{self.stage_name}/join")
        out = []
        for worker in range(ctx.num_partitions):
            # No partitioned theta join exists, so bucket matching is a
            # plain NLJ over (bucket_id, record) tuples: each worker scans
            # the whole broadcast side once per local record (paper
            # SVII-C).  Tabling the broadcast is charged per node.
            stage.charge(
                worker,
                (len(left_parts[worker]) + len(everything)) * model.hash_op,
            )
            rows = []
            match_checks = 0
            verified = 0
            for b1, i1, record1 in left_parts[worker]:
                s1, e1 = b1 >> _BITS, b1 & _MASK
                for b2, i2, record2 in everything:
                    match_checks += 1
                    s2 = b2 >> _BITS
                    if not (s1 <= (b2 & _MASK) and e1 >= s2):
                        continue
                    verified += 1
                    if i1.start < i2.end and i1.end > i2.start:
                        rows.append(record1.concat(record2, out_schema))
            # Interval overlap is cheap whether it matches or not.
            stage.charge(
                worker,
                match_checks * model.match_op + verified * model.comparison * 2,
            )
            ctx.metrics.comparisons += verified
            stage.records_out += len(rows)
            out.append(rows)
        result = OperatorResult(out, out_schema)
        ctx.metrics.output_records = len(result)
        return result
