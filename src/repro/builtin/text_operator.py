"""Built-in text-similarity join operator (hand-written baseline).

The prefix-filtered set-similarity join as a dedicated operator, the way
the AsterixDB similarity work implemented it: global token-frequency
summary, rank-ordered prefix replication, bucket-id hash exchange, exact
Jaccard verification, and first-common-prefix-token duplicate avoidance.
Unlike the FUDJ version — which re-tokenizes at every callback because the
framework hands it one key at a time — this operator tokenizes each record
once and carries the token set alongside it, a fusion only engine-level
code can do.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.engine.context import ExecutionContext
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.errors import ExecutionError
from repro.text import tokenize


class BuiltinTextSimilarityJoinOperator(PhysicalOperator):
    """Prefix-filtered Jaccard join as a dedicated operator."""

    label = "builtin-text-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key, right_key, threshold: float = 0.9) -> None:
        super().__init__()
        if not 0.0 < threshold <= 1.0:
            raise ExecutionError(f"threshold must be in (0, 1], got {threshold}")
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.threshold = threshold

    def describe(self) -> str:
        return f"BUILTIN TEXT-SIMILARITY JOIN (t={self.threshold})"

    def children(self) -> list:
        return [self.left, self.right]

    # -- phase 1: token frequency summary ------------------------------------------

    def _count_tokens(self, result: OperatorResult, key_fn, counts: dict,
                      ctx: ExecutionContext, tag: str) -> list:
        """Count tokens into ``counts`` and return per-partition token-set
        caches so later phases never re-tokenize."""
        stage = ctx.metrics.stage(f"{self.stage_name}/count-{tag}")
        model = ctx.cost_model
        cached = []
        for worker, partition in enumerate(result.partitions):
            rows = []
            for record in partition:
                tokens = tokenize(key_fn(record))
                for token in tokens:
                    counts[token] = counts.get(token, 0) + 1
                rows.append((tokens, record))
            stage.charge(worker, len(partition) * (model.record_touch + model.hash_op))
            cached.append(rows)
        stage.network_bytes += 128 * max(0, ctx.num_partitions - 1)
        return cached

    # -- phase 2: prefix replication ---------------------------------------------------

    def _prefix_length(self, size: int) -> int:
        if size <= 0:
            return 0
        p = size - math.ceil(self.threshold * size) + 1
        return max(0, min(size, p))

    def _replicate(self, cached: list, ranks: dict, ctx: ExecutionContext,
                   tag: str) -> list:
        stage = ctx.metrics.stage(f"{self.stage_name}/prefix-{tag}")
        model = ctx.cost_model
        unknown = len(ranks)
        assigned = []
        for worker, rows in enumerate(cached):
            out = []
            replicas = 0
            for tokens, record in rows:
                if not tokens:
                    out.append((-1, tokens, record))
                    replicas += 1
                    continue
                token_ranks = sorted(ranks.get(token, unknown) for token in tokens)
                prefix = token_ranks[: self._prefix_length(len(token_ranks))]
                replicas += len(prefix)
                for rank in prefix:
                    out.append((rank, tokens, record))
            stage.charge(
                worker,
                len(rows) * model.record_touch + replicas * model.hash_op,
            )
            stage.records_in += len(rows)
            stage.records_out += len(out)
            assigned.append(out)
        # Hash-exchange on prefix-token rank.
        xstage = ctx.metrics.stage(f"{self.stage_name}/x-{tag}")
        parts = [[] for _ in range(ctx.num_partitions)]
        for worker, entries in enumerate(assigned):
            moved_bytes = 0
            for entry in entries:
                target = hash(entry[0]) % ctx.num_partitions
                parts[target].append(entry)
                if target != worker:
                    moved_bytes += 9 + entry[2].serialized_size()
                xstage.charge(worker, model.hash_op)
            xstage.network_bytes += moved_bytes
            xstage.charge(worker, moved_bytes * model.serde_byte)
        return parts

    # -- phase 3: verification with avoidance ---------------------------------------------

    def _keep_pair(self, rank: int, ranks1: list, ranks2: list) -> bool:
        """Duplicate avoidance: emit only from the smallest shared prefix
        rank of the pair (the canonical bucket)."""
        p1 = set(ranks1[: self._prefix_length(len(ranks1))])
        p2 = set(ranks2[: self._prefix_length(len(ranks2))])
        shared = p1 & p2
        return bool(shared) and rank == min(shared)

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        out_schema = left.schema.concat(right.schema)

        counts = {}
        left_cached = self._count_tokens(left, self.left_key, counts, ctx, "left")
        right_cached = self._count_tokens(right, self.right_key, counts, ctx, "right")
        ordered = sorted(counts.items(), key=lambda item: (item[1], item[0]))
        ranks = {token: rank for rank, (token, _) in enumerate(ordered)}

        left_parts = self._replicate(left_cached, ranks, ctx, "left")
        right_parts = self._replicate(right_cached, ranks, ctx, "right")

        stage = ctx.metrics.stage(f"{self.stage_name}/join")
        model = ctx.cost_model
        unknown = len(ranks)
        out = []
        for worker in range(ctx.num_partitions):
            buckets = defaultdict(list)
            for rank, tokens, record in left_parts[worker]:
                buckets[rank].append((tokens, record))
            rows = []
            verified = 0
            verify_units = 0.0
            for rank, tokens2, record2 in right_parts[worker]:
                for tokens1, record1 in buckets.get(rank, ()):
                    verified += 1
                    inter = len(tokens1 & tokens2)
                    union = len(tokens1) + len(tokens2) - inter
                    similarity = 1.0 if union == 0 else inter / union
                    matched = similarity >= self.threshold
                    verify_units += model.predicate_units(
                        model.expensive_predicate, matched
                    )
                    if not matched:
                        continue
                    if rank != -1:
                        ranks1 = sorted(ranks.get(t, unknown) for t in tokens1)
                        ranks2 = sorted(ranks.get(t, unknown) for t in tokens2)
                        if not self._keep_pair(rank, ranks1, ranks2):
                            continue
                    rows.append(record1.concat(record2, out_schema))
            stage.charge(worker, verify_units)
            ctx.metrics.comparisons += verified
            stage.records_out += len(rows)
            out.append(rows)
        result = OperatorResult(out, out_schema)
        ctx.metrics.output_records = len(result)
        return result
