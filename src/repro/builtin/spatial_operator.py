"""Built-in PBSM spatial join operator (hand-written baseline).

This is the operator a DBMS developer would write to add PBSM to the
engine: its own summary pass, grid construction, tile replication,
bucket-id exchange, per-tile verification, and reference-point duplicate
avoidance — all fused, no FUDJ framework, no translation layer.  The
:class:`AdvancedSpatialJoinOperator` subclass adds the local plane-sweep
optimization of paper §VII-F.
"""

from __future__ import annotations

from collections import defaultdict

from repro.engine.context import ExecutionContext
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.errors import ExecutionError
from repro.geometry import UniformGrid, contains, intersects, mbr_of, plane_sweep_pairs


class BuiltinSpatialJoinOperator(PhysicalOperator):
    """PBSM as a dedicated engine operator.

    Args:
        left, right: child operators.
        left_key, right_key: Record -> geometry extractors.
        n: grid size (n x n tiles over the joint MBR intersection).
        predicate: ``"intersects"`` or ``"contains"`` — the verification
            predicate applied to each candidate pair.
    """

    label = "builtin-spatial-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key, right_key, n: int = 64,
                 predicate: str = "intersects") -> None:
        super().__init__()
        if n < 1:
            raise ExecutionError(f"grid size must be >= 1, got {n}")
        if predicate not in ("intersects", "contains"):
            raise ExecutionError(f"unknown spatial predicate: {predicate}")
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.n = n
        self.predicate = predicate

    def describe(self) -> str:
        return f"BUILTIN SPATIAL JOIN [{self.predicate}] (n={self.n})"

    def children(self) -> list:
        return [self.left, self.right]

    # -- phase 1: MBR summary ----------------------------------------------------

    def _side_mbr(self, result: OperatorResult, key_fn, ctx: ExecutionContext):
        stage = ctx.metrics.stage(f"{self.stage_name}/mbr")
        model = ctx.cost_model
        side_mbr = None
        for worker, partition in enumerate(result.partitions):
            local = None
            for record in partition:
                box = mbr_of(key_fn(record))
                local = box if local is None else local.union(box)
            stage.charge(worker, len(partition) * model.record_touch)
            if local is not None:
                side_mbr = local if side_mbr is None else side_mbr.union(local)
        stage.network_bytes += 64 * max(0, ctx.num_partitions - 1)
        return side_mbr

    # -- phase 2: tile replication + exchange --------------------------------------

    def _replicate(self, result: OperatorResult, key_fn, grid,
                   ctx: ExecutionContext, tag: str) -> list:
        """Per worker, emit (tile_id, mbr, geometry, record) entries and
        hash-exchange them on tile id."""
        stage = ctx.metrics.stage(f"{self.stage_name}/tiles-{tag}")
        model = ctx.cost_model
        assigned = []
        for worker, partition in enumerate(result.partitions):
            rows = []
            replicas = 0
            for record in partition:
                geometry = key_fn(record)
                box = mbr_of(geometry)
                tile_ids = grid.overlapping_tile_ids(box)
                replicas += len(tile_ids)
                for tile_id in tile_ids:
                    rows.append((tile_id, box, geometry, record))
            stage.charge(
                worker,
                len(partition) * model.record_touch + replicas * model.hash_op,
            )
            stage.records_in += len(partition)
            stage.records_out += len(rows)
            assigned.append(rows)
        return self._exchange(assigned, ctx, f"{self.stage_name}/x-{tag}")

    @staticmethod
    def _exchange(assigned: list, ctx: ExecutionContext, stage_name: str) -> list:
        stage = ctx.metrics.stage(stage_name)
        model = ctx.cost_model
        out = [[] for _ in range(ctx.num_partitions)]
        for worker, entries in enumerate(assigned):
            moved_bytes = 0
            for entry in entries:
                target = hash(entry[0]) % ctx.num_partitions
                out[target].append(entry)
                if target != worker:
                    moved_bytes += 9 + entry[3].serialized_size()
                stage.charge(worker, model.hash_op)
            stage.network_bytes += moved_bytes
            stage.charge(worker, moved_bytes * model.serde_byte)
            stage.records_in += len(entries)
        stage.records_out = sum(len(p) for p in out)
        return out

    # -- phase 3: per-tile join -------------------------------------------------------

    def _verify(self, geometry1, geometry2) -> bool:
        if self.predicate == "contains":
            return contains(geometry1, geometry2)
        return intersects(geometry1, geometry2)

    def _join_tile(self, tile_id, left_entries, right_entries, grid,
                   out_schema, counter):
        """All-pairs verification within one tile, reference-point dedup."""
        rows = []
        for _, mbr1, geom1, record1 in left_entries:
            for _, mbr2, geom2, record2 in right_entries:
                counter["pairs"] += 1
                if not mbr1.intersects(mbr2):
                    continue
                if grid.reference_tile_id(mbr1, mbr2) != tile_id:
                    continue  # another tile owns this pair
                matched = self._verify(geom1, geom2)
                counter["verified"] += 1
                counter["hits"] += 1 if matched else 0
                if matched:
                    rows.append(record1.concat(record2, out_schema))
        return rows

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)

        left_mbr = self._side_mbr(left, self.left_key, ctx)
        right_mbr = self._side_mbr(right, self.right_key, ctx)
        out_schema = left.schema.concat(right.schema)
        if left_mbr is None or right_mbr is None:
            return OperatorResult([[] for _ in range(ctx.num_partitions)], out_schema)
        overlap = left_mbr.intersection(right_mbr)
        if overlap is None:
            return OperatorResult([[] for _ in range(ctx.num_partitions)], out_schema)
        grid = UniformGrid(overlap, self.n)

        left_parts = self._replicate(left, self.left_key, grid, ctx, "left")
        right_parts = self._replicate(right, self.right_key, grid, ctx, "right")

        stage = ctx.metrics.stage(f"{self.stage_name}/join")
        model = ctx.cost_model
        out = []
        for worker in range(ctx.num_partitions):
            tiles_left = defaultdict(list)
            for entry in left_parts[worker]:
                tiles_left[entry[0]].append(entry)
            tiles_right = defaultdict(list)
            for entry in right_parts[worker]:
                tiles_right[entry[0]].append(entry)
            counter = {"pairs": 0, "verified": 0, "hits": 0}
            rows = []
            for tile_id, left_entries in tiles_left.items():
                right_entries = tiles_right.get(tile_id)
                if right_entries:
                    rows.extend(
                        self._join_tile(tile_id, left_entries, right_entries,
                                        grid, out_schema, counter)
                    )
            misses = counter["verified"] - counter["hits"]
            stage.charge(
                worker,
                counter["pairs"] * model.comparison
                + counter["hits"] * model.expensive_predicate
                + misses * model.predicate_units(model.expensive_predicate, False),
            )
            ctx.metrics.comparisons += counter["pairs"]
            stage.records_out += len(rows)
            out.append(rows)
        result = OperatorResult(out, out_schema)
        ctx.metrics.output_records = len(result)
        return result


class AdvancedSpatialJoinOperator(BuiltinSpatialJoinOperator):
    """The §VII-F operator: plane-sweep within each tile.

    Geometries in a tile are sorted by min-x and swept, so MBR tests drop
    from ``O(|L| * |R|)`` to near ``O((|L|+|R|) log + k)`` per tile —
    the local join optimization the paper measures at ~1.38x.
    """

    label = "advanced-spatial-join"

    def describe(self) -> str:
        return f"ADVANCED SPATIAL JOIN [plane-sweep, {self.predicate}] (n={self.n})"

    def _join_tile(self, tile_id, left_entries, right_entries, grid,
                   out_schema, counter):
        def count():
            counter["pairs"] += 1

        sweep_left = [(mbr, (mbr, geom, rec)) for _, mbr, geom, rec in left_entries]
        sweep_right = [(mbr, (mbr, geom, rec)) for _, mbr, geom, rec in right_entries]
        rows = []
        for (mbr1, geom1, record1), (mbr2, geom2, record2) in plane_sweep_pairs(
            sweep_left, sweep_right, counter=count
        ):
            if grid.reference_tile_id(mbr1, mbr2) != tile_id:
                continue
            matched = self._verify(geom1, geom2)
            counter["verified"] += 1
            counter["hits"] += 1 if matched else 0
            if matched:
                rows.append(record1.concat(record2, out_schema))
        return rows
