"""Axis-aligned rectangles (minimum bounding rectangles)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rectangle:
    """A closed, axis-aligned rectangle ``[x1, x2] x [y1, y2]``.

    Degenerate rectangles (zero width and/or height) are allowed; a point's
    MBR is one of those.  Construction validates that the bounds are
    ordered.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(
                f"invalid rectangle: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    def center(self) -> Point:
        """Return the center point of the rectangle."""
        return Point((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def mbr(self) -> "Rectangle":
        """A rectangle is its own MBR."""
        return self

    # -- predicates ---------------------------------------------------------

    def intersects(self, other: "Rectangle") -> bool:
        """True if the two (closed) rectangles share at least one point."""
        return (
            self.x1 <= other.x2
            and self.x2 >= other.x1
            and self.y1 <= other.y2
            and self.y2 >= other.y1
        )

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary of this rectangle."""
        return self.x1 <= p.x <= self.x2 and self.y1 <= p.y <= self.y2

    def contains_rectangle(self, other: "Rectangle") -> bool:
        """True if ``other`` is completely inside this rectangle."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    # -- constructive operations ---------------------------------------------

    def union(self, other: "Rectangle") -> "Rectangle":
        """Smallest rectangle covering both rectangles (the MBR merge)."""
        return Rectangle(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def intersection(self, other: "Rectangle") -> "Rectangle | None":
        """The overlap region, or ``None`` when the rectangles are disjoint."""
        if not self.intersects(other):
            return None
        return Rectangle(
            max(self.x1, other.x1),
            max(self.y1, other.y1),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def expand(self, margin: float) -> "Rectangle":
        """Grow the rectangle by ``margin`` on every side."""
        return Rectangle(
            self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin
        )

    def as_tuple(self) -> tuple:
        """Return ``(x1, y1, x2, y2)``, useful for serialization."""
        return (self.x1, self.y1, self.x2, self.y2)

    @staticmethod
    def from_points(points) -> "Rectangle":
        """MBR of a non-empty iterable of :class:`Point`."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot compute the MBR of zero points") from None
        x1 = x2 = first.x
        y1 = y2 = first.y
        for p in it:
            x1 = min(x1, p.x)
            y1 = min(y1, p.y)
            x2 = max(x2, p.x)
            y2 = max(y2, p.y)
        return Rectangle(x1, y1, x2, y2)
