"""Plane-sweep rectangle join, the local optimization of paper §VII-F.

Given two lists of ``(mbr, payload)`` entries, :func:`plane_sweep_pairs`
yields every pair whose MBRs intersect, in time close to
``O((n + m) log(n + m) + k)`` instead of the ``O(n * m)`` of a nested loop.
The advanced built-in spatial operator sorts the geometries inside each
tile by min-x and sweeps, exactly as the paper describes.
"""

from __future__ import annotations


def plane_sweep_pairs(left, right, counter=None):
    """Yield ``(l_payload, r_payload)`` for every intersecting MBR pair.

    Args:
        left: iterable of ``(Rectangle, payload)``.
        right: iterable of ``(Rectangle, payload)``.
        counter: optional callable invoked once per MBR comparison, used by
            the benchmark harness to charge simulated CPU cost.

    The sweep advances along the x-axis.  For the entry with the smaller
    min-x we scan the other list forward while x-intervals overlap and test
    the y-intervals; entries are consumed in sorted order so each pair is
    examined at most once.
    """
    a = sorted(left, key=lambda e: e[0].x1)
    b = sorted(right, key=lambda e: e[0].x1)
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        ra = a[i][0]
        rb = b[j][0]
        if ra.x1 <= rb.x1:
            # Sweep `b` forward while it can still overlap `ra` in x.
            k = j
            while k < nb and b[k][0].x1 <= ra.x2:
                if counter is not None:
                    counter()
                rk = b[k][0]
                if ra.y1 <= rk.y2 and ra.y2 >= rk.y1:
                    yield a[i][1], b[k][1]
                k += 1
            i += 1
        else:
            k = i
            while k < na and a[k][0].x1 <= rb.x2:
                if counter is not None:
                    counter()
                rk = a[k][0]
                if rb.y1 <= rk.y2 and rb.y2 >= rk.y1:
                    yield a[k][1], b[j][1]
                k += 1
            j += 1
