"""Uniform grid tiling of space, as used by PBSM partitioning.

The grid logically divides a bounding rectangle into ``n x n`` equal tiles
numbered row-major from 0.  The Spatial FUDJ ``assign`` function maps each
record's MBR to the ids of all overlapping tiles (multi-assign).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.rectangle import Rectangle


@dataclass(frozen=True)
class UniformGrid:
    """An ``n x n`` uniform grid over ``extent``.

    Tile ``(col, row)`` has id ``row * n + col``.  Records whose MBR falls
    outside the extent are clamped to the border tiles, so every geometry
    always maps to at least one tile — important because summaries are
    computed on the *sampled or full* input and outliers must not be lost.
    """

    extent: Rectangle
    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"grid size must be >= 1, got {self.n}")

    @property
    def tile_count(self) -> int:
        return self.n * self.n

    @property
    def tile_width(self) -> float:
        return self.extent.width / self.n if self.extent.width else 0.0

    @property
    def tile_height(self) -> float:
        return self.extent.height / self.n if self.extent.height else 0.0

    def _clamp(self, index: int) -> int:
        return max(0, min(self.n - 1, index))

    def _index_of(self, offset: float, tile_size: float) -> int:
        # A subnormal extent makes tile_size tiny enough that the
        # division overflows to inf (or nan for pathological inputs);
        # clamping must happen before int() can choke on it.
        quotient = offset / tile_size
        if quotient != quotient:  # nan
            return 0
        if quotient in (float("inf"), float("-inf")):
            return 0 if quotient < 0 else self.n - 1
        return self._clamp(int(quotient))

    def column_of(self, x: float) -> int:
        """Grid column containing ``x`` (clamped to the extent)."""
        if self.tile_width == 0.0:
            return 0
        return self._index_of(x - self.extent.x1, self.tile_width)

    def row_of(self, y: float) -> int:
        """Grid row containing ``y`` (clamped to the extent)."""
        if self.tile_height == 0.0:
            return 0
        return self._index_of(y - self.extent.y1, self.tile_height)

    def tile_id(self, col: int, row: int) -> int:
        """Row-major id of tile ``(col, row)``."""
        return row * self.n + col

    def tile_extent(self, tile_id: int) -> Rectangle:
        """Bounding rectangle of a tile."""
        if not 0 <= tile_id < self.tile_count:
            raise ValueError(f"tile id out of range: {tile_id}")
        row, col = divmod(tile_id, self.n)
        x1 = self.extent.x1 + col * self.tile_width
        y1 = self.extent.y1 + row * self.tile_height
        return Rectangle(x1, y1, x1 + self.tile_width, y1 + self.tile_height)

    def overlapping_tile_ids(self, mbr: Rectangle) -> list:
        """Ids of all tiles whose extent overlaps ``mbr`` (paper's
        ``getOverlappingTileIds``)."""
        c1 = self.column_of(mbr.x1)
        c2 = self.column_of(mbr.x2)
        r1 = self.row_of(mbr.y1)
        r2 = self.row_of(mbr.y2)
        return [
            row * self.n + col
            for row in range(r1, r2 + 1)
            for col in range(c1, c2 + 1)
        ]

    def reference_tile_id(self, mbr1: Rectangle, mbr2: Rectangle) -> int:
        """Tile containing the *reference point* of an MBR pair.

        The reference point method (Patel & DeWitt, used in paper §VII-E)
        reports a pair only from the tile that contains the top-left
        (min-x, min-y) corner of the intersection of the two MBRs, which
        guarantees each pair is produced exactly once.
        """
        inter = mbr1.intersection(mbr2)
        if inter is None:
            raise ValueError("reference point of disjoint MBRs is undefined")
        return self.tile_id(self.column_of(inter.x1), self.row_of(inter.y1))
