"""Type-dispatched spatial predicates (the ``ST_*`` functions of the paper).

These are the predicates that appear in the motivating queries:
``ST_Contains``, ``ST_Distance`` (via :func:`distance`) and the implicit
``intersects`` used by the Spatial FUDJ ``verify`` function.  They accept
any mix of :class:`Point`, :class:`Rectangle`, and :class:`Polygon`.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rectangle

Geometry = object  # Point | Rectangle | Polygon


def mbr_of(geom) -> Rectangle:
    """Minimum bounding rectangle of any supported geometry.

    Anything exposing an ``mbr()`` method qualifies (trajectories and
    user-defined shapes included), so grid partitioning works for every
    spatially-extended type.
    """
    mbr = getattr(geom, "mbr", None)
    if callable(mbr):
        box = mbr()
        if isinstance(box, Rectangle):
            return box
    raise TypeError(f"not a geometry: {geom!r}")


def intersects(a, b) -> bool:
    """True if geometries ``a`` and ``b`` share at least one point."""
    if isinstance(a, Point) and isinstance(b, Point):
        return a == b
    if isinstance(a, Point):
        return contains(b, a)
    if isinstance(b, Point):
        return contains(a, b)
    if isinstance(a, Rectangle) and isinstance(b, Rectangle):
        return a.intersects(b)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return a.intersects_polygon(b)
    # Rectangle vs Polygon: convert the rectangle to a polygon ring once.
    if isinstance(a, Rectangle) and isinstance(b, Polygon):
        return _rect_polygon_intersects(a, b)
    if isinstance(a, Polygon) and isinstance(b, Rectangle):
        return _rect_polygon_intersects(b, a)
    raise TypeError(f"unsupported geometry pair: {type(a)}, {type(b)}")


def contains(outer, inner) -> bool:
    """True if ``outer`` fully contains ``inner`` (the paper's ST_Contains)."""
    if isinstance(outer, Rectangle):
        if isinstance(inner, Point):
            return outer.contains_point(inner)
        if isinstance(inner, Rectangle):
            return outer.contains_rectangle(inner)
        if isinstance(inner, Polygon):
            return outer.contains_rectangle(inner.mbr())
    if isinstance(outer, Polygon):
        if isinstance(inner, Point):
            return outer.contains_point(inner)
        if isinstance(inner, (Rectangle, Polygon)):
            # Sufficient test for simple polygons: every vertex inside and
            # no boundary crossing.
            verts = (
                _rect_vertices(inner) if isinstance(inner, Rectangle) else inner.vertices
            )
            if not all(outer.contains_point(v) for v in verts):
                return False
            inner_poly = (
                Polygon(_rect_vertices(inner)) if isinstance(inner, Rectangle) else inner
            )
            from repro.geometry.polygon import _segments_intersect

            for a1, a2 in outer.edges():
                for b1, b2 in inner_poly.edges():
                    if _segments_intersect(a1, a2, b1, b2):
                        return False
            return True
    if isinstance(outer, Point):
        return isinstance(inner, Point) and outer == inner
    raise TypeError(f"unsupported geometry pair: {type(outer)}, {type(inner)}")


def distance(a, b) -> float:
    """Distance between two geometries (0.0 when they intersect).

    Point-point is exact Euclidean distance; for extended geometries we use
    the distance between their MBRs, which is what the paper's partitioning
    layer needs (the exact predicate runs in ``verify``).
    """
    if isinstance(a, Point) and isinstance(b, Point):
        return a.distance_to(b)
    ra, rb = mbr_of(a), mbr_of(b)
    dx = max(ra.x1 - rb.x2, rb.x1 - ra.x2, 0.0)
    dy = max(ra.y1 - rb.y2, rb.y1 - ra.y2, 0.0)
    import math

    return math.hypot(dx, dy)


def _rect_vertices(rect: Rectangle) -> tuple:
    return (
        Point(rect.x1, rect.y1),
        Point(rect.x2, rect.y1),
        Point(rect.x2, rect.y2),
        Point(rect.x1, rect.y2),
    )


def _rect_polygon_intersects(rect: Rectangle, poly: Polygon) -> bool:
    if not rect.intersects(poly.mbr()):
        return False
    # Any polygon vertex inside the rectangle, or any rectangle corner
    # inside the polygon, or any edge crossing.
    if any(rect.contains_point(v) for v in poly.vertices):
        return True
    if any(poly.contains_point(v) for v in _rect_vertices(rect)):
        return True
    rect_poly = Polygon(_rect_vertices(rect))
    return rect_poly.intersects_polygon(poly)
