"""Geometry substrate: points, rectangles, polygons, and spatial predicates.

The paper's Spatial FUDJ (based on PBSM) needs minimum bounding rectangles,
a uniform grid that tiles space, overlap tests, and a plane-sweep local
join.  This package provides all of that in pure Python, with no external
GIS dependency.
"""

from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle
from repro.geometry.polygon import Polygon
from repro.geometry.predicates import (
    contains,
    distance,
    intersects,
    mbr_of,
)
from repro.geometry.grid import UniformGrid
from repro.geometry.plane_sweep import plane_sweep_pairs

__all__ = [
    "Point",
    "Rectangle",
    "Polygon",
    "UniformGrid",
    "contains",
    "distance",
    "intersects",
    "mbr_of",
    "plane_sweep_pairs",
]
