"""Simple polygons with ray-casting containment and edge intersection."""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle


class Polygon:
    """A simple (non-self-intersecting) polygon given by its vertex ring.

    The ring does not need to be explicitly closed: an edge from the last
    vertex back to the first is implied.  The MBR is precomputed because
    the PBSM partitioning phase touches it for every record.
    """

    __slots__ = ("vertices", "_mbr")

    def __init__(self, vertices) -> None:
        self.vertices = tuple(
            v if isinstance(v, Point) else Point(v[0], v[1]) for v in vertices
        )
        if len(self.vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        self._mbr = Rectangle.from_points(self.vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices, mbr={self._mbr.as_tuple()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polygon) and self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(self.vertices)

    def mbr(self) -> Rectangle:
        """The precomputed minimum bounding rectangle."""
        return self._mbr

    def contains_point(self, p: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        if not self._mbr.contains_point(p):
            return False
        inside = False
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if _on_segment(a, b, p):
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def edges(self):
        """Yield the polygon's edges as ``(Point, Point)`` pairs."""
        n = len(self.vertices)
        for i in range(n):
            yield self.vertices[i], self.vertices[(i + 1) % n]

    def intersects_polygon(self, other: "Polygon") -> bool:
        """True if the polygons share any point (edge crossing or nesting)."""
        if not self._mbr.intersects(other._mbr):
            return False
        for a1, a2 in self.edges():
            for b1, b2 in other.edges():
                if _segments_intersect(a1, a2, b1, b2):
                    return True
        # No edge crossings: one polygon may be nested inside the other.
        return self.contains_point(other.vertices[0]) or other.contains_point(
            self.vertices[0]
        )

    def as_tuple(self) -> tuple:
        """Return the vertex ring as a tuple of ``(x, y)`` pairs."""
        return tuple(v.as_tuple() for v in self.vertices)

    @staticmethod
    def regular(center: Point, radius: float, sides: int = 6) -> "Polygon":
        """Build a regular polygon, handy for synthetic park boundaries."""
        import math

        if sides < 3:
            raise ValueError("a polygon needs at least three sides")
        step = 2.0 * math.pi / sides
        return Polygon(
            Point(
                center.x + radius * math.cos(i * step),
                center.y + radius * math.sin(i * step),
            )
            for i in range(sides)
        )


def _orientation(a: Point, b: Point, c: Point) -> int:
    """Sign of the cross product (b - a) x (c - a): -1, 0, or 1."""
    cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    if cross > 0:
        return 1
    if cross < 0:
        return -1
    return 0


def _on_segment(a: Point, b: Point, p: Point) -> bool:
    """True if ``p`` lies on the closed segment ``a-b``."""
    if _orientation(a, b, p) != 0:
        return False
    return min(a.x, b.x) <= p.x <= max(a.x, b.x) and min(a.y, b.y) <= p.y <= max(
        a.y, b.y
    )


def _segments_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool:
    """Closed-segment intersection test, including collinear overlap."""
    o1 = _orientation(a1, a2, b1)
    o2 = _orientation(a1, a2, b2)
    o3 = _orientation(b1, b2, a1)
    o4 = _orientation(b1, b2, a2)
    if o1 != o2 and o3 != o4:
        return True
    return (
        (o1 == 0 and _on_segment(a1, a2, b1))
        or (o2 == 0 and _on_segment(a1, a2, b2))
        or (o3 == 0 and _on_segment(b1, b2, a1))
        or (o4 == 0 and _on_segment(b1, b2, a2))
    )
