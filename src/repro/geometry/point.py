"""A 2D point geometry."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point in the plane.

    Points are ordered lexicographically by ``(x, y)`` so they can be used
    directly as sort keys in plane-sweep algorithms.
    """

    x: float
    y: float

    def mbr(self) -> "Rectangle":
        """Return the degenerate minimum bounding rectangle of this point."""
        from repro.geometry.rectangle import Rectangle

        return Rectangle(self.x, self.y, self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple:
        """Return ``(x, y)``, useful for serialization."""
        return (self.x, self.y)
