"""FUDJ: Flexible User-Defined Distributed Joins - reproduction library.

Reproduces Sevim et al., *FUDJ: Flexible User-Defined Distributed Joins*
(ICDE 2024): the FUDJ programming model, a distributed query engine
substrate with a FUDJ-aware optimizer, the paper's three join libraries
(spatial, overlapping-interval, text-similarity), built-in operator
baselines, and the full benchmark suite.

Quick start::

    from repro import Database
    from repro.joins import SpatialContainsJoin

    db = Database()
    ...

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.core import FlexibleJoin, JoinSide, StandaloneRunner
from repro.database import Database
from repro.engine.costs import CostModel
from repro.engine.executor import QueryResult
from repro.engine.faults import FaultPlan
from repro.optimizer import ExecutionMode

__version__ = "1.1.0"

__all__ = [
    "Database",
    "FlexibleJoin",
    "JoinSide",
    "StandaloneRunner",
    "ExecutionMode",
    "QueryResult",
    "CostModel",
    "FaultPlan",
    "__version__",
]
