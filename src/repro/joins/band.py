"""Numeric band join: ``|a - b| <= band`` (a fourth packaged FUDJ).

Band joins are the textbook non-equi join over numbers (price matching,
timestamp proximity, sensor calibration).  The implementation shows the
single-join flavour of a multi-assign FUDJ: the value axis is cut into
equal ranges, each key is assigned to every range its band window
overlaps, co-bucketed candidates are verified exactly, and the default
duplicate avoidance removes the multi-assign repeats.
"""

from __future__ import annotations

from repro.core.flexible_join import FlexibleJoin, JoinSide


class BandPPlan:
    """Value-axis origin, bucket width, and bucket count."""

    __slots__ = ("origin", "width", "num_buckets")

    def __init__(self, origin: float, width: float, num_buckets: int) -> None:
        self.origin = origin
        self.width = width
        self.num_buckets = num_buckets


class NumericBandJoin(FlexibleJoin):
    """Join numeric keys within ``band`` of each other.

    Parameters:
        band: the half-width of the match window (a query parameter —
            ``within_band(a.v, b.v, 0.5)``).
        num_buckets: value-axis granularity (a tuning knob, usually a
            registration default).
    """

    name = "numeric-band"

    def __init__(self, band: float = 1.0, num_buckets: int = 64) -> None:
        super().__init__(band, num_buckets)
        if band < 0:
            raise ValueError(f"band must be non-negative, got {band}")
        if num_buckets < 1:
            raise ValueError(f"need >= 1 bucket, got {num_buckets}")
        self.band = float(band)
        self.num_buckets = int(num_buckets)

    def local_aggregate(self, key, summary, side: JoinSide):
        if summary is None:
            return (key, key)
        return (min(summary[0], key), max(summary[1], key))

    def global_aggregate(self, summary1, summary2, side: JoinSide):
        if summary1 is None:
            return summary2
        if summary2 is None:
            return summary1
        return (min(summary1[0], summary2[0]), max(summary1[1], summary2[1]))

    def divide(self, summary1, summary2) -> BandPPlan:
        if summary1 is None or summary2 is None:
            return BandPPlan(0.0, 1.0, self.num_buckets)
        lo = min(summary1[0], summary2[0])
        hi = max(summary1[1], summary2[1])
        width = (hi - lo) / self.num_buckets if hi > lo else 1.0
        return BandPPlan(lo, width, self.num_buckets)

    def assign(self, key, pplan: BandPPlan, side: JoinSide) -> list:
        top = pplan.num_buckets - 1
        first = int((key - self.band - pplan.origin) / pplan.width)
        last = int((key + self.band - pplan.origin) / pplan.width)
        first = max(0, min(top, first))
        last = max(first, min(top, last))
        return list(range(first, last + 1))

    def verify(self, key1, key2, pplan) -> bool:
        return abs(key1 - key2) <= self.band
