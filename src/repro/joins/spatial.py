"""Spatial FUDJ, based on the PBSM algorithm (paper §V-A).

SUMMARIZE computes each side's MBR; DIVIDE intersects the two MBRs and
lays an ``n x n`` grid over the overlap; ASSIGN maps every geometry to all
overlapping tiles (multi-assign); the default equality MATCH makes this a
single-join; VERIFY tests the actual geometries.
"""

from __future__ import annotations

from repro.core.flexible_join import FlexibleJoin, JoinSide
from repro.geometry import UniformGrid, contains, intersects, mbr_of


class SpatialPPlan:
    """Partitioning plan: the grid over the joint MBR (None when the two
    sides' MBRs are disjoint and the join result is provably empty)."""

    __slots__ = ("grid",)

    def __init__(self, grid) -> None:
        self.grid = grid


class SpatialJoin(FlexibleJoin):
    """PBSM-style spatial intersection join.

    The single constructor parameter is the grid size ``n`` (the paper
    sweeps it in Fig 11a; 1200 is the paper's choice at cluster scale).
    """

    name = "spatial"

    def __init__(self, n: int = 64) -> None:
        super().__init__(n)
        self.n = int(n)

    def local_aggregate(self, geometry, summary, side: JoinSide):
        box = mbr_of(geometry)
        return box if summary is None else summary.union(box)

    def global_aggregate(self, summary1, summary2, side: JoinSide):
        if summary1 is None:
            return summary2
        if summary2 is None:
            return summary1
        return summary1.union(summary2)

    def divide(self, summary1, summary2) -> SpatialPPlan:
        if summary1 is None or summary2 is None:
            return SpatialPPlan(None)
        overlap = summary1.intersection(summary2)
        if overlap is None:
            return SpatialPPlan(None)
        return SpatialPPlan(UniformGrid(overlap, self.n))

    def assign(self, geometry, pplan: SpatialPPlan, side: JoinSide):
        if pplan.grid is None:
            return []
        return pplan.grid.overlapping_tile_ids(mbr_of(geometry))

    def verify(self, geometry1, geometry2, pplan) -> bool:
        return intersects(geometry1, geometry2)


class SpatialContainsJoin(SpatialJoin):
    """Spatial join verifying ``ST_Contains(left, right)``.

    Partitioning is identical to :class:`SpatialJoin` (containment implies
    MBR overlap, so PBSM's grid is a valid filter); only the verification
    predicate differs.
    """

    name = "spatial-contains"

    def verify(self, geometry1, geometry2, pplan) -> bool:
        return contains(geometry1, geometry2)



class ReferencePointSpatialJoin(SpatialJoin):
    """Spatial FUDJ with the *reference point* duplicate-avoidance method
    (Patel & DeWitt, compared against the FUDJ default in Fig 12b).

    A pair is emitted only from the tile containing the lower-left corner
    of the intersection of the two MBRs — a custom ``dedup`` override,
    demonstrating that developers can swap duplicate-handling logic.
    """

    name = "spatial-refpoint"

    def dedup(self, bucket_id1, geometry1, bucket_id2, geometry2, pplan) -> bool:
        mbr1 = mbr_of(geometry1)
        mbr2 = mbr_of(geometry2)
        if mbr1.intersection(mbr2) is None:
            return False
        return pplan.grid.reference_tile_id(mbr1, mbr2) == bucket_id1

