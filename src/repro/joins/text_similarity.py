"""Text-Similarity FUDJ with prefix filtering (paper §V-B).

SUMMARIZE counts token occurrences per side; DIVIDE merges the counts and
ranks tokens from rarest to most common; ASSIGN tokenizes each text, maps
its tokens to global ranks, and emits the first ``p`` ranks of the sorted
list, where ``p = l - ceil(t*l) + 1`` is the prefix-filter length — two
texts with Jaccard >= t are guaranteed to share a bucket.  The default
equality MATCH applies (single-join), and VERIFY computes exact Jaccard
similarity against the threshold.
"""

from __future__ import annotations

from repro.core.flexible_join import FlexibleJoin, JoinSide
from repro.text import jaccard_similarity, prefix_length, tokenize

#: Bucket for empty token sets; real token ranks are >= 0, so -1 is free.
#: Without it, two empty texts (Jaccard 1.0) would never meet.
_EMPTY_BUCKET = -1


class TextPPlan:
    """Global token ranking plus the similarity threshold."""

    __slots__ = ("token_ranks", "threshold")

    def __init__(self, token_ranks: dict, threshold: float) -> None:
        self.token_ranks = token_ranks
        self.threshold = threshold


class TextSimilarityJoin(FlexibleJoin):
    """Prefix-filtered Jaccard set-similarity join over texts.

    The constructor parameter is the similarity threshold ``t`` (Fig 11c
    sweeps it; the paper's headline experiments use 0.9).
    """

    name = "text-similarity"

    def __init__(self, threshold: float = 0.9) -> None:
        super().__init__(threshold)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = float(threshold)

    def local_aggregate(self, text, summary, side: JoinSide) -> dict:
        if summary is None:
            summary = {}
        for token in tokenize(text):
            summary[token] = summary.get(token, 0) + 1
        return summary

    def global_aggregate(self, summary1, summary2, side: JoinSide) -> dict:
        if summary1 is None:
            return summary2
        if summary2 is None:
            return summary1
        for token, count in summary2.items():
            summary1[token] = summary1.get(token, 0) + count
        return summary1

    def divide(self, summary1, summary2) -> TextPPlan:
        counts = dict(summary1 or {})
        for token, count in (summary2 or {}).items():
            if summary2 is not summary1:
                counts[token] = counts.get(token, 0) + count
        # Rarest token gets rank 0; ties break on the token itself so the
        # ranking is deterministic across runs and workers.
        ordered = sorted(counts.items(), key=lambda item: (item[1], item[0]))
        token_ranks = {token: rank for rank, (token, _) in enumerate(ordered)}
        return TextPPlan(token_ranks, self.threshold)

    def assign(self, text, pplan: TextPPlan, side: JoinSide) -> list:
        tokens = tokenize(text)
        if not tokens:
            return [_EMPTY_BUCKET]
        # Tokens always appear in the summary when summarize ran over the
        # same input; the fallback keeps assign total if it did not.
        unknown = len(pplan.token_ranks)
        ranks = sorted(pplan.token_ranks.get(token, unknown) for token in tokens)
        p = prefix_length(len(ranks), pplan.threshold)
        return ranks[:p]

    def verify(self, text1, text2, pplan) -> bool:
        similarity = jaccard_similarity(tokenize(text1), tokenize(text2))
        return similarity >= pplan.threshold
