"""FUDJ extension joins realizing the paper's §VIII future work.

Every future direction the paper closes with is implemented here, each
as an ordinary FlexibleJoin subclass — demonstrating that the extension
hooks (``local_join``, ``partition_buckets``, richer summaries) fit the
programming model without engine changes:

- :class:`PlaneSweepSpatialJoin` — "local join optimizations, such as
  plane-sweep" via the ``local_join`` hook.
- :class:`SortMergeIntervalJoin` — "support for sort-merge-based
  distributed joins": an FS forward scan as the local algorithm.
- :class:`AutoTuneSpatialJoin` — "automate the process of finding the
  optimum number of buckets by gathering more dataset statistics during
  the SUMMARIZE phase".
- :class:`PartitionedIntervalJoin` — "a Theta Join Operator to enhance
  processing for non-equality-based bucket matching" via
  ``partition_buckets``.
- :class:`LengthFilteredTextJoin` — the length filter from the
  set-similarity literature the paper builds on (its refs [30], [31]),
  as a ``local_join`` candidate filter.
"""

from __future__ import annotations

from repro.core.flexible_join import FlexibleJoin, JoinSide
from repro.geometry import UniformGrid, mbr_of, plane_sweep_pairs
from repro.joins.interval import _GRANULE_BITS, _GRANULE_MASK, IntervalJoin, IntervalPPlan
from repro.joins.spatial import SpatialContainsJoin, SpatialPPlan
from repro.joins.text_similarity import TextSimilarityJoin


class PlaneSweepSpatialJoin(SpatialContainsJoin):
    """Spatial FUDJ with a custom *local join* (paper §VIII future work).

    Overrides :meth:`local_join` to sweep the MBRs of each matched tile
    pair instead of testing all pairs — the same optimization the
    hand-written advanced operator of §VII-F uses, but expressed inside
    the FUDJ programming model.  Every candidate it yields still goes
    through ``verify`` and dedup, so results are unchanged.
    """

    name = "spatial-plane-sweep"

    def local_join(self, keys1, keys2, pplan):
        left = [(mbr_of(geometry), i) for i, geometry in enumerate(keys1)]
        right = [(mbr_of(geometry), j) for j, geometry in enumerate(keys2)]
        return plane_sweep_pairs(left, right)


class AutoTuneSpatialJoin(SpatialContainsJoin):
    """Spatial FUDJ that picks its own grid size (paper §VIII).

    The summary carries the record count alongside the MBR, and
    ``divide`` sizes the grid so each tile holds ``target_per_tile``
    records on average (bounded to keep tile metadata cheap).
    """

    name = "spatial-autotune"

    def __init__(self, target_per_tile: float = 3.0, max_n: int = 512) -> None:
        FlexibleJoin.__init__(self, target_per_tile, max_n)
        if target_per_tile <= 0:
            raise ValueError(f"target per tile must be > 0: {target_per_tile}")
        self.target_per_tile = target_per_tile
        self.max_n = max_n
        self.n = None  # chosen by divide

    def local_aggregate(self, geometry, summary, side: JoinSide):
        box = mbr_of(geometry)
        if summary is None:
            return (box, 1)
        return (summary[0].union(box), summary[1] + 1)

    def global_aggregate(self, summary1, summary2, side: JoinSide):
        if summary1 is None:
            return summary2
        if summary2 is None:
            return summary1
        return (summary1[0].union(summary2[0]), summary1[1] + summary2[1])

    def divide(self, summary1, summary2) -> SpatialPPlan:
        if summary1 is None or summary2 is None:
            return SpatialPPlan(None)
        total = summary1[1] + summary2[1]
        self.n = max(1, min(self.max_n,
                            int((total / self.target_per_tile) ** 0.5)))
        overlap = summary1[0].intersection(summary2[0])
        if overlap is None:
            return SpatialPPlan(None)
        return SpatialPPlan(UniformGrid(overlap, self.n))


class PartitionedIntervalJoin(IntervalJoin):
    """Interval join with *partitioned* theta matching (paper §VIII).

    The stock :class:`IntervalJoin` is a multi-join, so the engine falls
    back to the broadcast theta plan that §VII-C identifies as the
    scalability wall.  This extension realizes the paper's planned Theta
    Join Operator: the granule axis is cut into one contiguous range per
    worker, and a bucket spanning granules ``[s, e]`` is routed to every
    range it overlaps.  Two buckets can only match when their granule
    ranges overlap, so matching buckets always share a range — both sides
    co-partition, nothing is broadcast, and the join scales again.
    """

    name = "interval-partitioned"

    def partition_buckets(self, bucket_id: int, num_partitions: int,
                          pplan: IntervalPPlan) -> list:
        start = bucket_id >> _GRANULE_BITS
        end = bucket_id & _GRANULE_MASK
        span = max(1, -(-pplan.num_buckets // num_partitions))  # ceil
        first = min(start // span, num_partitions - 1)
        last = min(end // span, num_partitions - 1)
        return list(range(first, last + 1))


class SortMergeIntervalJoin(PartitionedIntervalJoin):
    """Interval join with a sort-merge local algorithm (paper §VIII).

    Realizes the remaining future-work direction — "support for
    sort-merge-based distributed joins" — on top of the partitioned theta
    plan: within each match partition, both sides are sorted by interval
    start and forward-scanned (the FS plane-sweep of Bouros & Mamoulis,
    the paper's reference [4]), so candidate enumeration drops from the
    all-pairs NLJ to ``O(n log n + matches)``.
    """

    name = "interval-sort-merge"

    def local_join(self, keys1, keys2, pplan):
        order1 = sorted(range(len(keys1)), key=lambda i: keys1[i].start)
        order2 = sorted(range(len(keys2)), key=lambda j: keys2[j].start)
        a = b = 0
        while a < len(order1) and b < len(order2):
            i = order1[a]
            j = order2[b]
            if keys1[i].start <= keys2[j].start:
                # Forward-scan the right side while it can still overlap.
                k = b
                while k < len(order2) and keys2[order2[k]].start < keys1[i].end:
                    yield i, order2[k]
                    k += 1
                a += 1
            else:
                k = a
                while k < len(order1) and keys1[order1[k]].start < keys2[j].end:
                    yield order1[k], j
                    k += 1
                b += 1


class LengthFilteredTextJoin(TextSimilarityJoin):
    """Text-similarity FUDJ with the classic *length filter* added.

    The prefix-filter literature the paper builds on (PPJoin, PEL — its
    refs [30], [31]) prunes candidate pairs whose token-set sizes are
    incompatible before computing any overlap: Jaccard >= t requires
    ``t * |b| <= |a| <= |b| / t``.  Expressed here through the
    ``local_join`` hook: within each prefix bucket, texts are sorted by
    token count and only size-compatible pairs are emitted as candidates.
    Results are unchanged; verification count drops at low thresholds,
    where the prefix filter alone degrades (Fig 11c).
    """

    name = "text-length-filtered"

    def local_join(self, keys1, keys2, pplan):
        from repro.text import tokenize

        sizes1 = [len(tokenize(text)) for text in keys1]
        sizes2 = [len(tokenize(text)) for text in keys2]
        order2 = sorted(range(len(keys2)), key=sizes2.__getitem__)
        threshold = pplan.threshold
        for i, size1 in enumerate(sizes1):
            if size1 == 0:
                # Empty texts: only the reserved bucket reaches here; all
                # pairs are candidates (Jaccard(empty, empty) = 1).
                for j in order2:
                    yield i, j
                continue
            low = threshold * size1
            high = size1 / threshold
            for j in order2:
                size2 = sizes2[j]
                if size2 < low:
                    continue
                if size2 > high:
                    break  # sorted by size: nothing later can qualify
                yield i, j
