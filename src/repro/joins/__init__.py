"""FUDJ join libraries: the paper's three example implementations.

Each class here is what a *user* of FUDJ writes — a few small functions,
no engine knowledge.  Table II counts the lines of these files against the
hand-written built-in operators in :mod:`repro.builtin`.
"""

from repro.joins.spatial import (
    ReferencePointSpatialJoin,
    SpatialContainsJoin,
    SpatialJoin,
)
from repro.joins.interval import IntervalJoin
from repro.joins.text_similarity import TextSimilarityJoin
from repro.joins.band import NumericBandJoin
from repro.joins.trajectory import TrajectoryProximityJoin
from repro.joins.extensions import (
    AutoTuneSpatialJoin,
    LengthFilteredTextJoin,
    PartitionedIntervalJoin,
    PlaneSweepSpatialJoin,
    SortMergeIntervalJoin,
)

__all__ = [
    "SpatialJoin",
    "SpatialContainsJoin",
    "ReferencePointSpatialJoin",
    "PlaneSweepSpatialJoin",
    "AutoTuneSpatialJoin",
    "IntervalJoin",
    "PartitionedIntervalJoin",
    "SortMergeIntervalJoin",
    "LengthFilteredTextJoin",
    "TextSimilarityJoin",
    "NumericBandJoin",
    "TrajectoryProximityJoin",
]
