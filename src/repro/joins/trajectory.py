"""Trajectory proximity FUDJ: trajectories that pass within ``eps``.

The paper's related work surveys a dozen trajectory-join systems; this
library shows the FUDJ model covering that domain too.  Partitioning is
PBSM-shaped: SUMMARIZE computes each side's MBR, DIVIDE grids the joint
extent, and ASSIGN maps each trajectory to every tile its MBR — expanded
by ``eps`` on the *left* side only — overlaps.  One-sided expansion keeps
the completeness proof simple: if two trajectories ever come within
``eps``, the right one's MBR intersects the left one's eps-expanded MBR,
so they share a (clamped) tile.  VERIFY computes the exact minimum
point-pair distance.
"""

from __future__ import annotations

from repro.core.flexible_join import FlexibleJoin, JoinSide
from repro.geometry import UniformGrid, mbr_of
from repro.joins.spatial import SpatialPPlan
from repro.trajectory import min_distance


class TrajectoryProximityJoin(FlexibleJoin):
    """Join trajectory pairs with minimum distance <= ``eps``.

    Parameters:
        eps: the proximity threshold (a query parameter).
        n: grid size (a tuning knob, usually a registration default).
    """

    name = "trajectory-proximity"

    def __init__(self, eps: float = 1.0, n: int = 32) -> None:
        super().__init__(eps, n)
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        self.eps = float(eps)
        self.n = int(n)

    def local_aggregate(self, trajectory, summary, side: JoinSide):
        box = mbr_of(trajectory)
        return box if summary is None else summary.union(box)

    def global_aggregate(self, summary1, summary2, side: JoinSide):
        if summary1 is None:
            return summary2
        if summary2 is None:
            return summary1
        return summary1.union(summary2)

    def divide(self, summary1, summary2) -> SpatialPPlan:
        if summary1 is None or summary2 is None:
            return SpatialPPlan(None)
        # Unlike PBSM's intersection, proximity needs an eps margin: pairs
        # can match across the boundary of the overlap region.
        extent = summary1.union(summary2)
        return SpatialPPlan(UniformGrid(extent, self.n))

    def assign(self, trajectory, pplan: SpatialPPlan, side: JoinSide):
        if pplan.grid is None:
            return []
        box = mbr_of(trajectory)
        if side is JoinSide.LEFT:
            box = box.expand(self.eps)
        return pplan.grid.overlapping_tile_ids(box)

    def verify(self, trajectory1, trajectory2, pplan) -> bool:
        # MBR-gap short circuit before the exact all-pairs minimum.
        from repro.geometry import distance

        if distance(trajectory1, trajectory2) > self.eps:
            return False
        return min_distance(trajectory1, trajectory2) <= self.eps
