"""Overlapping-Interval FUDJ, based on OIPJoin (paper §V-C).

SUMMARIZE finds each side's minimum start and maximum end; DIVIDE unifies
the two timelines and slices them into equal granules; ASSIGN places each
interval in the *smallest bucket it fits in* — a single bucket whose id
packs the start and end granule into one integer (``start << 16 | end``).
MATCH is overridden (granule ranges overlapping), which makes this a
*multi-join*: the engine must use the theta bucket-matching plan, the very
limitation the paper analyses in §VII-C.
"""

from __future__ import annotations

import math

from repro.core.flexible_join import FlexibleJoin, JoinSide

_GRANULE_BITS = 16
_GRANULE_MASK = (1 << _GRANULE_BITS) - 1


class IntervalSummary:
    """Minimum start / maximum end of one side."""

    __slots__ = ("min_start", "max_end")

    def __init__(self, min_start: float, max_end: float) -> None:
        self.min_start = min_start
        self.max_end = max_end


class IntervalPPlan:
    """Timeline origin, granule length, and bucket count."""

    __slots__ = ("min_start", "granule", "num_buckets")

    def __init__(self, min_start: float, granule: float, num_buckets: int) -> None:
        self.min_start = min_start
        self.granule = granule
        self.num_buckets = num_buckets


class IntervalJoin(FlexibleJoin):
    """OIPJoin-style overlapping-interval join.

    The constructor parameter is the number of timeline granules (the
    paper sweeps it in Fig 11b; 1000 is the paper's choice).  It must stay
    below 2**16 because bucket ids pack two granule indexes into one int.
    """

    name = "interval"

    def __init__(self, num_buckets: int = 100) -> None:
        super().__init__(num_buckets)
        num_buckets = int(num_buckets)
        if not 1 <= num_buckets <= _GRANULE_MASK:
            raise ValueError(
                f"number of buckets must be in [1, {_GRANULE_MASK}], "
                f"got {num_buckets}"
            )
        self.num_buckets = num_buckets

    def local_aggregate(self, interval, summary, side: JoinSide):
        if summary is None:
            return IntervalSummary(interval.start, interval.end)
        summary.min_start = min(summary.min_start, interval.start)
        summary.max_end = max(summary.max_end, interval.end)
        return summary

    def global_aggregate(self, summary1, summary2, side: JoinSide):
        if summary1 is None:
            return summary2
        if summary2 is None:
            return summary1
        return IntervalSummary(
            min(summary1.min_start, summary2.min_start),
            max(summary1.max_end, summary2.max_end),
        )

    def divide(self, summary1, summary2) -> IntervalPPlan:
        if summary1 is None or summary2 is None:
            return IntervalPPlan(0.0, 1.0, self.num_buckets)
        min_start = min(summary1.min_start, summary2.min_start)
        max_end = max(summary1.max_end, summary2.max_end)
        length = max_end - min_start
        granule = length / self.num_buckets
        if granule <= 0.0:
            # Degenerate or subnormal timelines (a tiny positive length
            # can underflow to a zero granule) fall back to unit granules.
            granule = 1.0
        return IntervalPPlan(min_start, granule, self.num_buckets)

    def assign(self, interval, pplan: IntervalPPlan, side: JoinSide) -> int:
        top = pplan.num_buckets - 1
        start = int((interval.start - pplan.min_start) / pplan.granule)
        start = max(0, min(top, start))
        end = int(math.ceil((interval.end - pplan.min_start) / pplan.granule)) - 1
        end = max(start, min(top, end))
        return (start << _GRANULE_BITS) | end

    def match(self, bucket_id1: int, bucket_id2: int) -> bool:
        start1 = bucket_id1 >> _GRANULE_BITS
        end1 = bucket_id1 & _GRANULE_MASK
        start2 = bucket_id2 >> _GRANULE_BITS
        end2 = bucket_id2 & _GRANULE_MASK
        return start1 <= end2 and end1 >= start2

    def verify(self, interval1, interval2, pplan) -> bool:
        return interval1.start < interval2.end and interval1.end > interval2.start

    def uses_dedup(self) -> bool:
        # Single-assign partitioning: each interval lives in exactly one
        # bucket, so no duplicates can arise.
        return False

