"""Read-only live monitor: the engine's observability over HTTP.

A zero-dependency ``http.server`` front door onto a running
:class:`~repro.database.Database` — what an operator (or a Prometheus
scraper) points at while a session is executing queries:

* ``GET /healthz`` — liveness: ``{"status": "ok", ...}``.
* ``GET /metrics`` — the telemetry registry in Prometheus text
  exposition format.  Scrape parity is a contract: the body equals
  ``Database.metrics_snapshot("prometheus")`` for the same instant
  (the scrape stamps ``fudj_uptime_seconds`` first, and the stamped
  value persists, so a snapshot taken right after the scrape renders
  the same bytes).
* ``GET /queries`` — the retained query history (``sys.queries`` rows)
  as a JSON array.
* ``GET /events`` — the retained event log as NDJSON, one canonical
  JSON object per line (``?tail=N`` keeps the newest N).
* ``GET /traces/<query_id>`` — one query's per-stage timeline as Chrome
  trace-event JSON (load it in ``chrome://tracing`` / Perfetto).
  Synthesized deterministically from the recorded stage rows: one
  complete event per stage, 1 charged unit = 1 µs.

The monitor runs on a daemon thread, serves GETs only, and never
mutates the database — it is safe to leave attached for the whole
session.  Start it with :meth:`Database.serve_monitor
<repro.database.Database.serve_monitor>` or the CLI's
``--monitor-port``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse, parse_qs

from repro.errors import ServerError

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def chrome_trace(entry: dict) -> dict:
    """One recorded query as a Chrome trace-event document.

    Stages become complete ("ph": "X") events laid end to end on one
    timeline row, with 1 charged cost-model unit rendered as 1 µs —
    deterministic, and proportional to the simulated makespan.
    """
    events = []
    cursor = 0.0
    for row in entry.get("stages", ()):
        duration = max(float(row["cpu_units"]), 1.0)
        events.append({
            "name": row["stage"],
            "cat": row["phase"] or "other",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": round(cursor, 3),
            "dur": round(duration, 3),
            "args": {
                "records_in": row["records_in"],
                "records_out": row["records_out"],
                "workers": row["workers"],
                "cpu_units": row["cpu_units"],
            },
        })
        cursor += duration
    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "query_id": entry["id"],
            "sql": entry["sql"],
            "status": entry["status"],
        },
        "traceEvents": events,
    }


class _MonitorHandler(BaseHTTPRequestHandler):
    """One GET-only request handler bound (via the server) to a database."""

    server_version = "fudj-monitor"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        return  # keep the shell quiet; the monitor is a side channel

    # -- plumbing -------------------------------------------------------------

    @property
    def db(self):
        return self.server.database

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, obj, status: int = 200) -> None:
        self._send(status, json.dumps(obj, sort_keys=True), "application/json")

    def _not_found(self, path: str) -> None:
        self._send_json({"error": f"no such endpoint: {path}"}, status=404)

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._healthz()
            elif path == "/metrics":
                self._metrics()
            elif path == "/queries":
                self._send_json(self.db.telemetry.queries_rows())
            elif path == "/events":
                self._events(parse_qs(parsed.query))
            elif path.startswith("/traces/"):
                self._trace(path[len("/traces/"):])
            else:
                self._not_found(path)
        except BrokenPipeError:
            pass  # client went away mid-response

    def _healthz(self) -> None:
        telemetry = self.db.telemetry
        self._send_json({
            "status": "ok",
            "backend": self.db.backend,
            "execution": self.db.execution,
            "queries_recorded": telemetry.history.total_recorded,
            "events_emitted": telemetry.events.total_emitted,
            "uptime_seconds": telemetry.touch_uptime(),
        })

    def _metrics(self) -> None:
        # Stamp the uptime gauge *before* rendering: the scrape carries
        # it, and because the stamped value persists in the registry, a
        # metrics_snapshot() taken at the same instant renders the same
        # bytes (the scrape-parity contract the tests pin down).
        self.db.telemetry.touch_uptime()
        self._send(200, self.db.metrics_snapshot("prometheus"),
                   METRICS_CONTENT_TYPE)

    def _events(self, query) -> None:
        log = self.db.telemetry.events
        try:
            tail = int(query.get("tail", [0])[0])
        except (TypeError, ValueError):
            tail = 0
        events = log.tail(tail) if tail > 0 else log.events()
        body = "".join(event.to_line() + "\n" for event in events)
        self._send(200, body, "application/x-ndjson")

    def _trace(self, raw_id: str) -> None:
        try:
            query_id = int(raw_id)
        except ValueError:
            self._not_found(f"/traces/{raw_id}")
            return
        for entry in self.db.telemetry.history.entries():
            if entry["id"] == query_id:
                self._send_json(chrome_trace(entry))
                return
        self._send_json(
            {"error": f"query {query_id} is not in the retained history"},
            status=404,
        )


class MonitorServer:
    """The read-only monitor: a threaded HTTP server on a daemon thread.

    ``port=0`` binds any free port; read the real one from :attr:`port`
    after :meth:`start`.  :meth:`stop` shuts the listener down and joins
    the thread — also wired into :meth:`Database.close
    <repro.database.Database.close>`.
    """

    def __init__(self, database, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.database = database
        try:
            self._server = ThreadingHTTPServer((host, port),
                                               _MonitorHandler)
        except OSError as exc:
            raise ServerError(
                f"monitor cannot bind {host}:{port}: {exc}",
                host=host, port=port,
            ) from exc
        self._server.daemon_threads = True
        self._server.database = database
        self._thread = None
        self._closed = False

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitorServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="fudj-monitor", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join its thread.  Idempotent —
        repeated calls (or ``Database.close()`` after an explicit stop)
        are no-ops, never a double-close on the socket."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        if not self._closed:
            self._closed = True
            self._server.server_close()
