"""Boxed engine value types (the AsterixDB ``AInt64``-style internals).

Inside the engine every field value is an :class:`AValue` subclass carrying
a type tag.  The FUDJ boundary unboxes these into plain Python objects
(ints, floats, strings, geometry/interval objects) and boxes results back;
that conversion is the translation-layer cost the paper measures in
§VII-B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SerdeError
from repro.geometry import Point, Polygon, Rectangle
from repro.interval import Interval
from repro.trajectory import Trajectory


class AValue:
    """Base class of all boxed engine values."""

    __slots__ = ()
    type_tag = "any"

    def to_python(self):
        """Return the plain Python value this box wraps."""
        raise NotImplementedError


@dataclass(frozen=True)
class ANull(AValue):
    """The SQL NULL value."""

    type_tag = "null"

    def to_python(self):
        return None


@dataclass(frozen=True)
class ABoolean(AValue):
    type_tag = "boolean"
    value: bool

    def to_python(self):
        return self.value


@dataclass(frozen=True)
class AInt64(AValue):
    type_tag = "int64"
    value: int

    def to_python(self):
        return self.value


@dataclass(frozen=True)
class ADouble(AValue):
    type_tag = "double"
    value: float

    def to_python(self):
        return self.value


@dataclass(frozen=True)
class AString(AValue):
    type_tag = "string"
    value: str

    def to_python(self):
        return self.value


@dataclass(frozen=True)
class AGeometry(AValue):
    """A boxed geometry (Point, Rectangle, or Polygon)."""

    type_tag = "geometry"
    value: object

    def to_python(self):
        return self.value


@dataclass(frozen=True)
class AInterval(AValue):
    """A boxed interval; crosses the FUDJ boundary as an Interval object
    (the paper's "long array" of start/end, §VI-B, with structure kept)."""

    type_tag = "interval"
    value: Interval

    def to_python(self):
        return self.value


@dataclass(frozen=True)
class AList(AValue):
    """A boxed ordered list of boxed values."""

    type_tag = "list"
    items: tuple

    def to_python(self):
        return [item.to_python() for item in self.items]


NULL = ANull()
TRUE = ABoolean(True)
FALSE = ABoolean(False)


def box(value) -> AValue:
    """Box a plain Python value into the matching engine value type."""
    if value is None:
        return NULL
    if isinstance(value, AValue):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    if isinstance(value, int):
        return AInt64(value)
    if isinstance(value, float):
        return ADouble(value)
    if isinstance(value, str):
        return AString(value)
    if isinstance(value, (Point, Rectangle, Polygon, Trajectory)):
        return AGeometry(value)
    if isinstance(value, Interval):
        return AInterval(value)
    if isinstance(value, (list, tuple)):
        return AList(tuple(box(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return AList(tuple(box(v) for v in sorted(value)))
    raise SerdeError(f"cannot box value of type {type(value).__name__}: {value!r}")


def unbox(value):
    """Unbox an engine value to plain Python; passes plain values through.

    Accepting plain values makes operator code robust when literals are
    injected mid-plan without an explicit boxing step.
    """
    if isinstance(value, AValue):
        return value.to_python()
    return value
