"""Compact binary wire format for boxed values and records.

The exchange operators serialize every record they move between simulated
nodes; the byte counts feed the network term of the cost model, so the
format is a real, round-trippable encoding rather than an estimate.

Layout: one type byte followed by a type-specific body.  Variable-length
bodies carry a 4-byte big-endian length prefix.
"""

from __future__ import annotations

import struct

from repro.errors import SerdeError
from repro.geometry import Point, Polygon, Rectangle
from repro.interval import Interval
from repro.trajectory import Trajectory
from repro.serde.values import (
    ABoolean,
    ADouble,
    AGeometry,
    AInt64,
    AInterval,
    AList,
    ANull,
    AString,
    AValue,
    NULL,
)

_TAG_NULL = b"\x00"
_TAG_TRUE = b"\x01"
_TAG_FALSE = b"\x02"
_TAG_INT64 = b"\x03"
_TAG_DOUBLE = b"\x04"
_TAG_STRING = b"\x05"
_TAG_POINT = b"\x06"
_TAG_RECTANGLE = b"\x07"
_TAG_POLYGON = b"\x08"
_TAG_INTERVAL = b"\x09"
_TAG_LIST = b"\x0a"
_TAG_TRAJECTORY = b"\x0b"

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")
_POINT = struct.Struct(">dd")
_RECT = struct.Struct(">dddd")
_INTERVAL = struct.Struct(">dd")


def serialize_value(value: AValue, out: bytearray) -> None:
    """Append the binary encoding of ``value`` to ``out``."""
    if isinstance(value, ANull):
        out += _TAG_NULL
    elif isinstance(value, ABoolean):
        out += _TAG_TRUE if value.value else _TAG_FALSE
    elif isinstance(value, AInt64):
        out += _TAG_INT64
        out += _I64.pack(value.value)
    elif isinstance(value, ADouble):
        out += _TAG_DOUBLE
        out += _F64.pack(value.value)
    elif isinstance(value, AString):
        data = value.value.encode("utf-8")
        out += _TAG_STRING
        out += _U32.pack(len(data))
        out += data
    elif isinstance(value, AGeometry):
        _serialize_geometry(value.value, out)
    elif isinstance(value, AInterval):
        out += _TAG_INTERVAL
        out += _INTERVAL.pack(value.value.start, value.value.end)
    elif isinstance(value, AList):
        out += _TAG_LIST
        out += _U32.pack(len(value.items))
        for item in value.items:
            serialize_value(item, out)
    else:
        raise SerdeError(f"cannot serialize value of type {type(value).__name__}")


def _serialize_geometry(geom, out: bytearray) -> None:
    if isinstance(geom, Point):
        out += _TAG_POINT
        out += _POINT.pack(geom.x, geom.y)
    elif isinstance(geom, Rectangle):
        out += _TAG_RECTANGLE
        out += _RECT.pack(geom.x1, geom.y1, geom.x2, geom.y2)
    elif isinstance(geom, Polygon):
        out += _TAG_POLYGON
        out += _U32.pack(len(geom.vertices))
        for v in geom.vertices:
            out += _POINT.pack(v.x, v.y)
    elif isinstance(geom, Trajectory):
        out += _TAG_TRAJECTORY
        out += _U32.pack(len(geom.points))
        for v in geom.points:
            out += _POINT.pack(v.x, v.y)
    else:
        raise SerdeError(f"cannot serialize geometry of type {type(geom).__name__}")


def deserialize_value(data, offset: int = 0):
    """Decode one value from ``data`` at ``offset``.

    Returns:
        ``(AValue, next_offset)``.
    """
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _TAG_NULL:
        return NULL, offset
    if tag == _TAG_TRUE:
        return ABoolean(True), offset
    if tag == _TAG_FALSE:
        return ABoolean(False), offset
    if tag == _TAG_INT64:
        (v,) = _I64.unpack_from(data, offset)
        return AInt64(v), offset + 8
    if tag == _TAG_DOUBLE:
        (v,) = _F64.unpack_from(data, offset)
        return ADouble(v), offset + 8
    if tag == _TAG_STRING:
        (n,) = _U32.unpack_from(data, offset)
        offset += 4
        text = bytes(data[offset : offset + n]).decode("utf-8")
        return AString(text), offset + n
    if tag == _TAG_POINT:
        x, y = _POINT.unpack_from(data, offset)
        return AGeometry(Point(x, y)), offset + 16
    if tag == _TAG_RECTANGLE:
        x1, y1, x2, y2 = _RECT.unpack_from(data, offset)
        return AGeometry(Rectangle(x1, y1, x2, y2)), offset + 32
    if tag == _TAG_POLYGON:
        (n,) = _U32.unpack_from(data, offset)
        offset += 4
        vertices = []
        for _ in range(n):
            x, y = _POINT.unpack_from(data, offset)
            vertices.append(Point(x, y))
            offset += 16
        return AGeometry(Polygon(vertices)), offset
    if tag == _TAG_TRAJECTORY:
        (n,) = _U32.unpack_from(data, offset)
        offset += 4
        points = []
        for _ in range(n):
            x, y = _POINT.unpack_from(data, offset)
            points.append(Point(x, y))
            offset += 16
        return AGeometry(Trajectory(points)), offset
    if tag == _TAG_INTERVAL:
        start, end = _INTERVAL.unpack_from(data, offset)
        return AInterval(Interval(start, end)), offset + 16
    if tag == _TAG_LIST:
        (n,) = _U32.unpack_from(data, offset)
        offset += 4
        items = []
        for _ in range(n):
            item, offset = deserialize_value(data, offset)
            items.append(item)
        return AList(tuple(items)), offset
    raise SerdeError(f"unknown type tag: {tag!r} at offset {offset - 1}")


def serialized_size(value: AValue) -> int:
    """Number of bytes ``value`` occupies on the wire."""
    buf = bytearray()
    serialize_value(value, buf)
    return len(buf)
