"""The FUDJ translation layer (paper Figure 7).

A *proxy built-in function* sits between the engine and the user's FUDJ
library: engine-internal boxed values are converted into plain Python
values before each FUDJ callback, and results are boxed back on return.
The translator counts conversions so that the FUDJ-vs-built-in overhead of
paper §VII-B is measurable rather than asserted.
"""

from __future__ import annotations

from repro.serde.values import AValue, box, unbox


class Translator:
    """Converts values at the engine/FUDJ boundary and counts the work.

    Attributes:
        unbox_count: number of engine→Python conversions performed.
        box_count: number of Python→engine conversions performed.
    """

    __slots__ = ("unbox_count", "box_count")

    def __init__(self) -> None:
        self.unbox_count = 0
        self.box_count = 0

    def to_external(self, value):
        """Engine value → plain Python value for the FUDJ library."""
        self.unbox_count += 1
        return unbox(value)

    def to_internal(self, value) -> AValue:
        """Plain Python value → engine value."""
        self.box_count += 1
        return box(value)

    @property
    def total_conversions(self) -> int:
        return self.unbox_count + self.box_count

    def reset(self) -> None:
        self.unbox_count = 0
        self.box_count = 0
