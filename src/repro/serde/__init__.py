"""Serialization substrate: boxed engine values and the FUDJ boundary.

A real DBMS stores typed, serialized values (AsterixDB's ``AInt64`` etc.).
FUDJ user code, by contrast, wants plain language values (paper Figure 7).
This package provides:

- :mod:`repro.serde.values` — the engine's boxed value types,
- :mod:`repro.serde.serializer` — a compact binary wire format used by the
  exchange operators (so shuffle byte counts are real),
- :mod:`repro.serde.translator` — the proxy built-in function translation
  layer that unboxes engine values into plain Python values for the FUDJ
  library and boxes results back.
"""

from repro.serde.values import (
    ABoolean,
    ADouble,
    AGeometry,
    AInt64,
    AInterval,
    AList,
    ANull,
    AString,
    AValue,
    box,
    unbox,
)
from repro.serde.serializer import deserialize_value, serialize_value, serialized_size
from repro.serde.translator import Translator

__all__ = [
    "AValue",
    "ANull",
    "ABoolean",
    "AInt64",
    "ADouble",
    "AString",
    "AGeometry",
    "AInterval",
    "AList",
    "box",
    "unbox",
    "serialize_value",
    "deserialize_value",
    "serialized_size",
    "Translator",
]
