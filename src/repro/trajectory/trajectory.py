"""The Trajectory type and its distance measures.

A trajectory is an ordered sequence of sampled positions.  Two measures
matter for joins:

- :func:`min_distance` — how close the two trajectories ever get
  (the *proximity join* predicate: "vehicles that passed within eps");
- :func:`hausdorff_distance` — how similar the paths are as shapes
  (the *similarity join* predicate).

Both are computed over the sample points, which is the standard discrete
approximation in the trajectory-join literature.
"""

from __future__ import annotations

from repro.geometry import Point, Rectangle


class Trajectory:
    """An immutable, ordered sequence of at least one sample point.

    The MBR is precomputed — grid partitioning touches it per record.
    """

    __slots__ = ("points", "_mbr")

    def __init__(self, points) -> None:
        self.points = tuple(
            p if isinstance(p, Point) else Point(p[0], p[1]) for p in points
        )
        if not self.points:
            raise ValueError("a trajectory needs at least one point")
        self._mbr = Rectangle.from_points(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Trajectory) and self.points == other.points

    def __hash__(self) -> int:
        return hash(self.points)

    def __repr__(self) -> str:
        return f"Trajectory({len(self.points)} points, mbr={self._mbr.as_tuple()})"

    def mbr(self) -> Rectangle:
        """The precomputed minimum bounding rectangle."""
        return self._mbr

    def length(self) -> float:
        """Total path length along the samples."""
        return sum(
            self.points[i].distance_to(self.points[i + 1])
            for i in range(len(self.points) - 1)
        )

    def as_tuple(self) -> tuple:
        """The sample points as ``(x, y)`` pairs (serialization form)."""
        return tuple(p.as_tuple() for p in self.points)


def _point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the closed segment ``a-b``."""
    dx, dy = b.x - a.x, b.y - a.y
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return p.distance_to(a)
    t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / length_sq
    t = max(0.0, min(1.0, t))
    return p.distance_to(Point(a.x + t * dx, a.y + t * dy))


def _segments_cross(a1: Point, a2: Point, b1: Point, b2: Point) -> bool:
    from repro.geometry.polygon import _segments_intersect

    return _segments_intersect(a1, a2, b1, b2)


def segment_distance(a1: Point, a2: Point, b1: Point, b2: Point) -> float:
    """Distance between two closed segments (0.0 when they cross)."""
    if _segments_cross(a1, a2, b1, b2):
        return 0.0
    return min(
        _point_segment_distance(a1, b1, b2),
        _point_segment_distance(a2, b1, b2),
        _point_segment_distance(b1, a1, a2),
        _point_segment_distance(b2, a1, a2),
    )


def min_distance(a: Trajectory, b: Trajectory) -> float:
    """Smallest distance between the two polylines.

    Computed segment-to-segment (not just over the sample points), so two
    routes that *cross* between samples correctly measure 0 — the case a
    point-sample approximation misses.  Degenerate single-point
    trajectories fall back to point-segment distance.
    """
    segs_a = _segments_of(a)
    segs_b = _segments_of(b)
    best = None
    for a1, a2 in segs_a:
        for b1, b2 in segs_b:
            d = segment_distance(a1, a2, b1, b2)
            if best is None or d < best:
                best = d
                if best == 0.0:
                    return 0.0
    return best


def _segments_of(t: Trajectory) -> list:
    """The polyline's segments; a single point yields one degenerate
    segment so distance code has a uniform shape to work with."""
    if len(t.points) == 1:
        return [(t.points[0], t.points[0])]
    return [(t.points[i], t.points[i + 1]) for i in range(len(t.points) - 1)]


def hausdorff_distance(a: Trajectory, b: Trajectory) -> float:
    """Discrete Hausdorff distance between the two sample sets.

    ``max(h(a, b), h(b, a))`` where ``h(x, y)`` is the largest
    nearest-neighbour distance from a sample of ``x`` to ``y``.
    """

    def directed(xs, ys) -> float:
        worst = 0.0
        for p in xs:
            nearest = min(p.distance_to(q) for q in ys)
            if nearest > worst:
                worst = nearest
        return worst

    return max(directed(a.points, b.points), directed(b.points, a.points))
