"""Trajectory substrate: polylines with proximity/similarity measures.

Trajectory joins are the largest family in the paper's related work
(refs [2, 3, 7, 8], [34]-[38]); this package provides the substrate a
trajectory FUDJ needs — a polyline type with an MBR, minimum inter-
trajectory distance, and discrete Hausdorff distance.
"""

from repro.trajectory.trajectory import (
    Trajectory,
    hausdorff_distance,
    min_distance,
    segment_distance,
)

__all__ = ["Trajectory", "min_distance", "hausdorff_distance",
           "segment_distance"]
