"""Catalog metadata objects.

The catalog records what exists (types, datasets, joins); the cluster owns
the actual partitioned data, and the join registry owns FUDJ libraries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError

#: Field types the DDL accepts.  They are descriptive — records carry
#: boxed values whose runtime type is authoritative — but the parser and
#: examples use them, so unknown names are rejected early.
VALID_FIELD_TYPES = frozenset({
    "uuid", "string", "text", "int", "int64", "bigint", "float", "double",
    "boolean", "geometry", "point", "polygon", "rectangle", "interval",
    "datetime", "list", "trajectory",
})


@dataclass(frozen=True)
class TypeInfo:
    """A named record type: ``CREATE TYPE``."""

    name: str
    fields: tuple  # ((field_name, type_name), ...)

    @property
    def field_names(self) -> tuple:
        return tuple(name for name, _ in self.fields)


@dataclass(frozen=True)
class DatasetInfo:
    """A dataset's catalog entry: ``CREATE DATASET``."""

    name: str
    type_name: str
    field_names: tuple
    primary_key: str


class Catalog:
    """Types and dataset metadata for one database."""

    def __init__(self) -> None:
        self._types = {}
        self._datasets = {}

    # -- types ----------------------------------------------------------------

    def create_type(self, name: str, fields) -> TypeInfo:
        if name in self._types:
            raise CatalogError(f"type already exists: {name}")
        normalized = []
        for field_name, type_name in fields:
            type_name = type_name.lower()
            if type_name not in VALID_FIELD_TYPES:
                raise CatalogError(
                    f"unknown field type {type_name!r} for {name}.{field_name}"
                )
            normalized.append((field_name, type_name))
        if not normalized:
            raise CatalogError(f"type {name} has no fields")
        info = TypeInfo(name, tuple(normalized))
        self._types[name] = info
        return info

    def type_info(self, name: str) -> TypeInfo:
        try:
            return self._types[name]
        except KeyError:
            raise CatalogError(f"no such type: {name}") from None

    def has_type(self, name: str) -> bool:
        return name in self._types

    # -- datasets --------------------------------------------------------------

    def create_dataset(self, name: str, type_name: str, primary_key: str) -> DatasetInfo:
        if name in self._datasets:
            raise CatalogError(f"dataset already exists: {name}")
        type_info = self.type_info(type_name)
        if primary_key not in type_info.field_names:
            raise CatalogError(
                f"primary key {primary_key!r} is not a field of type {type_name}"
            )
        info = DatasetInfo(name, type_name, type_info.field_names, primary_key)
        self._datasets[name] = info
        return info

    def drop_dataset(self, name: str) -> None:
        if name not in self._datasets:
            raise CatalogError(f"no such dataset: {name}")
        del self._datasets[name]

    def dataset_info(self, name: str) -> DatasetInfo:
        try:
            return self._datasets[name]
        except KeyError:
            raise CatalogError(f"no such dataset: {name}") from None

    def has_dataset(self, name: str) -> bool:
        return name in self._datasets

    def dataset_names(self) -> list:
        return sorted(self._datasets)
