"""Catalog metadata objects.

The catalog records what exists (types, datasets, joins); the cluster owns
the actual partitioned data, and the join registry owns FUDJ libraries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError

#: Field types the DDL accepts.  They are descriptive — records carry
#: boxed values whose runtime type is authoritative — but the parser and
#: examples use them, so unknown names are rejected early.
VALID_FIELD_TYPES = frozenset({
    "uuid", "string", "text", "int", "int64", "bigint", "float", "double",
    "boolean", "geometry", "point", "polygon", "rectangle", "interval",
    "datetime", "list", "trajectory",
})


@dataclass(frozen=True)
class TypeInfo:
    """A named record type: ``CREATE TYPE``."""

    name: str
    fields: tuple  # ((field_name, type_name), ...)

    @property
    def field_names(self) -> tuple:
        return tuple(name for name, _ in self.fields)


@dataclass(frozen=True)
class DatasetInfo:
    """A dataset's catalog entry: ``CREATE DATASET``."""

    name: str
    type_name: str
    field_names: tuple
    primary_key: str


class Catalog:
    """Types and dataset metadata for one database.

    Besides user datasets, the catalog holds *virtual tables* —
    engine-provided relations (the ``sys.*`` introspection surface)
    whose rows are produced on demand by the cluster.  Virtual tables
    resolve through :meth:`dataset_info` like any dataset, so the
    binder and planner need no special cases; they are excluded from
    :meth:`dataset_names` (and therefore from persistence) and cannot
    be created or dropped via DDL.
    """

    def __init__(self) -> None:
        self._types = {}
        self._datasets = {}
        self._virtual = {}

    # -- types ----------------------------------------------------------------

    def create_type(self, name: str, fields) -> TypeInfo:
        if name in self._types:
            raise CatalogError(f"type already exists: {name}")
        normalized = []
        for field_name, type_name in fields:
            type_name = type_name.lower()
            if type_name not in VALID_FIELD_TYPES:
                raise CatalogError(
                    f"unknown field type {type_name!r} for {name}.{field_name}"
                )
            normalized.append((field_name, type_name))
        if not normalized:
            raise CatalogError(f"type {name} has no fields")
        info = TypeInfo(name, tuple(normalized))
        self._types[name] = info
        return info

    def type_info(self, name: str) -> TypeInfo:
        try:
            return self._types[name]
        except KeyError:
            raise CatalogError(f"no such type: {name}") from None

    def has_type(self, name: str) -> bool:
        return name in self._types

    # -- datasets --------------------------------------------------------------

    def create_dataset(self, name: str, type_name: str, primary_key: str) -> DatasetInfo:
        if name in self._datasets:
            raise CatalogError(f"dataset already exists: {name}")
        if name in self._virtual or name.lower().startswith("sys."):
            raise CatalogError(
                f"cannot create dataset {name}: the sys.* namespace is "
                f"reserved for virtual tables"
            )
        type_info = self.type_info(type_name)
        if primary_key not in type_info.field_names:
            raise CatalogError(
                f"primary key {primary_key!r} is not a field of type {type_name}"
            )
        info = DatasetInfo(name, type_name, type_info.field_names, primary_key)
        self._datasets[name] = info
        return info

    def drop_dataset(self, name: str) -> None:
        if name in self._virtual:
            raise CatalogError(f"cannot drop virtual table: {name}")
        if name not in self._datasets:
            raise CatalogError(f"no such dataset: {name}")
        del self._datasets[name]

    def dataset_info(self, name: str) -> DatasetInfo:
        info = self._datasets.get(name) or self._virtual.get(name)
        if info is None:
            raise CatalogError(f"no such dataset: {name}")
        return info

    def has_dataset(self, name: str) -> bool:
        return name in self._datasets or name in self._virtual

    def dataset_names(self) -> list:
        """User datasets only — virtual tables are listed separately by
        :meth:`virtual_names` (and are never persisted)."""
        return sorted(self._datasets)

    # -- virtual tables --------------------------------------------------------

    def register_virtual_table(self, name: str, fields) -> DatasetInfo:
        """Register an engine-provided relation (``sys.*``).

        ``fields`` is ``[(field_name, type_name), ...]``; types are
        validated like ``CREATE TYPE`` fields.  The entry resolves via
        :meth:`dataset_info` but is invisible to :meth:`dataset_names`.
        """
        if name in self._datasets or name in self._virtual:
            raise CatalogError(f"dataset already exists: {name}")
        for field_name, type_name in fields:
            if type_name.lower() not in VALID_FIELD_TYPES:
                raise CatalogError(
                    f"unknown field type {type_name!r} for {name}.{field_name}"
                )
        field_names = tuple(field_name for field_name, _ in fields)
        info = DatasetInfo(name, "$virtual", field_names,
                           field_names[0] if field_names else "")
        self._virtual[name] = info
        return info

    def is_virtual(self, name: str) -> bool:
        return name in self._virtual

    def virtual_names(self) -> list:
        return sorted(self._virtual)
