"""Catalog: metadata for types, datasets, and installed joins."""

from repro.catalog.catalog import Catalog, DatasetInfo, TypeInfo

__all__ = ["Catalog", "DatasetInfo", "TypeInfo"]
