"""The scalar built-in function registry.

These are the predicates and constructors that appear in the paper's
queries (``ST_Contains``, ``ST_MakePoint``, ``similarity_jaccard``,
``word_tokens``, ``overlapping_interval``, ``interval``, ``parse_date``).
They run as ordinary scalar functions — which is exactly what the *on-top*
baseline does inside a nested-loop join.  Functions flagged ``expensive``
are charged at the cost model's heavy-predicate rate.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.errors import PlanError
from repro.geometry import Point, Rectangle, contains, distance, intersects
from repro.interval import Interval
from repro.text import jaccard_similarity, tokenize, word_tokens
from repro.trajectory import hausdorff_distance, min_distance


@dataclass(frozen=True)
class FunctionDef:
    """One registered scalar function."""

    name: str
    fn: object
    arity: int  # -1 means variadic
    expensive: bool = False


class FunctionRegistry:
    """Name -> FunctionDef map with registration and lookup."""

    def __init__(self) -> None:
        self._functions = {}

    def register(self, name: str, fn, arity: int, expensive: bool = False) -> None:
        key = name.lower()
        if key in self._functions:
            raise PlanError(f"function already registered: {name}")
        self._functions[key] = FunctionDef(key, fn, arity, expensive)

    def register_udf(self, name: str, fn, arity: int = -1,
                     expensive: bool = True) -> None:
        """Register a user-defined scalar function (UDFs default to
        expensive — the engine cannot see inside them)."""
        self.register(name, fn, arity, expensive)

    def lookup(self, name: str) -> FunctionDef:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise PlanError(f"unknown function: {name}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def names(self) -> list:
        return sorted(self._functions)


# -- implementations ----------------------------------------------------------------


def _st_makepoint(x, y) -> Point:
    return Point(float(x), float(y))


def _st_contains(outer, inner) -> bool:
    return contains(outer, inner)


def _st_intersects(a, b) -> bool:
    return intersects(a, b)


def _st_distance(a, b) -> float:
    return distance(a, b)


def _st_rectangle(x1, y1, x2, y2) -> Rectangle:
    return Rectangle(float(x1), float(y1), float(x2), float(y2))


def _similarity_jaccard(a, b) -> float:
    # Accepts raw strings (tokenized here) or pre-tokenized collections.
    sa = tokenize(a) if isinstance(a, str) else a
    sb = tokenize(b) if isinstance(b, str) else b
    return jaccard_similarity(sa, sb)


def _interval(start, end) -> Interval:
    return Interval(float(start), float(end))


def _overlapping_interval(a: Interval, b: Interval) -> bool:
    return a.overlaps(b)


def _parse_date(text: str, fmt: str = "M/D/Y") -> float:
    """Parse a date into epoch seconds.

    Supports the paper's ``M/D/Y`` style plus ISO ``Y-M-D``; times are
    epoch floats everywhere else in the engine, so dates become floats
    here too.
    """
    text = text.strip()
    if fmt.upper() in ("M/D/Y", "MM/DD/YYYY"):
        month, day, year = (int(part) for part in text.split("/"))
    elif fmt.upper() in ("Y-M-D", "YYYY-MM-DD"):
        year, month, day = (int(part) for part in text.split("-"))
    else:
        raise PlanError(f"unsupported date format: {fmt}")
    moment = _dt.datetime(year, month, day, tzinfo=_dt.timezone.utc)
    return moment.timestamp()


def default_function_registry() -> FunctionRegistry:
    """The registry every new database starts with."""
    registry = FunctionRegistry()
    registry.register("st_makepoint", _st_makepoint, 2)
    registry.register("st_make_point", _st_makepoint, 2)
    registry.register("st_contains", _st_contains, 2, expensive=True)
    registry.register("st_intersects", _st_intersects, 2, expensive=True)
    registry.register("st_distance", _st_distance, 2, expensive=True)
    registry.register("st_rectangle", _st_rectangle, 4)
    registry.register("similarity_jaccard", _similarity_jaccard, 2, expensive=True)
    registry.register("jaccard_similarity", _similarity_jaccard, 2, expensive=True)
    registry.register("word_tokens", word_tokens, 1)
    registry.register("interval", _interval, 2)
    registry.register("overlapping_interval", _overlapping_interval, 2, expensive=True)
    registry.register("interval_overlapping", _overlapping_interval, 2, expensive=True)
    registry.register("trajectory_min_distance", min_distance, 2,
                      expensive=True)
    registry.register("hausdorff_distance", hausdorff_distance, 2,
                      expensive=True)
    registry.register("parse_date", _parse_date, -1)
    registry.register("abs", abs, 1)
    registry.register("length", len, 1)
    registry.register("lower", lambda s: s.lower(), 1)
    registry.register("upper", lambda s: s.upper(), 1)
    return registry
