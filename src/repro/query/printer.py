"""Render expression ASTs back to SQL text.

Used by error messages and plan explanations, and property-tested against
the parser: ``parse(print(e)) == e`` for every expression the grammar can
produce.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.query.ast import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expr,
    FunctionCall,
    Literal,
    Not,
    Or,
)


def sql_of(expr: Expr) -> str:
    """SQL text for an expression (parenthesized conservatively)."""
    if isinstance(expr, Column):
        return expr.name
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, FunctionCall):
        return f"{expr.name}({', '.join(sql_of(arg) for arg in expr.args)})"
    if isinstance(expr, Comparison):
        return f"({sql_of(expr.left)} {expr.op} {sql_of(expr.right)})"
    if isinstance(expr, Arithmetic):
        return f"({sql_of(expr.left)} {expr.op} {sql_of(expr.right)})"
    if isinstance(expr, And):
        return f"({sql_of(expr.left)} AND {sql_of(expr.right)})"
    if isinstance(expr, Or):
        return f"({sql_of(expr.left)} OR {sql_of(expr.right)})"
    if isinstance(expr, Not):
        return f"(NOT {sql_of(expr.child)})"
    raise PlanError(f"cannot print expression: {expr!r}")


def _literal(value) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        # repr keeps round-trip precision; ensure a decimal point so the
        # parser sees a float again.
        text = repr(value)
        return text if ("." in text or "e" in text) else text + ".0"
    return str(value)
