"""Render expression ASTs back to SQL text, and trace trees as text.

Used by error messages and plan explanations, and property-tested against
the parser: ``parse(print(e)) == e`` for every expression the grammar can
produce.  :func:`render_trace` is the text backend for ``EXPLAIN
ANALYZE`` and the shell's ``.trace show`` (the trace module calls it
lazily, so there is no import cycle).
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.query.ast import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expr,
    FunctionCall,
    Literal,
    Not,
    Or,
)


def sql_of(expr: Expr) -> str:
    """SQL text for an expression (parenthesized conservatively)."""
    if isinstance(expr, Column):
        return expr.name
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, FunctionCall):
        return f"{expr.name}({', '.join(sql_of(arg) for arg in expr.args)})"
    if isinstance(expr, Comparison):
        return f"({sql_of(expr.left)} {expr.op} {sql_of(expr.right)})"
    if isinstance(expr, Arithmetic):
        return f"({sql_of(expr.left)} {expr.op} {sql_of(expr.right)})"
    if isinstance(expr, And):
        return f"({sql_of(expr.left)} AND {sql_of(expr.right)})"
    if isinstance(expr, Or):
        return f"({sql_of(expr.left)} OR {sql_of(expr.right)})"
    if isinstance(expr, Not):
        return f"(NOT {sql_of(expr.child)})"
    raise PlanError(f"cannot print expression: {expr!r}")


def render_trace(trace) -> str:
    """Aligned text tree of a query :class:`~repro.engine.tracing.Trace`.

    One line per span, children indented two spaces under their parent.
    The units column is the span's *subtree* total, so every line's
    children sum to it and the root line equals the query's total CPU
    units.  Callback lines show their call (and failure) counts.
    """
    header = (
        f"{'span':<46} {'units':>12} {'wall ms':>9} {'in':>8} {'out':>8}"
    )
    lines = [header, "-" * len(header)]
    _render_span(trace.root, 0, lines)
    return "\n".join(lines)


def _render_span(span, indent: int, lines: list) -> None:
    label = " " * indent + span.name
    if span.kind == "callback":
        label += f" x{span.calls}"
        if span.errors:
            label += f" ({span.errors} failed)"
    imbalance = span.meta.get("imbalance")
    if imbalance is not None:
        label += f" imb={imbalance:.2f}"
    if len(label) > 46:
        label = label[:43] + "..."
    records_in = span.records_in if span.records_in else "-"
    records_out = span.records_out if span.records_out else "-"
    lines.append(
        f"{label:<46} {span.total_units():>12.0f} "
        f"{span.wall_seconds * 1000:>9.3f} {records_in:>8} {records_out:>8}"
    )
    for child in span.children:
        _render_span(child, indent + 2, lines)


def render_timing_line(result, cores: int = None) -> str:
    """The shell's per-query timing line, built from the stable
    :meth:`QueryMetrics.to_dict` field list (no ad-hoc plucking).

    ``cores`` defaults to the core count of the cluster the query ran on
    (:attr:`QueryResult.cores`), so the simulated figure matches the
    execution that produced it."""
    if cores is None:
        cores = getattr(result, "cores", None) or 1
    metrics = result.metrics.to_dict(cores)
    line = (
        f"[{len(result.rows)} row(s), "
        f"wall {metrics['wall_seconds'] * 1000:.1f} ms, "
        f"simulated {metrics['simulated_seconds'] * 1000:.2f} ms "
        f"on {cores} cores"
    )
    retries = metrics["tasks_retried"] + metrics["exchange_retries"]
    if retries:
        line += f", {retries} retries"
    if metrics["records_quarantined"]:
        line += f", {metrics['records_quarantined']} quarantined"
    return line + "]"


def _literal(value) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        # repr keeps round-trip precision; ensure a decimal point so the
        # parser sees a float again.
        text = repr(value)
        return text if ("." in text or "e" in text) else text + ".0"
    return str(value)
