"""Logical plan nodes and parsed statement types.

The parser produces *statements*; the binder/optimizer turns SELECT
statements into logical plans; the planner lowers logical plans to
physical operators.  Logical nodes are deliberately few — the interesting
transformation (the FUDJ rewrite) replaces a Cartesian-product-plus-filter
with a :class:`LFudjJoin`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.ast import Expr


# -- statements ----------------------------------------------------------------------


@dataclass
class SelectItem:
    """One item of the SELECT list."""

    expr: Expr
    alias: str = None

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        from repro.query.ast import Column

        if isinstance(self.expr, Column):
            return self.expr.name
        return f"$col{position}"


@dataclass
class TableRef:
    """One FROM-clause entry: ``Parks p``."""

    dataset: str
    alias: str


@dataclass
class SelectStatement:
    items: list
    tables: list
    where: Expr = None
    group_by: list = field(default_factory=list)
    having: Expr = None
    order_by: list = field(default_factory=list)  # [(Expr, descending)]
    limit: int = None
    offset: int = None
    distinct: bool = False


@dataclass
class CreateTypeStatement:
    name: str
    fields: list  # [(field_name, type_name)]


@dataclass
class CreateDatasetStatement:
    name: str
    type_name: str
    primary_key: str


@dataclass
class CreateJoinStatement:
    """``CREATE JOIN name(a: string, b: string, t: double) RETURNS boolean
    AS "module.Class" AT library`` (paper Query 4)."""

    name: str
    params: list  # [(param_name, type_name)]
    class_path: str
    library: str


@dataclass
class DropJoinStatement:
    name: str


@dataclass
class DropDatasetStatement:
    name: str


@dataclass
class ExplainStatement:
    """``EXPLAIN [ANALYZE] SELECT ...``: show the optimized physical plan
    (and, with ANALYZE, execute the query and show per-stage metrics)."""

    select: "SelectStatement"
    analyze: bool = False


# -- logical plan nodes ----------------------------------------------------------------


class LogicalNode:
    """Base logical plan node.

    The cost-based optimizer annotates nodes in place: ``est_rows``
    carries the pessimistic cardinality bound, ``strategy`` the physical
    join strategy chosen by operator selection (``hash`` / ``broadcast``
    / ``theta`` / ``fudj``).  Rule-optimized plans are never annotated,
    so their rendering stays byte-identical.
    """

    est_rows = None
    strategy = None
    strategy_note = ""

    def children(self) -> list:
        return []

    def explain(self, indent: int = 0) -> str:
        lines = [" " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 2))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class LScan(LogicalNode):
    dataset: str
    alias: str

    def describe(self) -> str:
        return f"Scan {self.dataset} AS {self.alias}"


@dataclass
class LFilter(LogicalNode):
    child: LogicalNode
    predicate: Expr

    def children(self) -> list:
        return [self.child]

    def describe(self) -> str:
        return f"Filter {self.predicate}"


@dataclass
class LCartesian(LogicalNode):
    left: LogicalNode
    right: LogicalNode

    def children(self) -> list:
        return [self.left, self.right]

    def describe(self) -> str:
        return "CartesianProduct"


@dataclass
class LEquiJoin(LogicalNode):
    """Equality join usable by the hash-join operator."""

    left: LogicalNode
    right: LogicalNode
    left_expr: Expr
    right_expr: Expr
    residual: Expr = None

    def children(self) -> list:
        return [self.left, self.right]

    def describe(self) -> str:
        text = f"EquiJoin {self.left_expr} = {self.right_expr}"
        if self.residual is not None:
            text += f" residual {self.residual}"
        return text


@dataclass
class LNLJoin(LogicalNode):
    """Nested-loop join with an arbitrary predicate (the on-top plan)."""

    left: LogicalNode
    right: LogicalNode
    predicate: Expr = None

    def children(self) -> list:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"NLJoin {self.predicate}"


@dataclass
class LFudjJoin(LogicalNode):
    """A detected FUDJ join (paper Fig 8, logical form).

    ``join_name`` resolves in the join registry; ``left_key``/``right_key``
    are the two key expressions of the predicate call; ``parameters`` are
    the literal join parameters; ``residual`` holds remaining two-sided
    conjuncts evaluated after the FUDJ verify.
    """

    left: LogicalNode
    right: LogicalNode
    join_name: str
    left_key: Expr
    right_key: Expr
    parameters: tuple = ()
    residual: Expr = None
    self_join: bool = False

    def children(self) -> list:
        return [self.left, self.right]

    def describe(self) -> str:
        text = (
            f"FudjJoin {self.join_name}({self.left_key}, {self.right_key}"
            + (f", params={self.parameters}" if self.parameters else "")
            + ")"
        )
        if self.self_join:
            text += " [self-join: summarize once]"
        if self.residual is not None:
            text += f" residual {self.residual}"
        return text


@dataclass
class LProject(LogicalNode):
    """Compute the SELECT list (expressions with output names)."""

    child: LogicalNode
    items: list  # [(name, Expr)]

    def children(self) -> list:
        return [self.child]

    def describe(self) -> str:
        return "Project " + ", ".join(name for name, _ in self.items)


@dataclass
class LGroupBy(LogicalNode):
    child: LogicalNode
    keys: list  # [(name, Expr)]
    aggregates: list  # [AggregateCall]

    def children(self) -> list:
        return [self.child]

    def describe(self) -> str:
        return (
            "GroupBy "
            + ", ".join(name for name, _ in self.keys)
            + " agg "
            + ", ".join(a.output_name for a in self.aggregates)
        )


@dataclass
class LScalarAgg(LogicalNode):
    child: LogicalNode
    aggregates: list

    def children(self) -> list:
        return [self.child]

    def describe(self) -> str:
        return "Aggregate " + ", ".join(a.output_name for a in self.aggregates)


@dataclass
class LOrderBy(LogicalNode):
    child: LogicalNode
    keys: list  # [(Expr, descending)]

    def children(self) -> list:
        return [self.child]

    def describe(self) -> str:
        return "OrderBy " + ", ".join(
            f"{expr}{' DESC' if desc else ''}" for expr, desc in self.keys
        )


@dataclass
class LLimit(LogicalNode):
    child: LogicalNode
    count: int
    offset: int = 0

    def children(self) -> list:
        return [self.child]

    def describe(self) -> str:
        text = f"Limit {self.count}"
        if self.offset:
            text += f" Offset {self.offset}"
        return text


@dataclass
class LPrune(LogicalNode):
    """Column pruning: keep only the named fields (projection pushdown)."""

    child: LogicalNode
    fields: tuple

    def children(self) -> list:
        return [self.child]

    def describe(self) -> str:
        return "Prune " + ", ".join(self.fields)


@dataclass
class LDistinct(LogicalNode):
    """SELECT DISTINCT: a global distinct over the output rows."""

    child: LogicalNode

    def children(self) -> list:
        return [self.child]

    def describe(self) -> str:
        return "Distinct"


@dataclass
class AggregateCall:
    """An aggregate in the SELECT list: ``COUNT(w.id) AS num_fires``."""

    func: str  # count, sum, avg, min, max
    argument: Expr = None  # None for COUNT(*) / COUNT(1)
    output_name: str = "agg"
    distinct: bool = False  # COUNT(DISTINCT x)

    VALID = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        from repro.errors import PlanError

        if self.func not in self.VALID:
            raise PlanError(f"unknown aggregate function: {self.func}")
