"""Expression AST.

Expressions evaluate against a :class:`~repro.engine.record.Record` whose
fields carry qualified names (``p.id``).  Evaluation returns plain Python
values (columns unbox); the planner wraps compiled expressions back into
boxed values where operators need them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.serde.values import unbox


class Expr:
    """Base expression node."""

    def evaluate(self, record):
        """Plain-Python value of this expression for ``record``."""
        raise NotImplementedError

    def referenced_fields(self) -> set:
        """Qualified field names this expression reads."""
        return set()

    def cost_units(self, model) -> float:
        """Work units one evaluation costs under ``model``."""
        return model.comparison

    def conjuncts(self) -> list:
        """Flatten top-level ANDs into a conjunct list."""
        return [self]


@dataclass(frozen=True)
class Column(Expr):
    """A field reference; ``name`` is already qualified (``p.id``)."""

    name: str

    def evaluate(self, record):
        return unbox(record[self.name])

    def referenced_fields(self) -> set:
        return {self.name}

    def cost_units(self, model) -> float:
        return model.record_touch

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Star(Expr):
    """``SELECT *`` — a placeholder the binder expands into one Column
    per field of every FROM table.  It never survives binding, so it has
    no evaluation semantics."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value."""

    value: object

    def evaluate(self, record):
        return self.value

    def cost_units(self, model) -> float:
        return 0.0

    def __str__(self) -> str:
        return repr(self.value)


class FunctionCall(Expr):
    """A scalar function call, bound to its implementation at build time.

    ``expensive`` marks heavy predicates (``ST_Contains`` on polygons,
    Jaccard over token sets); the planner charges those at the cost
    model's ``expensive_predicate`` rate, which is what makes the on-top
    NLJ baseline pay realistically.
    """

    def __init__(self, name: str, args, fn=None, expensive: bool = False) -> None:
        self.name = name.lower()
        self.args = list(args)
        self.fn = fn
        self.expensive = expensive
        #: Set by the parser for COUNT(DISTINCT expr).
        self.distinct = False

    def evaluate(self, record):
        if self.fn is None:
            raise PlanError(f"unbound function call: {self.name}")
        return self.fn(*(arg.evaluate(record) for arg in self.args))

    def referenced_fields(self) -> set:
        fields = set()
        for arg in self.args:
            fields |= arg.referenced_fields()
        return fields

    def cost_units(self, model) -> float:
        base = model.expensive_predicate if self.expensive else model.comparison
        return base + sum(arg.cost_units(model) for arg in self.args)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionCall)
            and self.name == other.name
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(self.args)))


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison; NULL on either side yields False (SQL-ish)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PlanError(f"unknown comparison operator: {self.op}")

    def evaluate(self, record):
        lhs = self.left.evaluate(record)
        rhs = self.right.evaluate(record)
        if lhs is None or rhs is None:
            return False
        return _COMPARATORS[self.op](lhs, rhs)

    def referenced_fields(self) -> set:
        return self.left.referenced_fields() | self.right.referenced_fields()

    def cost_units(self, model) -> float:
        return (
            model.comparison
            + self.left.cost_units(model)
            + self.right.cost_units(model)
        )

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def evaluate(self, record):
        return bool(self.left.evaluate(record)) and bool(self.right.evaluate(record))

    def referenced_fields(self) -> set:
        return self.left.referenced_fields() | self.right.referenced_fields()

    def cost_units(self, model) -> float:
        return self.left.cost_units(model) + self.right.cost_units(model)

    def conjuncts(self) -> list:
        return self.left.conjuncts() + self.right.conjuncts()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def evaluate(self, record):
        return bool(self.left.evaluate(record)) or bool(self.right.evaluate(record))

    def referenced_fields(self) -> set:
        return self.left.referenced_fields() | self.right.referenced_fields()

    def cost_units(self, model) -> float:
        return self.left.cost_units(model) + self.right.cost_units(model)

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    child: Expr

    def evaluate(self, record):
        return not bool(self.child.evaluate(record))

    def referenced_fields(self) -> set:
        return self.child.referenced_fields()

    def cost_units(self, model) -> float:
        return self.child.cost_units(model)

    def __str__(self) -> str:
        return f"(NOT {self.child})"


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic; NULL-propagating."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise PlanError(f"unknown arithmetic operator: {self.op}")

    def evaluate(self, record):
        lhs = self.left.evaluate(record)
        rhs = self.right.evaluate(record)
        if lhs is None or rhs is None:
            return None
        return _ARITHMETIC[self.op](lhs, rhs)

    def referenced_fields(self) -> set:
        return self.left.referenced_fields() | self.right.referenced_fields()

    def cost_units(self, model) -> float:
        return (
            model.comparison
            + self.left.cost_units(model)
            + self.right.cost_units(model)
        )

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def conjuncts_of(expr: Expr) -> list:
    """Top-level conjuncts of ``expr`` (the whole expr when not an AND)."""
    return expr.conjuncts() if expr is not None else []


def combine_conjuncts(parts: list) -> Expr:
    """Rebuild a single expression from a conjunct list (None when empty)."""
    result = None
    for part in parts:
        result = part if result is None else And(result, part)
    return result
