"""Query layer: expressions, scalar functions, logical plans, SQL parser."""

from repro.query.ast import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expr,
    FunctionCall,
    Literal,
    Not,
    Or,
)
from repro.query.functions import FunctionRegistry, default_function_registry
from repro.query.parser import Parser, parse_statement

__all__ = [
    "Expr",
    "Column",
    "Literal",
    "FunctionCall",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Arithmetic",
    "FunctionRegistry",
    "default_function_registry",
    "Parser",
    "parse_statement",
]
