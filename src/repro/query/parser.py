"""A recursive-descent parser for the SQL++ subset the paper uses.

Supported statements:

- ``SELECT ... FROM ds1 a, ds2 b WHERE ... GROUP BY ... ORDER BY ... LIMIT``
- ``CREATE TYPE Name { field: type, ... }``
- ``CREATE DATASET Name(TypeName) PRIMARY KEY field``
- ``CREATE JOIN name(a: t, b: t, p: t) RETURNS boolean AS "mod.Class" AT lib``
- ``DROP JOIN name(...)`` / ``DROP DATASET name``

Expressions cover column references (``p.id``), literals, function calls,
comparisons, AND/OR/NOT, and arithmetic — enough for every query in the
paper (Queries 1–5).
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.query.ast import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expr,
    FunctionCall,
    Literal,
    Not,
    Or,
    Star,
)
from repro.query.logical import (
    CreateDatasetStatement,
    CreateJoinStatement,
    CreateTypeStatement,
    DropDatasetStatement,
    DropJoinStatement,
    SelectItem,
    SelectStatement,
    TableRef,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*|/\*.*?\*/)
  | (?P<number>(?:\d+\.\d+|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|!=|=|<|>|\+|-|\*|/)
  | (?P<punct>[(),.;:{}])
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "as",
    "and", "or", "not", "asc", "desc", "create", "drop", "type",
    "dataset", "join", "returns", "at", "primary", "key", "true",
    "false", "null", "distinct", "explain", "analyze", "having", "offset", "on", "inner",
    "cross",
}


class Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int) -> None:
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize_sql(sql: str) -> list:
    """Tokenize ``sql``; raises ParseError on unrecognized characters."""
    tokens = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise ParseError(f"unexpected character {sql[position]!r}", position)
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        text = match.group()
        if kind == "ident" and text.lower() in _KEYWORDS:
            kind = "keyword"
            text = text.lower()
        tokens.append(Token(kind, text, match.start()))
    tokens.append(Token("eof", "", len(sql)))
    return tokens


class Parser:
    """One-statement-at-a-time recursive-descent parser."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize_sql(sql)
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _check(self, kind: str, text: str = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text.lower() == text.lower()

    def _accept(self, kind: str, text: str = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r} but found {actual.text!r}", actual.position
            )
        return token

    # -- statements ----------------------------------------------------------------

    def parse_statement(self):
        """Parse exactly one statement (a trailing ';' is allowed)."""
        if self._check("keyword", "explain"):
            self._advance()
            analyze = self._accept("keyword", "analyze") is not None
            from repro.query.logical import ExplainStatement

            stmt = ExplainStatement(self._select(), analyze)
        elif self._check("keyword", "select"):
            stmt = self._select()
        elif self._check("keyword", "create"):
            stmt = self._create()
        elif self._check("keyword", "drop"):
            stmt = self._drop()
        else:
            token = self._peek()
            raise ParseError(f"unexpected token {token.text!r}", token.position)
        self._accept("punct", ";")
        self._expect("eof")
        return stmt

    def _create(self):
        self._expect("keyword", "create")
        if self._accept("keyword", "type"):
            return self._create_type()
        if self._accept("keyword", "dataset"):
            return self._create_dataset()
        if self._accept("keyword", "join"):
            return self._create_join()
        token = self._peek()
        raise ParseError(f"cannot CREATE {token.text!r}", token.position)

    def _create_type(self) -> CreateTypeStatement:
        name = self._expect("ident").text
        self._expect("punct", "{")
        fields = []
        while not self._check("punct", "}"):
            field_name = self._expect("ident").text
            self._expect("punct", ":")
            type_token = self._accept("ident") or self._expect("keyword")
            fields.append((field_name, type_token.text.lower()))
            if not self._accept("punct", ","):
                break
        self._expect("punct", "}")
        return CreateTypeStatement(name, fields)

    def _create_dataset(self) -> CreateDatasetStatement:
        name = self._expect("ident").text
        self._expect("punct", "(")
        type_name = self._expect("ident").text
        self._expect("punct", ")")
        self._expect("keyword", "primary")
        self._expect("keyword", "key")
        primary_key = self._expect("ident").text
        return CreateDatasetStatement(name, type_name, primary_key)

    def _create_join(self) -> CreateJoinStatement:
        name = self._expect("ident").text
        params = self._join_param_list()
        self._expect("keyword", "returns")
        self._expect("ident")  # the return type (always boolean)
        self._expect("keyword", "as")
        class_path = _string_value(self._expect("string").text)
        library = ""
        if self._accept("keyword", "at"):
            library = self._expect("ident").text
        return CreateJoinStatement(name, params, class_path, library)

    def _join_param_list(self) -> list:
        self._expect("punct", "(")
        params = []
        while not self._check("punct", ")"):
            param_name = self._expect("ident").text
            self._expect("punct", ":")
            type_token = self._accept("ident") or self._expect("keyword")
            params.append((param_name, type_token.text.lower()))
            if not self._accept("punct", ","):
                break
        self._expect("punct", ")")
        return params

    def _drop(self):
        self._expect("keyword", "drop")
        if self._accept("keyword", "join"):
            name = self._expect("ident").text
            if self._check("punct", "("):
                self._join_param_list()  # signature repeated, as in the paper
            return DropJoinStatement(name)
        if self._accept("keyword", "dataset"):
            return DropDatasetStatement(self._expect("ident").text)
        token = self._peek()
        raise ParseError(f"cannot DROP {token.text!r}", token.position)

    # -- SELECT -----------------------------------------------------------------------

    def _select(self) -> SelectStatement:
        self._expect("keyword", "select")
        distinct = self._accept("keyword", "distinct") is not None
        items = [self._select_item()]
        while self._accept("punct", ","):
            items.append(self._select_item())
        self._expect("keyword", "from")
        tables = [self._table_ref()]
        on_conditions = []
        while True:
            if self._accept("punct", ","):
                tables.append(self._table_ref())
                continue
            if self._check("keyword", "inner") or self._check("keyword", "join"):
                self._accept("keyword", "inner")
                self._expect("keyword", "join")
                tables.append(self._table_ref())
                self._expect("keyword", "on")
                on_conditions.append(self._expr())
                continue
            if self._check("keyword", "cross"):
                # CROSS JOIN t: a Cartesian member with no ON condition —
                # the optimizer may still claim WHERE conjuncts for it.
                self._advance()
                self._expect("keyword", "join")
                tables.append(self._table_ref())
                continue
            break
        where = None
        if self._accept("keyword", "where"):
            where = self._expr()
        # JOIN ... ON conditions are WHERE conjuncts semantically; the
        # optimizer places them on the right join by alias coverage.
        for condition in on_conditions:
            where = condition if where is None else And(where, condition)
        group_by = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._expr())
            while self._accept("punct", ","):
                group_by.append(self._expr())
        having = None
        if self._accept("keyword", "having"):
            having = self._expr()
        order_by = []
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by.append(self._order_key())
            while self._accept("punct", ","):
                order_by.append(self._order_key())
        limit = None
        offset = None
        if self._accept("keyword", "limit"):
            limit = int(self._expect("number").text)
            if self._accept("keyword", "offset"):
                offset = int(self._expect("number").text)
        return SelectStatement(items, tables, where, group_by, having,
                               order_by, limit, offset, distinct)

    def _select_item(self) -> SelectItem:
        if self._accept("op", "*"):
            # SELECT *: expanded by the binder to every FROM-table field.
            return SelectItem(Star(), None)
        expr = self._expr()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        elif self._check("ident"):
            alias = self._advance().text
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        dataset = self._expect("ident").text
        if self._accept("punct", "."):
            # Namespaced tables (the sys.* introspection surface).
            dataset = f"{dataset}.{self._expect('ident').text}"
        alias = dataset
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        elif self._check("ident"):
            alias = self._advance().text
        return TableRef(dataset, alias)

    def _order_key(self):
        expr = self._expr()
        descending = False
        if self._accept("keyword", "desc"):
            descending = True
        else:
            self._accept("keyword", "asc")
        return (expr, descending)

    # -- expressions ---------------------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept("keyword", "or"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept("keyword", "and"):
            left = And(left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept("keyword", "not"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        for op in ("<>", "!=", "<=", ">=", "=", "<", ">"):
            if self._accept("op", op):
                return Comparison(op if op != "!=" else "<>", left, self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self._accept("op", "+"):
                left = Arithmetic("+", left, self._multiplicative())
            elif self._accept("op", "-"):
                left = Arithmetic("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._primary()
        while True:
            if self._accept("op", "*"):
                left = Arithmetic("*", left, self._primary())
            elif self._accept("op", "/"):
                left = Arithmetic("/", left, self._primary())
            else:
                return left

    def _primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            text = token.text
            is_float = "." in text or "e" in text or "E" in text
            return Literal(float(text) if is_float else int(text))
        if token.kind == "string":
            self._advance()
            return Literal(_string_value(token.text))
        if token.kind == "keyword" and token.text in ("true", "false", "null"):
            self._advance()
            return Literal({"true": True, "false": False, "null": None}[token.text])
        if self._accept("punct", "("):
            expr = self._expr()
            self._expect("punct", ")")
            return expr
        if self._accept("op", "-"):
            inner = self._primary()
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return Arithmetic("-", Literal(0), inner)
        if token.kind == "ident":
            self._advance()
            name = token.text
            if self._accept("punct", "."):
                field = self._expect("ident").text
                return Column(f"{name}.{field}")
            if self._accept("punct", "("):
                return self._finish_call(name)
            return Column(name)
        raise ParseError(f"unexpected token {token.text!r}", token.position)

    def _finish_call(self, name: str) -> FunctionCall:
        args = []
        if self._accept("op", "*"):
            # COUNT(*): represented as a zero-argument call.
            self._expect("punct", ")")
            return FunctionCall(name, [])
        if self._accept("keyword", "distinct"):
            # COUNT(DISTINCT expr): flagged on the call for the binder.
            arg = self._expr()
            self._expect("punct", ")")
            call = FunctionCall(name, [arg])
            call.distinct = True
            return call
        while not self._check("punct", ")"):
            args.append(self._expr())
            if not self._accept("punct", ","):
                break
        self._expect("punct", ")")
        return FunctionCall(name, args)


def _string_value(token_text: str) -> str:
    quote = token_text[0]
    body = token_text[1:-1]
    return body.replace(quote * 2, quote)


def parse_statement(sql: str):
    """Parse one SQL statement and return its statement object."""
    return Parser(sql).parse_statement()
