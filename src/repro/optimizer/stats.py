"""Catalog statistics and pessimistic cardinality bounds.

The cost-based optimizer never *guesses* selectivities — it computes
**upper bounds** (UES-style pessimistic estimation) from statistics the
engine already keeps: stored partition sizes (``total_bytes()``), row
counts, and per-field distinct-value / maximum-frequency counts derived
from the loaded data.  Because every per-operator estimate is a true
upper bound, ``est <= actual`` can never hold — the monotonicity
property ``actual <= est`` is tested in ``tests/test_optimizer_cost.py``
and is what makes greedy minimization of the bound safe: an order whose
*bound* is small is guaranteed to have small intermediate results.

The estimate model (documented in ``docs/query_optimizer.md``):

==================  ====================================================
plan shape          upper bound
==================  ====================================================
scan of T           ``rows(T)``
filter ``f = lit``  ``min(bound, max_freq(f))`` — no literal can match
                    more rows than the most frequent value of ``f``
any other filter    ``bound`` (a range/UDF predicate proves nothing)
equi join           ``min(L * mf_R(rk), R * mf_L(lk), L * R)`` where
                    ``mf`` is the key's maximum frequency — each row of
                    one side matches at most that many rows of the
                    other; the ``mf`` factor applies only when that side
                    is a single base table (joins can amplify
                    frequencies)
theta / FUDJ join   ``L * R`` (the Cartesian bound; a flexible
                    predicate proves nothing about its output)
GROUP BY/DISTINCT   ``bound`` of the input (never more groups than rows)
LIMIT n             ``min(bound, n + offset)``
==================  ====================================================
"""

from __future__ import annotations

import math

from repro.query.ast import Column, Comparison, Expr, Literal, conjuncts_of
from repro.query.logical import (
    LCartesian,
    LDistinct,
    LEquiJoin,
    LFilter,
    LFudjJoin,
    LGroupBy,
    LLimit,
    LNLJoin,
    LPrune,
    LScalarAgg,
    LScan,
    LogicalNode,
)


class TableProfile:
    """Lazily computed statistics of one stored (or virtual) dataset.

    ``rows`` and ``bytes`` come straight from the partitioned dataset;
    per-field distinct counts and maximum frequencies are computed on
    first use by one pass over the loaded records and cached.  Values
    are the engine's boxed types, which hash and compare by value;
    unhashable field types (geometries, lists) degrade to the
    pessimistic ``distinct=1, max_freq=rows``.
    """

    def __init__(self, name: str, dataset) -> None:
        self.name = name
        self._dataset = dataset
        self.rows = len(dataset) if dataset is not None else 0
        self.bytes = dataset.total_bytes() if dataset is not None else 0
        self._fields = {}

    @property
    def bytes_per_row(self) -> float:
        if self.rows == 0:
            return 0.0
        return self.bytes / self.rows

    def field_stats(self, field: str):
        """``(distinct, max_freq)`` of one raw (unqualified) field."""
        cached = self._fields.get(field)
        if cached is not None:
            return cached
        counts = {}
        unhashable = False
        if self._dataset is not None:
            for record in self._dataset.scan():
                try:
                    value = record[field]
                except (KeyError, IndexError):
                    unhashable = True
                    break
                try:
                    counts[value] = counts.get(value, 0) + 1
                except TypeError:
                    unhashable = True
                    break
        if unhashable:
            stats = (1, self.rows)
        elif not counts:
            stats = (0, 0)
        else:
            stats = (len(counts), max(counts.values()))
        self._fields[field] = stats
        return stats

    def distinct(self, field: str) -> int:
        return self.field_stats(field)[0]

    def max_freq(self, field: str) -> int:
        return self.field_stats(field)[1]


class CardinalityEstimator:
    """Derives pessimistic cardinality bounds from cluster statistics.

    One instance is built per planned query, so the profiles it caches
    reflect the data as of planning time.  Unknown datasets profile as
    empty rather than raising — the binder has already validated the
    catalog, and the estimator must never introduce a new error path.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self._profiles = {}

    def profile(self, dataset_name: str) -> TableProfile:
        found = self._profiles.get(dataset_name)
        if found is None:
            dataset = None
            try:
                if self.cluster.has_dataset(dataset_name):
                    dataset = self.cluster.dataset(dataset_name)
            except Exception:
                dataset = None
            found = TableProfile(dataset_name, dataset)
            self._profiles[dataset_name] = found
        return found

    # -- base tables ----------------------------------------------------------

    def base_bound(self, alias: str, dataset_name: str,
                   conjuncts: list) -> float:
        """Upper bound on one FROM entry after its single-alias filters."""
        profile = self.profile(dataset_name)
        bound = float(profile.rows)
        for conjunct in conjuncts:
            if _conjunct_aliases(conjunct) != {alias}:
                continue
            bound = min(bound, self._filter_bound(conjunct, profile, bound))
        return bound

    def _filter_bound(self, predicate: Expr, profile: TableProfile,
                      bound: float) -> float:
        """Bound after one single-table predicate (1.0-factor fallback)."""
        if isinstance(predicate, Comparison) and predicate.op == "=":
            column, other = predicate.left, predicate.right
            if not isinstance(column, Column):
                column, other = other, column
            if isinstance(column, Column) and isinstance(other, Literal):
                field = _raw_field(column)
                if field is not None:
                    return min(bound, float(profile.max_freq(field)))
        return bound

    # -- join keys ------------------------------------------------------------

    def key_max_freq(self, key: Expr, aliases: dict) -> float:
        """Maximum frequency of a join-key expression on its base table.

        Only a plain qualified column has a known frequency; any computed
        key degrades to the table's row count (every row could share one
        key value).
        """
        if isinstance(key, Column):
            alias = _column_alias(key)
            field = _raw_field(key)
            dataset_name = aliases.get(alias)
            if dataset_name is not None and field is not None:
                profile = self.profile(dataset_name)
                return float(max(1, profile.max_freq(field)))
        alias_set = {name.split(".", 1)[0] for name in key.referenced_fields()}
        total = 0.0
        for alias in alias_set:
            dataset_name = aliases.get(alias)
            if dataset_name is not None:
                total = max(total, float(self.profile(dataset_name).rows))
        return total if total else math.inf

    def row_bytes(self, dataset_name: str) -> float:
        return self.profile(dataset_name).bytes_per_row


# -- plan annotation ----------------------------------------------------------


def annotate_estimates(root: LogicalNode, estimator: CardinalityEstimator,
                       aliases: dict) -> float:
    """Walk a logical plan bottom-up, attaching ``est_rows`` to nodes.

    Returns the root bound.  Annotation is additive — rule-optimized
    plans are never walked, so their (un-annotated) EXPLAIN output stays
    byte-identical.
    """
    bound = _node_bound(root, estimator, aliases)
    root.est_rows = bound
    return bound


def _node_bound(node: LogicalNode, estimator, aliases: dict) -> float:
    child_bounds = [
        annotate_estimates(child, estimator, aliases)
        for child in node.children()
    ]
    if isinstance(node, LScan):
        return float(estimator.profile(node.dataset).rows)
    if isinstance(node, LFilter):
        bound = child_bounds[0]
        alias_set = _expr_aliases(node.predicate)
        if len(alias_set) == 1:
            alias = next(iter(alias_set))
            dataset_name = aliases.get(alias)
            if dataset_name is not None:
                profile = estimator.profile(dataset_name)
                for conjunct in conjuncts_of(node.predicate):
                    bound = min(bound, estimator._filter_bound(
                        conjunct, profile, bound))
        return bound
    if isinstance(node, LEquiJoin):
        left, right = child_bounds
        bound = left * right
        if _single_alias_base(node.right):
            bound = min(bound, left * estimator.key_max_freq(
                node.right_expr, aliases))
        if _single_alias_base(node.left):
            bound = min(bound, right * estimator.key_max_freq(
                node.left_expr, aliases))
        return bound
    if isinstance(node, (LNLJoin, LFudjJoin, LCartesian)):
        left, right = child_bounds
        return left * right
    if isinstance(node, LLimit):
        return min(child_bounds[0], float(node.count + (node.offset or 0)))
    if isinstance(node, (LGroupBy, LDistinct)):
        return child_bounds[0]
    if isinstance(node, LScalarAgg):
        return 1.0
    if child_bounds:
        # Project / Prune / OrderBy / residual filters: row-preserving
        # (or row-reducing in ways the model cannot prove).
        return child_bounds[0]
    return 0.0


def _single_alias_base(node: LogicalNode) -> bool:
    """True when a subtree reads exactly one base table (scan, possibly
    pruned/filtered) — the only shape whose key frequencies cannot have
    been amplified by an earlier join."""
    while isinstance(node, (LFilter, LPrune)):
        node = node.child
    return isinstance(node, LScan)


# -- small shared helpers -----------------------------------------------------


def _expr_aliases(expr: Expr) -> set:
    return {name.split(".", 1)[0] for name in expr.referenced_fields()}


def _conjunct_aliases(conjunct: Expr) -> set:
    return _expr_aliases(conjunct)


def _column_alias(column: Column) -> str:
    return column.name.split(".", 1)[0]


def _raw_field(column: Column) -> str:
    parts = column.name.split(".")
    if len(parts) < 2:
        return column.name
    return parts[-1]
