"""Lower optimized logical plans to physical operators."""

from __future__ import annotations

from repro.engine.operators import (
    AvgAgg,
    BlockNestedLoopJoin,
    BroadcastHashJoin,
    CountAgg,
    CountDistinctAgg,
    Distinct,
    Filter,
    Project,
    FudjJoin,
    GroupBy,
    HashJoin,
    Limit,
    MapColumns,
    ScalarAggregate,
    Scan,
    Sort,
    SumAgg,
    MaxAgg,
    MinAgg,
)
from repro.engine.operators.base import PhysicalOperator
from repro.errors import PlanError
from repro.optimizer.rules import ExecutionMode
from repro.query.logical import (
    AggregateCall,
    LDistinct,
    LPrune,
    LEquiJoin,
    LFilter,
    LFudjJoin,
    LGroupBy,
    LLimit,
    LNLJoin,
    LOrderBy,
    LProject,
    LScalarAgg,
    LScan,
    LogicalNode,
)

_AGG_CLASSES = {
    "count": CountAgg,
    "sum": SumAgg,
    "avg": AvgAgg,
    "min": MinAgg,
    "max": MaxAgg,
}


def plan_physical(root: LogicalNode, joins, mode: ExecutionMode,
                  cost_model, dedup=None, builtin_factories=None,
                  summarize_sample: float = 1.0) -> PhysicalOperator:
    """Translate a logical plan into a physical operator tree.

    Args:
        root: the optimized logical plan.
        joins: the JoinRegistry (FUDJ instantiation).
        mode: FUDJ / BUILTIN / ONTOP — decides which operator implements
            detected FUDJ joins.
        cost_model: used to price compiled predicates.
        dedup: optional dedup-strategy override threaded into FUDJ joins
            (the Fig 12 experiments).
        builtin_factories: mapping join name -> factory building the
            hand-written built-in operator for BUILTIN mode.
    """
    planner = _Planner(joins, mode, cost_model, dedup, builtin_factories or {},
                       summarize_sample)
    return planner.lower(root)


class _Planner:
    def __init__(self, joins, mode, cost_model, dedup, builtin_factories,
                 summarize_sample: float = 1.0) -> None:
        self.joins = joins
        self.mode = mode
        self.model = cost_model
        self.dedup = dedup
        self.builtin_factories = builtin_factories
        self.summarize_sample = summarize_sample

    def lower(self, node: LogicalNode) -> PhysicalOperator:
        op = self._lower(node)
        # The cost optimizer annotates logical nodes with pessimistic
        # bounds; carry them onto the physical operator so EXPLAIN can
        # render estimates next to each stage.  Rule plans carry no
        # annotation and render exactly as before.
        if node.est_rows is not None and getattr(op, "est_rows", None) is None:
            op.est_rows = node.est_rows
        return op

    def _lower(self, node: LogicalNode) -> PhysicalOperator:
        if isinstance(node, LScan):
            return Scan(node.dataset, node.alias)
        if isinstance(node, LFilter):
            child = self.lower(node.child)
            predicate = node.predicate
            return Filter(
                child,
                predicate.evaluate,
                cost_units=predicate.cost_units(self.model),
                description=str(predicate),
            )
        if isinstance(node, LProject):
            child = self.lower(node.child)
            columns = [
                (name, expr.evaluate, expr.cost_units(self.model))
                for name, expr in node.items
            ]
            return MapColumns(child, columns)
        if isinstance(node, LGroupBy):
            child = self.lower(node.child)
            keys = [(name, expr.evaluate) for name, expr in node.keys]
            aggs = [self._agg_spec(call) for call in node.aggregates]
            return GroupBy(child, keys, aggs)
        if isinstance(node, LScalarAgg):
            child = self.lower(node.child)
            aggs = [self._agg_spec(call) for call in node.aggregates]
            return ScalarAggregate(child, aggs)
        if isinstance(node, LOrderBy):
            child = self.lower(node.child)
            keys = []
            for key, descending in node.keys:
                if isinstance(key, str):
                    name = key
                    keys.append((lambda r, _n=name: r[_n], descending))
                else:
                    keys.append((key.evaluate, descending))
            return Sort(child, keys)
        if isinstance(node, LLimit):
            return Limit(self.lower(node.child), node.count, node.offset)
        if isinstance(node, LDistinct):
            return Distinct(self.lower(node.child))
        if isinstance(node, LPrune):
            return Project(self.lower(node.child), node.fields)
        if isinstance(node, LEquiJoin):
            left = self.lower(node.left)
            right = self.lower(node.right)
            residual = node.residual
            # "broadcast" comes from the cost-based operator selection;
            # anything else (None, "hash") keeps the partitioned default.
            join_cls = (BroadcastHashJoin if node.strategy == "broadcast"
                        else HashJoin)
            return join_cls(
                left,
                right,
                node.left_expr.evaluate,
                node.right_expr.evaluate,
                residual=residual.evaluate if residual is not None else None,
                residual_cost=(
                    residual.cost_units(self.model) if residual is not None else None
                ),
            )
        if isinstance(node, LNLJoin):
            left = self.lower(node.left)
            right = self.lower(node.right)
            predicate = node.predicate
            if predicate is None:
                return BlockNestedLoopJoin(
                    left, right, lambda record: True,
                    predicate_cost=self.model.record_touch,
                )
            return BlockNestedLoopJoin(
                left,
                right,
                predicate.evaluate,
                predicate_cost=predicate.cost_units(self.model),
            )
        if isinstance(node, LFudjJoin):
            return self._lower_fudj(node)
        raise PlanError(f"cannot lower logical node: {node!r}")

    def _agg_spec(self, call: AggregateCall):
        value_fn = call.argument.evaluate if call.argument is not None else None
        if call.distinct:
            if value_fn is None:
                raise PlanError("COUNT(DISTINCT ...) needs an argument")
            return CountDistinctAgg(call.output_name, value_fn)
        cls = _AGG_CLASSES[call.func]
        if call.func != "count" and value_fn is None:
            raise PlanError(f"aggregate {call.func} needs an argument")
        return cls(call.output_name, value_fn)

    def _lower_fudj(self, node: LFudjJoin) -> PhysicalOperator:
        left = self.lower(node.left)
        right = self.lower(node.right)
        left_key = node.left_key.evaluate
        right_key = node.right_key.evaluate

        if self.mode is ExecutionMode.BUILTIN:
            factory = self.builtin_factories.get(node.join_name)
            if factory is None:
                raise PlanError(
                    f"no built-in operator installed for join "
                    f"{node.join_name!r}; install one or use FUDJ mode"
                )
            join_op = factory(left, right, left_key, right_key,
                              tuple(node.parameters))
        else:
            join = self.joins.instantiate(node.join_name, node.parameters)
            join_op = FudjJoin(
                left,
                right,
                join,
                left_key,
                right_key,
                dedup=self.dedup,
                translate=True,
                self_join=node.self_join,
                verify_cost=self.model.expensive_predicate,
                summarize_sample=self.summarize_sample,
            )

        if node.residual is not None:
            return Filter(
                join_op,
                node.residual.evaluate,
                cost_units=node.residual.cost_units(self.model),
                description=str(node.residual),
            )
        return join_op
