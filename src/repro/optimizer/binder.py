"""Name resolution: datasets, columns, scalar functions, aggregates.

Binding turns a parsed :class:`SelectStatement` into a :class:`BoundQuery`
— a FROM skeleton (left-deep Cartesian products), a bound WHERE
expression, and a classified SELECT list (group keys vs aggregates vs
plain expressions).  Every :class:`FunctionCall` leaves binding with its
implementation attached (except names that exist *only* as registered
joins, which the FUDJ rewrite must claim later).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.query.ast import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expr,
    FunctionCall,
    Literal,
    Not,
    Or,
    Star,
)
from repro.query.logical import (
    AggregateCall,
    LCartesian,
    LScan,
    LogicalNode,
    SelectStatement,
)

_AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max"}


@dataclass
class BoundQuery:
    """A bound SELECT, ready for the rewrite rules."""

    root: LogicalNode  # FROM skeleton (scans / cartesian products)
    where: Expr  # bound predicate or None
    select_items: list  # [(output_name, Expr)] — non-aggregate items
    aggregates: list  # [AggregateCall]
    group_keys: list  # [(output_name, Expr)]
    order_by: list  # [(Expr-or-output-name, descending)]
    limit: int
    offset: int = None
    distinct: bool = False
    having: Expr = None  # over group-by output columns
    aliases: dict = field(default_factory=dict)  # alias -> dataset name
    alias_fields: dict = field(default_factory=dict)  # alias -> field names

    @property
    def has_aggregates(self) -> bool:
        return bool(self.aggregates)


def bind_select(stmt: SelectStatement, catalog, functions,
                joins=None) -> BoundQuery:
    """Bind a SELECT statement against catalog + function registry.

    ``joins`` (a JoinRegistry) is consulted only to *allow* unbound calls
    whose name matches a registered join; the FUDJ rewrite rule binds the
    rest of their semantics.
    """
    aliases = {}
    alias_fields = {}
    for table in stmt.tables:
        if table.alias in aliases:
            raise PlanError(f"duplicate alias in FROM: {table.alias}")
        dataset = catalog.dataset_info(table.dataset)
        aliases[table.alias] = table.dataset
        alias_fields[table.alias] = dataset.field_names

    binder = _ExprBinder(aliases, alias_fields, functions, joins)

    root = None
    for table in stmt.tables:
        scan = LScan(table.dataset, table.alias)
        root = scan if root is None else LCartesian(root, scan)

    where = binder.bind(stmt.where) if stmt.where is not None else None

    group_keys = []
    for expr in stmt.group_by:
        bound = binder.bind(expr)
        group_keys.append((_default_name(bound, len(group_keys)), bound))

    select_items = []
    aggregates = []
    for position, item in enumerate(stmt.items):
        if isinstance(item.expr, Star):
            select_items.extend(_expand_star(stmt.tables, alias_fields))
            continue
        name = item.output_name(position)
        agg = _as_aggregate(item.expr, name, binder)
        if agg is not None:
            aggregates.append(agg)
        else:
            bound = binder.bind(item.expr)
            select_items.append((name, bound))

    # Give group keys the names of matching select items so outputs read
    # like the query (``GROUP BY p.id`` + ``SELECT p.id`` -> column p.id).
    named_keys = []
    for key_name, key_expr in group_keys:
        for item_name, item_expr in select_items:
            if item_expr == key_expr:
                key_name = item_name
                break
        named_keys.append((key_name, key_expr))

    if aggregates and select_items and not named_keys:
        raise PlanError(
            "non-aggregate SELECT items require a GROUP BY: "
            + ", ".join(name for name, _ in select_items)
        )
    if named_keys:
        key_exprs = [expr for _, expr in named_keys]
        for name, expr in select_items:
            if expr not in key_exprs:
                raise PlanError(
                    f"SELECT item {name!r} is neither aggregated nor grouped"
                )

    having = None
    if stmt.having is not None:
        if not named_keys and not aggregates:
            raise PlanError("HAVING requires a GROUP BY or aggregates")
        having = _bind_having(stmt.having, binder, aggregates, named_keys,
                              select_items)

    order_by = []
    for expr, descending in stmt.order_by:
        order_by.append((_bind_order_key(expr, binder, select_items, aggregates,
                                         named_keys), descending))

    return BoundQuery(
        root=root,
        where=where,
        select_items=select_items,
        aggregates=aggregates,
        group_keys=named_keys,
        order_by=order_by,
        limit=stmt.limit,
        offset=stmt.offset,
        distinct=stmt.distinct,
        having=having,
        aliases=aliases,
        alias_fields=alias_fields,
    )


def _expand_star(tables, alias_fields) -> list:
    """``SELECT *`` → one ``(output_name, Column)`` per field of every
    FROM table, in declaration order.

    Output names are the bare field names; a field appearing in more
    than one table keeps its qualified ``alias.field`` name so the
    output schema stays duplicate-free.
    """
    seen = {}
    for table in tables:
        for field_name in alias_fields[table.alias]:
            seen[field_name] = seen.get(field_name, 0) + 1
    items = []
    for table in tables:
        for field_name in alias_fields[table.alias]:
            qualified = f"{table.alias}.{field_name}"
            name = field_name if seen[field_name] == 1 else qualified
            items.append((name, Column(qualified)))
    return items


def _default_name(expr: Expr, position: int) -> str:
    if isinstance(expr, Column):
        return expr.name
    return f"$key{position}"


def _as_aggregate(expr: Expr, name: str, binder) -> AggregateCall:
    """Recognize ``COUNT/SUM/AVG/MIN/MAX(...)`` select items."""
    if not isinstance(expr, FunctionCall) or expr.name not in _AGGREGATE_NAMES:
        return None
    if len(expr.args) > 1:
        raise PlanError(f"aggregate {expr.name} takes at most one argument")
    distinct = getattr(expr, "distinct", False)
    if distinct and expr.name != "count":
        raise PlanError(f"DISTINCT aggregates support COUNT only, "
                        f"not {expr.name}")
    argument = None
    if expr.args:
        arg = expr.args[0]
        # COUNT(1) counts rows, same as COUNT(*).
        if not (expr.name == "count" and isinstance(arg, Literal)
                and not distinct):
            argument = binder.bind(arg)
    return AggregateCall(expr.name, argument, name, distinct)


def _bind_having(expr: Expr, binder, aggregates, group_keys, select_items):
    """Bind a HAVING predicate against the GROUP BY output.

    Aggregate calls are matched to SELECT-list aggregates by structure
    (``COUNT(1)`` in HAVING finds ``COUNT(1) AS c``); aggregates that
    appear only in HAVING are added as hidden outputs (named
    ``$having<i>``) that the final projection drops.  Plain columns must
    name a group key or select alias.
    """
    from repro.query.ast import And, Arithmetic, Comparison, Not, Or

    key_names = {name for name, _ in group_keys}
    alias_names = {name for name, _ in select_items}

    def rewrite(node: Expr) -> Expr:
        if isinstance(node, Literal):
            return node
        if isinstance(node, Column):
            if node.name in key_names or node.name in alias_names or any(
                node.name == agg.output_name for agg in aggregates
            ):
                return node
            bound = binder.bind(node)
            for name, key_expr in group_keys:
                if key_expr == bound:
                    return Column(name)
            raise PlanError(
                f"HAVING column {node.name!r} is neither grouped nor "
                f"aggregated"
            )
        if isinstance(node, FunctionCall) and node.name in _AGGREGATE_NAMES:
            call = _as_aggregate(node, f"$having{len(aggregates)}", binder)
            for agg in aggregates:
                if (agg.func == call.func and agg.argument == call.argument
                        and agg.distinct == call.distinct):
                    return Column(agg.output_name)
            aggregates.append(call)
            return Column(call.output_name)
        if isinstance(node, Comparison):
            return Comparison(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, Arithmetic):
            return Arithmetic(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, And):
            return And(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Or):
            return Or(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Not):
            return Not(rewrite(node.child))
        if isinstance(node, FunctionCall):
            bound = binder.bind(node)
            bound.args = [rewrite(arg) for arg in node.args]
            return bound
        raise PlanError(f"cannot bind HAVING expression: {node!r}")

    return rewrite(expr)


def _bind_order_key(expr: Expr, binder, select_items, aggregates, group_keys):
    """ORDER BY keys may name an output column or be a full expression."""
    if isinstance(expr, Column):
        output_names = (
            {name for name, _ in select_items}
            | {agg.output_name for agg in aggregates}
            | {name for name, _ in group_keys}
        )
        if expr.name in output_names:
            return expr.name  # resolved later against the output schema
    return binder.bind(expr)


class _ExprBinder:
    """Rewrites raw parser expressions into bound expressions."""

    def __init__(self, aliases, alias_fields, functions, joins) -> None:
        self.aliases = aliases
        self.alias_fields = alias_fields
        self.functions = functions
        self.joins = joins

    def bind(self, expr: Expr) -> Expr:
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, Column):
            return Column(self._resolve_column(expr.name))
        if isinstance(expr, FunctionCall):
            args = [self.bind(arg) for arg in expr.args]
            if expr.name in self.functions:
                fdef = self.functions.lookup(expr.name)
                if fdef.arity >= 0 and len(args) != fdef.arity:
                    raise PlanError(
                        f"function {expr.name} expects {fdef.arity} argument(s), "
                        f"got {len(args)}"
                    )
                return FunctionCall(expr.name, args, fdef.fn, fdef.expensive)
            if self.joins is not None and expr.name in self.joins:
                # A pure FUDJ predicate: semantics come from the rewrite
                # rule; it stays unbound as a scalar.
                return FunctionCall(expr.name, args, None, expensive=True)
            raise PlanError(f"unknown function: {expr.name}")
        if isinstance(expr, Comparison):
            return Comparison(expr.op, self.bind(expr.left), self.bind(expr.right))
        if isinstance(expr, Arithmetic):
            return Arithmetic(expr.op, self.bind(expr.left), self.bind(expr.right))
        if isinstance(expr, And):
            return And(self.bind(expr.left), self.bind(expr.right))
        if isinstance(expr, Or):
            return Or(self.bind(expr.left), self.bind(expr.right))
        if isinstance(expr, Not):
            return Not(self.bind(expr.child))
        raise PlanError(f"cannot bind expression: {expr!r}")

    def _resolve_column(self, name: str) -> str:
        if "." in name:
            # Split at the *last* dot: aliases may themselves be dotted
            # (an unaliased ``FROM sys.queries``), field names never are.
            alias, field_name = name.rsplit(".", 1)
            if alias not in self.aliases:
                raise PlanError(f"unknown alias: {alias}")
            if field_name not in self.alias_fields[alias]:
                raise PlanError(f"dataset {self.aliases[alias]} has no field "
                                f"{field_name!r}")
            return name
        candidates = [
            alias for alias, fields in self.alias_fields.items() if name in fields
        ]
        if not candidates:
            raise PlanError(f"unknown column: {name}")
        if len(candidates) > 1:
            raise PlanError(f"ambiguous column {name!r}: {candidates}")
        return f"{candidates[0]}.{name}"
