"""Query optimization: binding, rewrite rules, and physical planning.

The pipeline is ``bind`` (resolve names against the catalog and function
registry) → ``optimize`` (predicate pushdown, join detection — including
the FUDJ rewrite of paper §VI-C) → ``plan`` (lower the logical plan to
physical operators).

With ``Database(optimizer="cost")`` three staged components run between
binding and conjunct placement (see ``docs/query_optimizer.md``):
:class:`~repro.optimizer.stats.CardinalityEstimator` (pessimistic bounds
from catalog statistics), the upper-bound join-order enumerator
(:mod:`repro.optimizer.joinorder`), and a chainable
:class:`~repro.optimizer.physical.PhysicalOperatorSelection`.
"""

from repro.optimizer.binder import BoundQuery, bind_select
from repro.optimizer.joinorder import JoinOrder, enumerate_join_order
from repro.optimizer.physical import (
    BreakerAwareSelection,
    CostBasedOperatorSelection,
    OperatorAssignment,
    PhysicalOperatorSelection,
    SelectionContext,
    default_selection,
)
from repro.optimizer.rules import ExecutionMode, optimize
from repro.optimizer.planner import plan_physical
from repro.optimizer.stats import CardinalityEstimator, annotate_estimates

#: Optimizer modes accepted by ``Database(optimizer=...)`` and the
#: ``FUDJ_OPT`` environment override.
OPTIMIZER_MODES = ("rule", "cost")

__all__ = [
    "BoundQuery",
    "bind_select",
    "ExecutionMode",
    "optimize",
    "plan_physical",
    "OPTIMIZER_MODES",
    "CardinalityEstimator",
    "annotate_estimates",
    "JoinOrder",
    "enumerate_join_order",
    "PhysicalOperatorSelection",
    "CostBasedOperatorSelection",
    "BreakerAwareSelection",
    "OperatorAssignment",
    "SelectionContext",
    "default_selection",
]
