"""Query optimization: binding, rewrite rules, and physical planning.

The pipeline is ``bind`` (resolve names against the catalog and function
registry) → ``optimize`` (predicate pushdown, join detection — including
the FUDJ rewrite of paper §VI-C) → ``plan`` (lower the logical plan to
physical operators).
"""

from repro.optimizer.binder import BoundQuery, bind_select
from repro.optimizer.rules import ExecutionMode, optimize
from repro.optimizer.planner import plan_physical

__all__ = [
    "BoundQuery",
    "bind_select",
    "ExecutionMode",
    "optimize",
    "plan_physical",
]
