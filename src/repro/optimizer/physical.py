"""Pluggable physical operator selection (PostBOUND-style, chainable).

After the join order is fixed, a chain of
:class:`PhysicalOperatorSelection` strategies walks the logical plan and
assigns one physical strategy per join:

* ``hash`` — partitioned hash join (the default for equi joins);
* ``broadcast`` — broadcast hash join, chosen when the build side's
  estimated bytes fit in one worker's memory grant and replicating it is
  cheaper than shuffling both sides;
* ``theta`` — broadcast nested-loop join (arbitrary predicates);
* ``fudj`` — the FUDJ composite operator for registered joins.

Strategies chain with :meth:`PhysicalOperatorSelection.chain_with`: each
link may overwrite the assignment of earlier links, so a user strategy
appended to the default chain gets the last word — the same contract as
PostBOUND's ``select_physical_operators`` / ``next_selection`` protocol.

The breaker-aware link consults per-library circuit-breaker state at
*plan* time: a query that would run a FUDJ join whose library breaker is
open fails fast with :class:`~repro.errors.BreakerOpenError` before any
stage executes (the rule path only discovers this once the operator
runs).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.query.logical import LEquiJoin, LFudjJoin, LNLJoin, LogicalNode

#: Strategy names an assignment may carry (documented surface).
JOIN_STRATEGIES = ("hash", "broadcast", "theta", "fudj")


@dataclass
class SelectionContext:
    """Everything a selection strategy may consult."""

    cost_model: object
    num_partitions: int
    aliases: dict = field(default_factory=dict)  # alias -> dataset name
    estimator: object = None
    breaker: object = None


class OperatorAssignment:
    """Physical strategy per logical join node (keyed by node identity)."""

    def __init__(self) -> None:
        self._strategies = {}
        self._notes = {}

    def assign(self, node: LogicalNode, strategy: str, note: str = "") -> None:
        if strategy not in JOIN_STRATEGIES:
            raise ValueError(f"unknown join strategy {strategy!r}")
        self._strategies[id(node)] = strategy
        self._notes[id(node)] = note

    def strategy_of(self, node: LogicalNode) -> str:
        return self._strategies.get(id(node))

    def note_of(self, node: LogicalNode) -> str:
        return self._notes.get(id(node), "")

    def apply(self, root: LogicalNode) -> None:
        """Stamp the chosen strategies onto the logical nodes (the
        planner lowers ``strategy="broadcast"`` equi joins to the
        broadcast hash operator)."""
        for node in _walk(root):
            strategy = self.strategy_of(node)
            if strategy is not None:
                node.strategy = strategy
                note = self.note_of(node)
                if note:
                    node.strategy_note = note


class PhysicalOperatorSelection(abc.ABC):
    """One link of the operator-selection chain.

    Subclasses implement :meth:`_apply`, writing choices into the shared
    :class:`OperatorAssignment`; the base class runs the chain in order,
    so later links overwrite earlier ones.
    """

    def __init__(self) -> None:
        self.next_selection: PhysicalOperatorSelection = None

    def chain_with(self, next_selection: "PhysicalOperatorSelection"
                   ) -> "PhysicalOperatorSelection":
        """Append a strategy to the end of this chain; returns self."""
        tail = self
        while tail.next_selection is not None:
            tail = tail.next_selection
        tail.next_selection = next_selection
        return self

    def select_physical_operators(self, root: LogicalNode,
                                  context: SelectionContext
                                  ) -> OperatorAssignment:
        assignment = OperatorAssignment()
        link = self
        while link is not None:
            link._apply(root, context, assignment)
            link = link.next_selection
        assignment.apply(root)
        return assignment

    @abc.abstractmethod
    def _apply(self, root: LogicalNode, context: SelectionContext,
               assignment: OperatorAssignment) -> None:
        """Write this link's choices into ``assignment``."""


class CostBasedOperatorSelection(PhysicalOperatorSelection):
    """The default strategy: cost-model + memory-budget driven.

    Equi joins hash by default; when the *right* (build-broadcast) side's
    estimated wire bytes fit inside one worker's memory grant and its
    replicated copies are estimated cheaper to move than shuffling the
    (much larger) left side, the join broadcasts instead.  Theta joins
    stay nested-loop; FUDJ joins stay on the composite operator.
    """

    def _apply(self, root, context, assignment) -> None:
        for node in _walk(root):
            if isinstance(node, LFudjJoin):
                assignment.assign(node, "fudj")
            elif isinstance(node, LNLJoin):
                assignment.assign(node, "theta")
            elif isinstance(node, LEquiJoin):
                strategy, note = self._equi_choice(node, context)
                assignment.assign(node, strategy, note)

    def _equi_choice(self, node: LEquiJoin, context: SelectionContext):
        estimator = context.estimator
        left_rows = getattr(node.left, "est_rows", None)
        right_rows = getattr(node.right, "est_rows", None)
        if estimator is None or left_rows is None or right_rows is None:
            return "hash", ""
        right_bytes = right_rows * _side_row_bytes(
            node.right, estimator, context.aliases)
        budget = context.cost_model.worker_memory_bytes
        fits = right_bytes <= budget
        # Broadcast ships num_partitions copies of the right side over the
        # shared fabric; hashing ships both sides once through the
        # point-to-point shuffle.  Compare the byte volumes directly.
        left_bytes = left_rows * _side_row_bytes(
            node.left, estimator, context.aliases)
        cheaper = (right_bytes * context.num_partitions
                   < left_bytes + right_bytes)
        if fits and cheaper:
            return "broadcast", (
                f"build {right_bytes:.0f}B fits {budget:.0f}B grant"
            )
        return "hash", ""


class BreakerAwareSelection(PhysicalOperatorSelection):
    """Fail-fast link: refuse plans whose FUDJ library breaker is open."""

    def _apply(self, root, context, assignment) -> None:
        breaker = context.breaker
        if breaker is None or not getattr(breaker, "enabled", False):
            return
        for node in _walk(root):
            if isinstance(node, LFudjJoin):
                breaker.check(node.join_name)  # raises BreakerOpenError


def default_selection() -> PhysicalOperatorSelection:
    """The shipped chain: cost-based choice, then breaker enforcement."""
    return CostBasedOperatorSelection().chain_with(BreakerAwareSelection())


def _side_row_bytes(node: LogicalNode, estimator, aliases: dict) -> float:
    """Estimated wire bytes per row of a subtree: the sum of its base
    tables' per-row byte averages (join outputs concatenate rows)."""
    total = 0.0
    for leaf in _walk(node):
        dataset = getattr(leaf, "dataset", None)
        if isinstance(dataset, str):
            total += estimator.row_bytes(dataset)
    return total


def _walk(node: LogicalNode):
    yield node
    for child in node.children():
        yield from _walk(child)
