"""Upper-bound-driven join-order enumeration (UES-style, pessimistic).

Given a bound multi-join query and a :class:`CardinalityEstimator`, pick
the left-deep join order that greedily minimizes the *pessimistic upper
bound* of every intermediate result.  Minimizing a guaranteed bound
(rather than an error-prone point estimate) is the UES insight: the
chosen order can never blow up worse than the bound says, so the
enumerator is robust against the skew that wrecks
independence-assumption estimators.

The enumerator is deterministic: ties break on the original FROM-clause
position, never on dict/set iteration order.  Two-table queries keep
their written order untouched — a single join has nothing to reorder,
and preserving it keeps ``optimizer="cost"`` byte-identical to
``optimizer="rule"`` on single-join queries (the parity property tested
in ``tests/test_optimizer_parity.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.query.ast import Comparison, Expr, conjuncts_of
from repro.query.logical import LScan


@dataclass
class OrderStep:
    """One relation entering the left-deep chain."""

    alias: str
    dataset: str
    base_bound: float  # bound after the relation's own filters
    bound: float       # bound of the intermediate result after this step
    reason: str        # "base" / "equi <conjunct>" / "theta" / "cross"


@dataclass
class JoinOrder:
    """The chosen left-deep order plus its bound profile."""

    aliases: list                      # aliases in join order
    steps: list = field(default_factory=list)  # [OrderStep]
    reordered: bool = False            # differs from the FROM order

    @property
    def cost(self) -> float:
        """The C_out-style quality proxy: the sum of every intermediate
        bound (what the greedy search minimizes step by step)."""
        return sum(step.bound for step in self.steps[1:])

    def describe(self) -> str:
        return " -> ".join(self.aliases)


def from_aliases(query) -> list:
    """FROM-clause aliases in written order (the skeleton is left-deep,
    so the leftmost scan is the deepest node)."""
    out = []
    pending = [query.root]
    while pending:
        node = pending.pop()
        if isinstance(node, LScan):
            out.append(node.alias)
        else:
            pending.extend(reversed(node.children()))
    return out


def enumerate_join_order(query, estimator) -> JoinOrder:
    """Pick a left-deep order minimizing the pessimistic bound.

    Greedy UES-style search, run once per possible anchor relation:
    from each start, repeatedly join the connected relation whose
    resulting bound is smallest (equi edges multiply by the incoming
    key's maximum base frequency; theta/FUDJ edges by the relation's
    bound), taking cross products only when no connected relation
    remains.  The chain with the smallest bound-sum wins.
    """
    order = from_aliases(query)
    conjuncts = conjuncts_of(query.where)
    positions = {alias: i for i, alias in enumerate(order)}
    bounds = {
        alias: estimator.base_bound(alias, query.aliases[alias], conjuncts)
        for alias in order
    }
    if len(order) <= 2:
        return _trivial_order(order, query, bounds, conjuncts, estimator)

    # One greedy chain per starting relation, keep the cheapest: the
    # smallest base bound is not always the best anchor — joining
    # *into* a skewed fact table multiplies by its key's max frequency,
    # while starting at it multiplies by the dimensions' (often 1).
    edges = _join_edges(conjuncts)
    best = None
    for start in order:
        candidate = _greedy_from(start, order, positions, bounds, edges,
                                 estimator, query)
        key = (candidate.cost, positions[start])
        if best is None or key < best[0]:
            best = (key, candidate)
    return best[1]


def _greedy_from(start, order, positions, bounds, edges, estimator,
                 query) -> JoinOrder:
    """The greedy left-deep chain anchored at ``start``."""
    chosen = [start]
    joined = {start}
    steps = [OrderStep(start, query.aliases[start], bounds[start],
                       bounds[start], "base")]
    current = bounds[start]
    remaining = [alias for alias in order if alias != start]

    while remaining:
        best = None
        for candidate in remaining:
            bound, reason = _candidate_bound(
                candidate, joined, current, bounds, edges, estimator,
                query.aliases,
            )
            key = (0 if reason != "cross" else 1, bound,
                   bounds[candidate], positions[candidate])
            if best is None or key < best[0]:
                best = (key, candidate, bound, reason)
        _, candidate, bound, reason = best
        chosen.append(candidate)
        joined.add(candidate)
        remaining.remove(candidate)
        current = bound
        steps.append(OrderStep(candidate, query.aliases[candidate],
                               bounds[candidate], bound, reason))

    return JoinOrder(chosen, steps, reordered=chosen != order)


def _trivial_order(order, query, bounds, conjuncts, estimator) -> JoinOrder:
    """One or two tables: keep the written order (single-join parity)."""
    steps = []
    current = None
    for alias in order:
        if current is None:
            current = bounds[alias]
            steps.append(OrderStep(alias, query.aliases[alias],
                                   bounds[alias], current, "base"))
            continue
        joined = set(order[: len(steps)])
        current, reason = _candidate_bound(
            alias, joined, current, bounds, _join_edges(conjuncts),
            estimator, query.aliases,
        )
        steps.append(OrderStep(alias, query.aliases[alias], bounds[alias],
                               current, reason))
    return JoinOrder(list(order), steps, reordered=False)


def order_cost(query, estimator, aliases: list) -> float:
    """Bound-sum (C_out proxy) of an *explicit* left-deep order.

    Used to compare the greedy choice against alternatives (the naive
    written order, the worst permutation) in tests and
    ``benchmarks/bench_optimizer.py`` — the same math the enumerator
    minimizes, applied to someone else's order.
    """
    conjuncts = conjuncts_of(query.where)
    edges = _join_edges(conjuncts)
    bounds = {
        alias: estimator.base_bound(alias, query.aliases[alias], conjuncts)
        for alias in aliases
    }
    current = bounds[aliases[0]]
    joined = {aliases[0]}
    total = 0.0
    for alias in aliases[1:]:
        current, _ = _candidate_bound(alias, joined, current, bounds,
                                      edges, estimator, query.aliases)
        joined.add(alias)
        total += current
    return total


def _join_edges(conjuncts: list) -> list:
    """Two-sided conjuncts as ``(aliases, conjunct, is_equi)`` edges."""
    edges = []
    for conjunct in conjuncts:
        aliases = _expr_aliases(conjunct)
        if len(aliases) < 2:
            continue
        is_equi = (isinstance(conjunct, Comparison) and conjunct.op == "="
                   and len(aliases) == 2
                   and len(_expr_aliases(conjunct.left)) == 1
                   and len(_expr_aliases(conjunct.right)) == 1)
        edges.append((aliases, conjunct, is_equi))
    return edges


def _candidate_bound(candidate, joined, current, bounds, edges, estimator,
                     aliases):
    """Bound of ``joined ⋈ candidate`` and the edge kind used."""
    cand_bound = bounds[candidate]
    cartesian = current * cand_bound
    best = math.inf
    reason = "cross"
    for edge_aliases, conjunct, is_equi in edges:
        if candidate not in edge_aliases:
            continue
        others = edge_aliases - {candidate}
        if not others or not others <= joined:
            continue
        if is_equi:
            key = (conjunct.left
                   if _expr_aliases(conjunct.left) == {candidate}
                   else conjunct.right)
            bound = current * estimator.key_max_freq(key, aliases)
            kind = f"equi {conjunct}"
        else:
            bound = cartesian
            kind = f"theta {conjunct}"
        if bound < best or (bound == best and reason == "cross"):
            best = bound
            reason = kind
    if reason == "cross":
        return cartesian, "cross"
    return min(best, cartesian), reason


def _expr_aliases(expr: Expr) -> set:
    return {name.split(".", 1)[0] for name in expr.referenced_fields()}
