"""Rewrite rules: predicate pushdown and join detection.

The central rule is the FUDJ rewrite (paper §VI-C): a conjunct of the
WHERE clause whose function name matches a registered join — either a
direct call ``fudj_name(k1, k2, params...)`` or a thresholded form
``similarity_jaccard(k1, k2) >= t`` — replaces the Cartesian product with
an :class:`LFudjJoin`.  With the rewrite disabled (*on-top* mode) the same
query degenerates to the nested-loop plan with the scalar predicate, which
is the paper's baseline.
"""

from __future__ import annotations

import enum

from repro.errors import PlanError
from repro.optimizer.binder import BoundQuery
from repro.query.ast import (
    Column,
    Comparison,
    Expr,
    FunctionCall,
    Literal,
    combine_conjuncts,
    conjuncts_of,
)
from repro.query.logical import (
    LCartesian,
    LDistinct,
    LPrune,
    LEquiJoin,
    LFilter,
    LFudjJoin,
    LGroupBy,
    LLimit,
    LNLJoin,
    LOrderBy,
    LProject,
    LScalarAgg,
    LScan,
    LogicalNode,
)


class ExecutionMode(enum.Enum):
    """How join predicates are executed (the paper's three approaches)."""

    FUDJ = "fudj"        # FUDJ rewrite + translation layer
    BUILTIN = "builtin"  # hand-written built-in operators, no translation
    ONTOP = "ontop"      # scalar UDF inside a nested-loop join


def optimize(query: BoundQuery, joins, mode: ExecutionMode = ExecutionMode.FUDJ,
             output_order: list = None,
             table_order: list = None) -> LogicalNode:
    """Build the full optimized logical plan for a bound query.

    ``table_order`` (a list of FROM aliases, from the cost-based
    join-order enumerator) rebuilds the FROM skeleton left-deep in that
    order before conjunct placement; when omitted the written FROM order
    is kept — the rule optimizer's (and the pre-cost-optimizer) default.
    """
    required = _required_fields(query)
    conjuncts = conjuncts_of(query.where)
    skeleton = query.root
    if table_order is not None:
        skeleton = _reorder_skeleton(query, table_order)
    root, remaining = _build_joins(skeleton, conjuncts, joins, mode,
                                   required)
    if remaining:
        if mode is not ExecutionMode.ONTOP:
            unbound = [c for c in remaining if _contains_unbound(c)]
            if unbound:
                raise PlanError(
                    "FUDJ predicate could not be placed on a join: "
                    + str(unbound[0])
                )
        root = LFilter(root, combine_conjuncts(remaining))

    order_keys = _normalize_order_keys(query)

    if query.has_aggregates:
        if query.group_keys:
            root = LGroupBy(root, query.group_keys, query.aggregates)
            if query.having is not None:
                root = LFilter(root, query.having)
            names = _output_order(query, output_order)
            root = LProject(root, [(name, Column(name)) for name in names])
        else:
            root = LScalarAgg(root, query.aggregates)
            if query.having is not None:
                root = LFilter(root, query.having)
    else:
        expr_keys = [k for k, _ in order_keys if not isinstance(k, str)]
        if expr_keys:
            # Sort on raw expressions before projection drops their inputs.
            root = LOrderBy(root, order_keys)
            order_keys = []
        if query.select_items:
            root = LProject(root, query.select_items)

    if query.distinct:
        root = LDistinct(root)
    if order_keys:
        root = LOrderBy(root, order_keys)
    if query.limit is not None:
        root = LLimit(root, query.limit, query.offset or 0)
    return root


def _reorder_skeleton(query: BoundQuery, table_order: list) -> LogicalNode:
    """A fresh left-deep Cartesian skeleton in the given alias order."""
    if sorted(table_order) != sorted(query.aliases):
        raise PlanError(
            f"join order {table_order!r} does not cover the FROM aliases "
            f"{sorted(query.aliases)!r}"
        )
    root = None
    for alias in table_order:
        scan = LScan(query.aliases[alias], alias)
        root = scan if root is None else LCartesian(root, scan)
    return root


def _output_order(query: BoundQuery, output_order: list) -> list:
    if output_order:
        return output_order
    return [name for name, _ in query.select_items] + [
        agg.output_name for agg in query.aggregates
    ]


def _normalize_order_keys(query: BoundQuery) -> list:
    """Convert order keys that match select items to output-name form."""
    keys = []
    for key, descending in query.order_by:
        if not isinstance(key, str):
            for name, expr in query.select_items:
                if expr == key:
                    key = name
                    break
        keys.append((key, descending))
    return keys


def _required_fields(query: BoundQuery) -> set:
    """Every base-table field any part of the query reads — the
    projection-pushdown footprint."""
    fields = set()
    if query.where is not None:
        fields |= query.where.referenced_fields()
    for _, expr in query.select_items:
        fields |= expr.referenced_fields()
    for agg in query.aggregates:
        if agg.argument is not None:
            fields |= agg.argument.referenced_fields()
    for _, expr in query.group_keys:
        fields |= expr.referenced_fields()
    for key, _ in query.order_by:
        if not isinstance(key, str):
            fields |= key.referenced_fields()
    if query.having is not None:
        fields |= query.having.referenced_fields()
    return fields


# -- join construction with pushdown -------------------------------------------------


def _aliases_of(expr: Expr) -> set:
    return {name.split(".", 1)[0] for name in expr.referenced_fields()}


def _contains_unbound(expr: Expr) -> bool:
    if isinstance(expr, FunctionCall):
        if expr.fn is None:
            return True
        return any(_contains_unbound(arg) for arg in expr.args)
    for attr in ("left", "right", "child"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr) and _contains_unbound(child):
            return True
    return False


def _tree_aliases(node: LogicalNode) -> set:
    if isinstance(node, LScan):
        return {node.alias}
    out = set()
    for child in node.children():
        out |= _tree_aliases(child)
    return out


def _build_joins(node: LogicalNode, conjuncts: list, joins,
                 mode: ExecutionMode, required: set = None):
    """Recursively place conjuncts; returns (plan, leftover conjuncts).

    ``required`` (when given) drives projection pushdown: each scan is
    pruned to the fields the query actually reads before anything flows
    upward into filters, shuffles, and joins.
    """
    if isinstance(node, LScan):
        mine = [c for c in conjuncts if _aliases_of(c) == {node.alias}]
        rest = [c for c in conjuncts if c not in mine]
        plan: LogicalNode = node
        if required is not None:
            prefix = node.alias + "."
            keep = tuple(sorted(f for f in required if f.startswith(prefix)))
            if keep:
                plan = LPrune(plan, keep)
            # A scan none of whose fields are read (COUNT(1) FROM t) stays
            # unpruned: records must still exist to be counted.
        if mine:
            plan = LFilter(plan, combine_conjuncts(mine))
        return plan, rest

    if isinstance(node, LCartesian):
        left_plan, rest = _build_joins(node.left, conjuncts, joins, mode,
                                       required)
        right_plan, rest = _build_joins(node.right, rest, joins, mode,
                                        required)
        left_aliases = _tree_aliases(node.left)
        right_aliases = _tree_aliases(node.right)
        both = left_aliases | right_aliases
        joinable = [
            c for c in rest
            if _aliases_of(c) <= both
            and _aliases_of(c) & left_aliases
            and _aliases_of(c) & right_aliases
        ]
        leftover = [c for c in rest if c not in joinable]
        plan = _make_join(
            left_plan, right_plan, left_aliases, right_aliases,
            joinable, joins, mode, node,
        )
        return plan, leftover

    raise PlanError(f"unexpected FROM node: {node!r}")


def _make_join(left, right, left_aliases, right_aliases, joinable, joins,
               mode: ExecutionMode, raw_node) -> LogicalNode:
    if mode in (ExecutionMode.FUDJ, ExecutionMode.BUILTIN) and joins is not None:
        detected = _detect_fudj(joinable, left_aliases, right_aliases, joins)
        if detected is not None:
            conjunct, name, left_key, right_key, params, swapped = detected
            residual_parts = [c for c in joinable if c is not conjunct]
            for part in residual_parts:
                if _contains_unbound(part):
                    raise PlanError(
                        "a join can use one FUDJ predicate; additional "
                        f"registered-join calls cannot run as residual "
                        f"filters: {part}"
                    )
            residual = combine_conjuncts(residual_parts)
            self_join = _is_self_join(raw_node)
            node = LFudjJoin(
                left, right, name, left_key, right_key, tuple(params),
                residual, self_join,
            )
            return node

    equi = _detect_equality(joinable, left_aliases, right_aliases)
    if equi is not None:
        conjunct, left_expr, right_expr = equi
        residual = combine_conjuncts([c for c in joinable if c is not conjunct])
        return LEquiJoin(left, right, left_expr, right_expr, residual)

    return LNLJoin(left, right, combine_conjuncts(joinable))


def _is_self_join(node: LCartesian) -> bool:
    """Summarize-once applies only when both inputs are bare scans of the
    same dataset (identical inputs => identical summaries)."""
    return (
        isinstance(node.left, LScan)
        and isinstance(node.right, LScan)
        and node.left.dataset == node.right.dataset
    )


def _detect_fudj(conjuncts, left_aliases, right_aliases, joins):
    """Find the first conjunct that is a registered FUDJ predicate.

    Recognized shapes:

    - ``join_name(k1, k2, literal...)``
    - ``join_name(k1, k2) >= literal`` / ``> literal`` (and mirrored),
      mapping the threshold to the join's parameter.
    """
    for conjunct in conjuncts:
        found = _match_fudj_conjunct(conjunct, left_aliases, right_aliases, joins)
        if found is not None:
            return (conjunct,) + found
    return None


def _match_fudj_conjunct(conjunct, left_aliases, right_aliases, joins):
    if isinstance(conjunct, FunctionCall) and conjunct.name in joins:
        if len(conjunct.args) < 2:
            return None
        key1, key2 = conjunct.args[0], conjunct.args[1]
        extra = conjunct.args[2:]
        params = []
        for arg in extra:
            if not isinstance(arg, Literal):
                return None
            params.append(arg.value)
        oriented = _orient(key1, key2, left_aliases, right_aliases)
        if oriented is None:
            return None
        left_key, right_key, swapped = oriented
        return (conjunct.name, left_key, right_key, params, swapped)

    if isinstance(conjunct, Comparison) and conjunct.op in (">=", ">", "<=", "<"):
        call, literal = conjunct.left, conjunct.right
        op = conjunct.op
        if isinstance(call, Literal) and isinstance(literal, FunctionCall):
            call, literal = literal, call
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        if (
            isinstance(call, FunctionCall)
            and call.name in joins
            and isinstance(literal, Literal)
            and op in (">=", ">")
            and len(call.args) == 2
        ):
            oriented = _orient(call.args[0], call.args[1], left_aliases,
                               right_aliases)
            if oriented is None:
                return None
            left_key, right_key, swapped = oriented
            return (call.name, left_key, right_key, [literal.value], swapped)
    return None


def _orient(key1: Expr, key2: Expr, left_aliases, right_aliases):
    """Match key expressions to join sides; returns (lkey, rkey, swapped)."""
    a1, a2 = _aliases_of(key1), _aliases_of(key2)
    if a1 and a2 and a1 <= left_aliases and a2 <= right_aliases:
        return key1, key2, False
    if a1 and a2 and a1 <= right_aliases and a2 <= left_aliases:
        return key2, key1, True
    return None


def _detect_equality(conjuncts, left_aliases, right_aliases):
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        oriented = _orient(conjunct.left, conjunct.right, left_aliases,
                           right_aliases)
        if oriented is None:
            continue
        left_expr, right_expr, _ = oriented
        if not _contains_unbound(conjunct):
            return conjunct, left_expr, right_expr
    return None
