"""An interactive SQL shell and script runner for the FUDJ database.

Usage::

    python -m repro                        # interactive shell
    python -m repro script.sql             # run a ;-separated script
    python -m repro --demo spatial         # preload a synthetic demo workload
    python -m repro --trace                # structured span tracing on
    python -m repro --inject-faults 7:0.05 # seeded fault injection
                                           # (SEED:RATE or
                                           #  SEED:CRASH:STRAGGLER:EXCHANGE)
    python -m repro --metrics-out m.json   # write the telemetry snapshot
                                           # on exit (.prom/.txt for
                                           # Prometheus text exposition)
    python -m repro --events-out e.jsonl   # tee every deterministic
                                           # engine event to a JSONL
                                           # file as it is emitted
    python -m repro --monitor-port 8088    # serve the read-only live
                                           # monitor (/healthz /metrics
                                           # /queries /events
                                           # /traces/<id>) on this port
    python -m repro serve --port 7878      # concurrent session server:
                                           # JSONL queries over TCP with
                                           # per-request deadlines,
                                           # cooperative cancellation,
                                           # per-tenant backpressure, and
                                           # graceful drain on SIGTERM
                                           # (--max-sessions N caps
                                           # concurrent sessions,
                                           # --drain-timeout S bounds the
                                           # drain wait; --port 0 binds
                                           # any free port and prints it)
    python -m repro --memory-budget 64kb   # per-worker memory budget:
                                           # over-budget operator state
                                           # spills to disk, admission
                                           # control activates
    python -m repro --backend process      # run COMBINE tasks on a
                                           # supervised pool of real
                                           # worker processes (serial is
                                           # the deterministic default)
    python -m repro --execution batch      # vectorized batch-at-a-time
                                           # operators (row is the
                                           # default; rows and metrics
                                           # stay byte-identical)
    python -m repro --optimizer cost       # stats-driven join ordering
                                           # and physical operator
                                           # selection (rule is the
                                           # deterministic default)

Inside the shell, statements end with ``;``.  Dot-commands control the
session:

    .mode fudj|builtin|ontop    execution mode for joins
    .dedup avoidance|elimination|none|default
    .faults SEED:RATE|off|show  seeded fault injection for this session
    .onerror fail|skip|quarantine  poison-record policy for FUDJ callbacks
    .trace on|off|show|save <path>  structured span tracing: print the
                                phase/callback tree and skew report after
                                each query, re-show the last trace, or
                                export it as a Chrome/Perfetto JSON file
    .metrics show|save <path>|reset  the telemetry registry: print the
                                Prometheus text exposition, save a
                                snapshot (JSON, or Prometheus for
                                .prom/.txt paths), or zero the counters
                                and clear the query history
    .events [n]|save <path>|clear  the structured event log: print the
                                newest n events (default 10) as
                                canonical JSON lines, save the retained
                                deterministic stream as JSONL, or drop
                                the retained events
    .budget <bytes>|off|show    per-worker memory budget (e.g. 64kb,
                                2mb): over-budget operator state spills
                                to temp files and is charged through
                                the cost model; admission control
                                activates while a budget is set
    .breaker show|reset [name]  circuit-breaker state for FUDJ join
                                libraries: open/closed per library,
                                trip and rejection counts; reset closes
                                one library (or all) again
    .backend serial|process|show  execution backend: serial (simulated
                                workers, deterministic) or process (a
                                supervised pool of real worker processes
                                that crash, straggle, and recover; rows
                                stay byte-identical to serial)
    .exec row|batch|show        execution granularity: row (record at a
                                time) or batch (operators exchange
                                columnar record batches and run
                                vectorized kernels; rows and
                                deterministic metrics stay
                                byte-identical to row mode)
    .opt rule|cost|show         query optimizer: rule (written join
                                order, partitioned hash joins) or cost
                                (pessimistic cardinality bounds drive
                                join ordering and hash vs. broadcast
                                selection; EXPLAIN shows the bounds and
                                sys.plans records them per query)
    .demo spatial|interval|text load a synthetic demo workload
    .save <dir>                 persist the database to disk
    .open <dir>                 load a database saved with .save
    .datasets                   list datasets
    .joins                      list installed joins
    .timing on|off              print per-query timings
    .help                       this text
    .quit                       exit

With faults active, ``EXPLAIN ANALYZE <query>;`` shows the retry /
straggler / quarantine counters and the simulated recovery overhead.
``EXPLAIN ANALYZE`` always includes the span trace tree and skew
diagnostics, whatever ``.trace`` is set to.
"""

from __future__ import annotations

import sys

from repro.database import Database
from repro.engine.faults import FaultPlan
from repro.errors import ReproError

_HELP = __doc__.split("Inside the shell", 1)[1]
_MAX_ROWS = 40


class Shell:
    """The shell engine, decoupled from stdin/stdout for testability.

    Args:
        db: the database to run against (a fresh one by default).
        write: sink for output lines (defaults to ``print``).
    """

    def __init__(self, db: Database = None, write=print) -> None:
        self.db = db or Database()
        self.write = write
        self.mode = "fudj"
        self.dedup = None
        self.timing = True
        self.trace = False
        self.last_trace = None
        self._buffer = []

    # -- line-oriented driver ------------------------------------------------------

    def feed(self, line: str) -> bool:
        """Process one input line; returns False when the shell should
        exit."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("."):
            return self._dot_command(stripped)
        if not stripped:
            return True
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            self.run_statement(statement)
        return True

    def run_script(self, text: str) -> None:
        """Execute a whole ;-separated script."""
        for line in text.splitlines():
            if not self.feed(line):
                break
        if self._buffer:
            self.run_statement("\n".join(self._buffer))
            self._buffer = []

    # -- statements -------------------------------------------------------------------

    def run_statement(self, sql: str) -> None:
        try:
            result = self.db.execute(sql, mode=self.mode, dedup=self.dedup,
                                     trace=self.trace)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        except Exception as exc:  # defensive: never dump a traceback
            self.write(f"internal error ({type(exc).__name__}): {exc}")
            return
        if result.trace is not None:
            self.last_trace = result.trace
        self._print_result(result)
        if self.trace and result.trace is not None:
            self.write(result.trace.render())
            skew = result.trace.skew_report()
            if skew:
                self.write(skew)

    def _print_result(self, result) -> None:
        if result.schema == ("plan",):
            for row in result.rows:
                self.write(row["plan"])
        elif result.schema:
            from repro.bench.harness import format_table

            rows = [
                [row[name] for name in result.schema]
                for row in result.rows[:_MAX_ROWS]
            ]
            self.write(format_table(list(result.schema), rows))
            if len(result.rows) > _MAX_ROWS:
                self.write(f"... ({len(result.rows) - _MAX_ROWS} more rows)")
        else:
            self.write("ok")
        if self.timing and result.metrics.wall_seconds:
            from repro.query.printer import render_timing_line

            self.write(render_timing_line(
                result, result.cores or self.db.cluster.cores
            ))

    # -- dot commands ------------------------------------------------------------------

    def _dot_command(self, command: str) -> bool:
        parts = command.split()
        name, args = parts[0], parts[1:]
        if name in (".quit", ".exit"):
            return False
        if name == ".help":
            self.write(_HELP)
        elif name == ".mode":
            if args and args[0] in ("fudj", "builtin", "ontop"):
                self.mode = args[0]
                self.write(f"mode = {self.mode}")
            else:
                self.write("usage: .mode fudj|builtin|ontop")
        elif name == ".dedup":
            if args and args[0] in ("avoidance", "elimination", "none",
                                    "default"):
                self.dedup = None if args[0] == "default" else args[0]
                self.write(f"dedup = {args[0]}")
            else:
                self.write("usage: .dedup avoidance|elimination|none|default")
        elif name == ".faults":
            if not args or args[0] == "show":
                plan = self.db.fault_plan
                self.write(
                    "faults = off" if plan is None
                    else f"faults = {plan.describe()}"
                )
            elif args[0] == "off":
                self.db.fault_plan = None
                self.write("faults = off")
            else:
                try:
                    self.db.fault_plan = FaultPlan.parse(args[0])
                except ReproError as exc:
                    self.write(f"error: {exc}")
                else:
                    self.write(f"faults = {self.db.fault_plan.describe()}")
        elif name == ".onerror":
            if args and args[0] in ("fail", "skip", "quarantine"):
                self.db.on_error = args[0]
                self.write(f"on_error = {args[0]}")
            else:
                self.write("usage: .onerror fail|skip|quarantine")
        elif name == ".trace":
            if args and args[0] in ("on", "off"):
                self.trace = args[0] == "on"
                self.write(f"trace = {args[0]}")
            elif args and args[0] == "show":
                if self.last_trace is None:
                    self.write("no trace recorded yet; .trace on and run "
                               "a query")
                else:
                    self.write(self.last_trace.render())
                    skew = self.last_trace.skew_report()
                    if skew:
                        self.write(skew)
            elif len(args) == 2 and args[0] == "save":
                if self.last_trace is None:
                    self.write("no trace recorded yet; .trace on and run "
                               "a query")
                else:
                    try:
                        self.last_trace.to_chrome_trace(args[1])
                    except OSError as exc:
                        self.write(f"error: cannot write trace: {exc}")
                    else:
                        self.write(f"trace saved to {args[1]} "
                                   "(open in chrome://tracing or Perfetto)")
            else:
                self.write("usage: .trace on|off|show|save <path>")
        elif name == ".metrics":
            if not args or args[0] == "show":
                self.write(self.db.metrics_snapshot("prometheus"))
            elif args[0] == "reset":
                self.db.telemetry.reset()
                self.write("metrics reset (counters zeroed, history "
                           "cleared)")
            elif len(args) == 2 and args[0] == "save":
                try:
                    _write_metrics(self.db, args[1])
                except OSError as exc:
                    self.write(f"error: cannot write metrics: {exc}")
                else:
                    self.write(f"metrics saved to {args[1]}")
            else:
                self.write("usage: .metrics show|save <path>|reset")
        elif name == ".events":
            log = self.db.telemetry.events
            if not args or args[0].isdigit():
                count = int(args[0]) if args else 10
                tail = log.tail(count)
                if not tail:
                    self.write("no events recorded yet")
                for event in tail:
                    self.write(event.to_line())
            elif args[0] == "clear":
                log.clear()
                self.write("events cleared")
            elif len(args) == 2 and args[0] == "save":
                try:
                    with open(args[1], "w") as handle:
                        handle.write(log.to_jsonl())
                except OSError as exc:
                    self.write(f"error: cannot write events: {exc}")
                else:
                    self.write(f"events saved to {args[1]}")
            else:
                self.write("usage: .events [n]|save <path>|clear")
        elif name == ".budget":
            from repro.engine.resources import format_bytes

            if not args or args[0] == "show":
                self.write(f"budget = {format_bytes(self.db.memory_budget)}")
            else:
                try:
                    self.db.set_memory_budget(args[0])
                except ReproError as exc:
                    self.write(f"error: {exc}")
                else:
                    self.write(
                        f"budget = {format_bytes(self.db.memory_budget)}"
                    )
        elif name == ".breaker":
            breaker = self.db.breaker
            if breaker is None:
                self.write("breaker = off (pass breaker_threshold= to "
                           "Database to enable)")
            elif not args or args[0] == "show":
                state = breaker.snapshot()
                self.write(f"breaker threshold = {state['threshold']}")
                self.write(
                    "open libraries: "
                    + (", ".join(state["open"]) if state["open"] else "none")
                )
                self.write(f"trips = {state['trips']}, "
                           f"rejections = {state['rejections']}")
                for join_name, count in sorted(state["failures"].items()):
                    self.write(f"  {join_name}: {count} consecutive "
                               "failures")
            elif args[0] == "reset":
                breaker.reset(args[1] if len(args) > 1 else None)
                target = args[1] if len(args) > 1 else "all libraries"
                self.write(f"breaker reset ({target})")
            else:
                self.write("usage: .breaker show|reset [name]")
        elif name == ".backend":
            if not args or args[0] == "show":
                line = f"backend = {self.db.backend}"
                pool = self.db.worker_pool
                if pool is not None:
                    line += f" ({pool.describe()})"
                self.write(line)
            elif args[0] in ("serial", "process"):
                self.db.set_backend(args[0])
                self.write(f"backend = {self.db.backend}")
            else:
                self.write("usage: .backend serial|process|show")
        elif name == ".exec":
            if not args or args[0] == "show":
                self.write(f"execution = {self.db.execution}")
            elif args[0] in ("row", "batch"):
                self.db.set_execution(args[0])
                self.write(f"execution = {self.db.execution}")
            else:
                self.write("usage: .exec row|batch|show")
        elif name == ".opt":
            if not args or args[0] == "show":
                self.write(f"optimizer = {self.db.optimizer}")
            elif args[0] in ("rule", "cost"):
                self.db.set_optimizer(args[0])
                self.write(f"optimizer = {self.db.optimizer}")
            else:
                self.write("usage: .opt rule|cost|show")
        elif name == ".timing":
            if args and args[0] in ("on", "off"):
                self.timing = args[0] == "on"
                self.write(f"timing = {args[0]}")
            else:
                self.write("usage: .timing on|off")
        elif name == ".datasets":
            for dataset in self.db.catalog.dataset_names():
                count = len(self.db.cluster.dataset(dataset))
                self.write(f"{dataset}  ({count} records)")
        elif name == ".joins":
            for join_name in self.db.joins.names():
                self.write(str(self.db.joins.signature(join_name)))
        elif name == ".demo":
            self._load_demo(args[0] if args else "spatial")
        elif name == ".save":
            if not args:
                self.write("usage: .save <dir>")
            else:
                from repro.storage import save_database

                save_database(self.db, args[0])
                self.write(f"saved to {args[0]}")
        elif name == ".open":
            if not args:
                self.write("usage: .open <dir>")
            else:
                from repro.storage import load_database

                try:
                    self.db = load_database(args[0])
                except ReproError as exc:
                    self.write(f"error: {exc}")
                else:
                    self.write(f"opened {args[0]}")
                    self._dot_command(".datasets")
        else:
            self.write(f"unknown command {name!r}; try .help")
        return True

    def _load_demo(self, which: str) -> None:
        """Replace the session database with a loaded demo workload."""
        from repro.bench import workloads

        builders = {
            "spatial": lambda: workloads.spatial_database(200, 2000),
            "interval": lambda: workloads.interval_database(2000),
            "text": lambda: workloads.text_database(1500),
        }
        builder = builders.get(which)
        if builder is None:
            self.write("usage: .demo spatial|interval|text")
            return
        previous = self.db
        self.db = builder()
        # Demo databases are freshly built; the session's fault-tolerance
        # and resource-governance posture carries over.
        self.db.fault_plan = previous.fault_plan
        self.db.on_error = previous.on_error
        self.db.query_timeout = previous.query_timeout
        if previous.memory_budget is not None:
            self.db.set_memory_budget(previous.memory_budget)
        self.db.breaker = previous.breaker
        self.db.workers = previous.workers
        self.db.set_backend(previous.backend)
        self.db.set_execution(previous.execution)
        self.db.set_optimizer(previous.optimizer)
        # Observability carries over too: the event sink continues the
        # same file (append), and the monitor re-binds its port to the
        # new database.
        sink_path = previous.telemetry.events.sink_path
        monitor = previous.monitor
        monitor_port = monitor.port if monitor is not None else None
        previous.close()  # release the old pool, monitor, and sink
        if sink_path is not None:
            self.db.telemetry.events.attach_sink(sink_path, append=True)
        if monitor_port is not None:
            self.db.serve_monitor(monitor_port)
        queries = {
            "spatial": workloads.SPATIAL_SQL,
            "interval": workloads.INTERVAL_SQL,
            "text": workloads.TEXT_SQL.format(threshold=0.9),
        }
        self.write(f"loaded the {which} demo; datasets:")
        self._dot_command(".datasets")
        self.write("try:")
        self.write(f"  {queries[which]};")


def _write_metrics(db: Database, path: str) -> None:
    """Write the telemetry snapshot to ``path``; the extension picks the
    format (``.prom``/``.txt`` → Prometheus text exposition, else JSON)."""
    fmt = ("prometheus" if path.endswith((".prom", ".txt")) else "json")
    with open(path, "w") as handle:
        handle.write(db.metrics_snapshot(fmt))


def main(argv=None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    serve_mode = bool(argv) and argv[0] == "serve"
    serve_port = 0
    max_sessions = 8
    drain_timeout = 5.0
    if serve_mode:
        argv = argv[1:]
        if "--port" in argv:
            at = argv.index("--port")
            if at + 1 >= len(argv) or not argv[at + 1].isdigit():
                print("--port needs a port number (0 binds any free "
                      "port)", file=sys.stderr)
                return 1
            serve_port = int(argv[at + 1])
            del argv[at:at + 2]
        if "--max-sessions" in argv:
            at = argv.index("--max-sessions")
            if (at + 1 >= len(argv) or not argv[at + 1].isdigit()
                    or int(argv[at + 1]) < 1):
                print("--max-sessions needs a positive session count",
                      file=sys.stderr)
                return 1
            max_sessions = int(argv[at + 1])
            del argv[at:at + 2]
        if "--drain-timeout" in argv:
            at = argv.index("--drain-timeout")
            try:
                drain_timeout = float(argv[at + 1])
            except (IndexError, ValueError):
                print("--drain-timeout needs a number of seconds",
                      file=sys.stderr)
                return 1
            if drain_timeout < 0:
                print("--drain-timeout needs a number of seconds",
                      file=sys.stderr)
                return 1
            del argv[at:at + 2]
    fault_plan = None
    metrics_out = None
    memory_budget = None
    backend = None
    execution = None
    optimizer = None
    events_out = None
    monitor_port = None
    if "--events-out" in argv:
        at = argv.index("--events-out")
        if at + 1 >= len(argv):
            print("--events-out needs a path", file=sys.stderr)
            return 1
        events_out = argv[at + 1]
        del argv[at:at + 2]
    if "--monitor-port" in argv:
        at = argv.index("--monitor-port")
        if at + 1 >= len(argv) or not argv[at + 1].isdigit():
            print("--monitor-port needs a port number", file=sys.stderr)
            return 1
        monitor_port = int(argv[at + 1])
        del argv[at:at + 2]
    if "--optimizer" in argv:
        at = argv.index("--optimizer")
        if at + 1 >= len(argv) or argv[at + 1] not in ("rule", "cost"):
            print("--optimizer needs rule or cost", file=sys.stderr)
            return 1
        optimizer = argv[at + 1]
        del argv[at:at + 2]
    if "--backend" in argv:
        at = argv.index("--backend")
        if at + 1 >= len(argv) or argv[at + 1] not in ("serial", "process"):
            print("--backend needs serial or process", file=sys.stderr)
            return 1
        backend = argv[at + 1]
        del argv[at:at + 2]
    if "--execution" in argv:
        at = argv.index("--execution")
        if at + 1 >= len(argv) or argv[at + 1] not in ("row", "batch"):
            print("--execution needs row or batch", file=sys.stderr)
            return 1
        execution = argv[at + 1]
        del argv[at:at + 2]
    if "--memory-budget" in argv:
        at = argv.index("--memory-budget")
        if at + 1 >= len(argv):
            print("--memory-budget needs a byte amount (e.g. 64kb, 2mb, "
                  "or off)", file=sys.stderr)
            return 1
        memory_budget = argv[at + 1]
        del argv[at:at + 2]
    if "--metrics-out" in argv:
        at = argv.index("--metrics-out")
        if at + 1 >= len(argv):
            print("--metrics-out needs a path", file=sys.stderr)
            return 1
        metrics_out = argv[at + 1]
        del argv[at:at + 2]
    if "--inject-faults" in argv:
        at = argv.index("--inject-faults")
        if at + 1 >= len(argv):
            print("--inject-faults needs SEED:RATE (or "
                  "SEED:CRASH:STRAGGLER:EXCHANGE)", file=sys.stderr)
            return 1
        try:
            fault_plan = FaultPlan.parse(argv[at + 1])
        except ReproError as exc:
            print(f"bad --inject-faults value: {exc}", file=sys.stderr)
            return 1
        del argv[at:at + 2]
    trace = "--trace" in argv
    if trace:
        argv.remove("--trace")
    try:
        shell = Shell(db=Database(fault_plan=fault_plan,
                                  memory_budget=memory_budget,
                                  backend=backend,
                                  execution=execution,
                                  optimizer=optimizer,
                                  event_log=events_out))
    except ReproError as exc:
        print(f"bad --memory-budget value: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot open --events-out path: {exc}", file=sys.stderr)
        return 1
    shell.trace = trace
    if monitor_port is not None:
        try:
            monitor = shell.db.serve_monitor(monitor_port)
        except OSError as exc:
            print(f"cannot start monitor on port {monitor_port}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"monitor serving on {monitor.url} "
              "(/healthz /metrics /queries /events /traces/<id>)")
    if events_out is not None:
        print(f"event log streaming to {events_out}")
    if shell.db.backend == "process":
        print("process backend active: COMBINE tasks run on a supervised "
              "worker-process pool")
    if shell.db.execution == "batch":
        print("batch execution active: operators run vectorized kernels "
              "over columnar record batches")
    if shell.db.optimizer == "cost":
        print("cost optimizer active: stats-driven join ordering and "
              "physical operator selection")
    if fault_plan is not None:
        print(f"fault injection active: {fault_plan.describe()}")
    if shell.db.memory_budget is not None:
        from repro.engine.resources import format_bytes

        print("memory budget active: "
              f"{format_bytes(shell.db.memory_budget)} per worker "
              "(over-budget state spills to disk)")
    if trace:
        print("tracing active: span tree printed after each query")
    if argv and argv[0] == "--demo":
        shell._load_demo(argv[1] if len(argv) > 1 else "spatial")
        argv = argv[2:]
    if serve_mode:
        return _serve(shell.db, serve_port, max_sessions, drain_timeout,
                      metrics_out)
    if argv:
        try:
            with open(argv[0]) as handle:
                shell.run_script(handle.read())
        except OSError as exc:
            print(f"cannot read script: {exc}", file=sys.stderr)
            return 1
        return _finish(shell, metrics_out)
    print("FUDJ shell — statements end with ';', .help for commands")
    try:
        while True:
            prompt = "fudj> " if not shell._buffer else "  ... "
            try:
                line = input(prompt)
            except EOFError:
                break
            if not shell.feed(line):
                break
    except KeyboardInterrupt:
        pass
    return _finish(shell, metrics_out)


def _serve(db: Database, port: int, max_sessions: int,
           drain_timeout: float, metrics_out: str) -> int:
    """Run the concurrent session server until SIGTERM/SIGINT, then
    drain gracefully: stop accepting, let in-flight queries finish
    within the drain budget, cancel stragglers, and exit 0."""
    import signal
    import threading

    from repro.errors import ServerError

    try:
        server = db.serve(port=port, max_sessions=max_sessions,
                          drain_timeout=drain_timeout)
    except ServerError as exc:
        print(f"cannot start session server: {exc}", file=sys.stderr)
        return 1
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    print(f"session server listening on {server.host}:{server.port} "
          f"(max {max_sessions} sessions, "
          f"drain timeout {drain_timeout:.1f}s)", flush=True)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    print("draining: refusing new work, waiting for in-flight queries",
          flush=True)
    db.close()  # graceful drain, then pool/monitor/sink teardown
    if metrics_out is not None:
        try:
            _write_metrics(db, metrics_out)
        except OSError as exc:
            print(f"cannot write metrics: {exc}", file=sys.stderr)
            return 1
        print(f"metrics written to {metrics_out}")
    print("session server stopped cleanly", flush=True)
    return 0


def _finish(shell: Shell, metrics_out: str) -> int:
    """Flush the exit-time telemetry snapshot (``.demo``/``.open`` swap
    ``shell.db``, so the snapshot comes from the session's final
    database)."""
    if metrics_out is None:
        return 0
    try:
        _write_metrics(shell.db, metrics_out)
    except OSError as exc:
        print(f"cannot write metrics: {exc}", file=sys.stderr)
        return 1
    print(f"metrics written to {metrics_out}")
    return 0
