"""An interactive SQL shell and script runner for the FUDJ database.

Usage::

    python -m repro                 # interactive shell
    python -m repro script.sql      # run a ;-separated script
    python -m repro --demo spatial  # preload a synthetic demo workload

Inside the shell, statements end with ``;``.  Dot-commands control the
session:

    .mode fudj|builtin|ontop    execution mode for joins
    .dedup avoidance|elimination|none|default
    .demo spatial|interval|text load a synthetic demo workload
    .save <dir>                 persist the database to disk
    .open <dir>                 load a database saved with .save
    .datasets                   list datasets
    .joins                      list installed joins
    .timing on|off              print per-query timings
    .help                       this text
    .quit                       exit
"""

from __future__ import annotations

import sys

from repro.database import Database
from repro.errors import ReproError

_HELP = __doc__.split("Inside the shell", 1)[1]
_MAX_ROWS = 40


class Shell:
    """The shell engine, decoupled from stdin/stdout for testability.

    Args:
        db: the database to run against (a fresh one by default).
        write: sink for output lines (defaults to ``print``).
    """

    def __init__(self, db: Database = None, write=print) -> None:
        self.db = db or Database()
        self.write = write
        self.mode = "fudj"
        self.dedup = None
        self.timing = True
        self._buffer = []

    # -- line-oriented driver ------------------------------------------------------

    def feed(self, line: str) -> bool:
        """Process one input line; returns False when the shell should
        exit."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("."):
            return self._dot_command(stripped)
        if not stripped:
            return True
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            self.run_statement(statement)
        return True

    def run_script(self, text: str) -> None:
        """Execute a whole ;-separated script."""
        for line in text.splitlines():
            if not self.feed(line):
                break
        if self._buffer:
            self.run_statement("\n".join(self._buffer))
            self._buffer = []

    # -- statements -------------------------------------------------------------------

    def run_statement(self, sql: str) -> None:
        try:
            result = self.db.execute(sql, mode=self.mode, dedup=self.dedup)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        self._print_result(result)

    def _print_result(self, result) -> None:
        if result.schema == ("plan",):
            for row in result.rows:
                self.write(row["plan"])
        elif result.schema:
            from repro.bench.harness import format_table

            rows = [
                [row[name] for name in result.schema]
                for row in result.rows[:_MAX_ROWS]
            ]
            self.write(format_table(list(result.schema), rows))
            if len(result.rows) > _MAX_ROWS:
                self.write(f"... ({len(result.rows) - _MAX_ROWS} more rows)")
        else:
            self.write("ok")
        if self.timing and result.metrics.wall_seconds:
            cores = self.db.cluster.cores
            self.write(
                f"[{len(result.rows)} row(s), "
                f"wall {result.metrics.wall_seconds * 1000:.1f} ms, "
                f"simulated {result.metrics.simulated_seconds(cores) * 1000:.2f} ms "
                f"on {cores} cores]"
            )

    # -- dot commands ------------------------------------------------------------------

    def _dot_command(self, command: str) -> bool:
        parts = command.split()
        name, args = parts[0], parts[1:]
        if name in (".quit", ".exit"):
            return False
        if name == ".help":
            self.write(_HELP)
        elif name == ".mode":
            if args and args[0] in ("fudj", "builtin", "ontop"):
                self.mode = args[0]
                self.write(f"mode = {self.mode}")
            else:
                self.write("usage: .mode fudj|builtin|ontop")
        elif name == ".dedup":
            if args and args[0] in ("avoidance", "elimination", "none",
                                    "default"):
                self.dedup = None if args[0] == "default" else args[0]
                self.write(f"dedup = {args[0]}")
            else:
                self.write("usage: .dedup avoidance|elimination|none|default")
        elif name == ".timing":
            if args and args[0] in ("on", "off"):
                self.timing = args[0] == "on"
                self.write(f"timing = {args[0]}")
            else:
                self.write("usage: .timing on|off")
        elif name == ".datasets":
            for dataset in self.db.catalog.dataset_names():
                count = len(self.db.cluster.dataset(dataset))
                self.write(f"{dataset}  ({count} records)")
        elif name == ".joins":
            for join_name in self.db.joins.names():
                self.write(str(self.db.joins.signature(join_name)))
        elif name == ".demo":
            self._load_demo(args[0] if args else "spatial")
        elif name == ".save":
            if not args:
                self.write("usage: .save <dir>")
            else:
                from repro.storage import save_database

                save_database(self.db, args[0])
                self.write(f"saved to {args[0]}")
        elif name == ".open":
            if not args:
                self.write("usage: .open <dir>")
            else:
                from repro.errors import ReproError
                from repro.storage import load_database

                try:
                    self.db = load_database(args[0])
                except ReproError as exc:
                    self.write(f"error: {exc}")
                else:
                    self.write(f"opened {args[0]}")
                    self._dot_command(".datasets")
        else:
            self.write(f"unknown command {name!r}; try .help")
        return True

    def _load_demo(self, which: str) -> None:
        """Replace the session database with a loaded demo workload."""
        from repro.bench import workloads

        builders = {
            "spatial": lambda: workloads.spatial_database(200, 2000),
            "interval": lambda: workloads.interval_database(2000),
            "text": lambda: workloads.text_database(1500),
        }
        builder = builders.get(which)
        if builder is None:
            self.write("usage: .demo spatial|interval|text")
            return
        self.db = builder()
        queries = {
            "spatial": workloads.SPATIAL_SQL,
            "interval": workloads.INTERVAL_SQL,
            "text": workloads.TEXT_SQL.format(threshold=0.9),
        }
        self.write(f"loaded the {which} demo; datasets:")
        self._dot_command(".datasets")
        self.write("try:")
        self.write(f"  {queries[which]};")


def main(argv=None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    shell = Shell()
    if argv and argv[0] == "--demo":
        shell._load_demo(argv[1] if len(argv) > 1 else "spatial")
        argv = argv[2:]
    if argv:
        try:
            with open(argv[0]) as handle:
                shell.run_script(handle.read())
        except OSError as exc:
            print(f"cannot read script: {exc}", file=sys.stderr)
            return 1
        return 0
    print("FUDJ shell — statements end with ';', .help for commands")
    try:
        while True:
            prompt = "fudj> " if not shell._buffer else "  ... "
            try:
                line = input(prompt)
            except EOFError:
                break
            if not shell.feed(line):
                break
    except KeyboardInterrupt:
        pass
    return 0
