"""Synthetic vehicle trajectories.

Random walks that start in cluster hotspots (depots) and drift with
momentum, producing the corridor-shaped paths real GPS traces have — the
structure a trajectory proximity join exploits.
"""

from __future__ import annotations

import math
import random

from repro.datagen.distributions import clustered_points
from repro.geometry import Rectangle
from repro.trajectory import Trajectory

WORLD = Rectangle(0.0, 0.0, 200.0, 200.0)


def generate_trajectories(count: int, seed: int = 46, extent: Rectangle = WORLD,
                          points_per_trajectory: tuple = (4, 12),
                          step: float = 3.0, num_depots: int = 8) -> list:
    """Rows for a Trips dataset: ``{id, vehicle, route}``."""
    rng = random.Random(seed)
    spread = min(extent.width, extent.height) / 15.0
    starts = clustered_points(count, extent, num_depots, spread, rng)
    rows = []
    for i, start in enumerate(starts):
        heading = rng.uniform(0.0, 2.0 * math.pi)
        x, y = start.x, start.y
        points = [(x, y)]
        for _ in range(rng.randint(*points_per_trajectory) - 1):
            heading += rng.gauss(0.0, 0.5)  # momentum with drift
            x = min(max(x + step * math.cos(heading), extent.x1), extent.x2)
            y = min(max(y + step * math.sin(heading), extent.y1), extent.y2)
            points.append((x, y))
        rows.append({
            "id": i,
            "vehicle": rng.choice([1, 2]),
            "route": Trajectory(points),
        })
    return rows
