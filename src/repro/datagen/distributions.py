"""Reusable random distributions for the workload generators."""

from __future__ import annotations

import bisect
import random

from repro.geometry import Point, Rectangle


class ZipfSampler:
    """Draw integers in ``[0, n)`` with probability proportional to
    ``1 / (rank + 1) ** s`` — the classic Zipf word-frequency shape.

    Precomputes the CDF once, so each draw is a binary search.
    """

    def __init__(self, n: int, s: float = 1.0, rng: random.Random = None) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        self.n = n
        self.s = s
        self.rng = rng or random.Random()
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self) -> int:
        """One Zipf-distributed rank."""
        return bisect.bisect_left(self._cdf, self.rng.random())

    def sample_many(self, count: int) -> list:
        return [self.sample() for _ in range(count)]


def clustered_points(count: int, extent: Rectangle, num_clusters: int,
                     spread: float, rng: random.Random,
                     uniform_fraction: float = 0.2) -> list:
    """Points concentrated around random hotspots plus a uniform background.

    This mimics real spatial data (wildfires cluster geographically): a
    record is drawn from a Gaussian around one of ``num_clusters`` centers
    with probability ``1 - uniform_fraction``, otherwise uniformly.
    Points are clamped to the extent.
    """
    if num_clusters < 1:
        raise ValueError(f"need >= 1 cluster, got {num_clusters}")
    centers = [
        Point(rng.uniform(extent.x1, extent.x2), rng.uniform(extent.y1, extent.y2))
        for _ in range(num_clusters)
    ]
    points = []
    for _ in range(count):
        if rng.random() < uniform_fraction:
            x = rng.uniform(extent.x1, extent.x2)
            y = rng.uniform(extent.y1, extent.y2)
        else:
            center = rng.choice(centers)
            x = rng.gauss(center.x, spread)
            y = rng.gauss(center.y, spread)
        x = min(max(x, extent.x1), extent.x2)
        y = min(max(y, extent.y1), extent.y2)
        points.append(Point(x, y))
    return points
