"""Synthetic workload generators standing in for the paper's datasets.

Table I's real datasets (Parks, Wildfires, NYCTaxi, AmazonReview) are not
available offline, so these generators produce seeded synthetic data with
the same key types and the characteristics the experiments depend on:
spatial clustering (wildfires cluster in hotspots, parks vary in size),
temporal overlap density (taxi rides of realistic lengths across a day
span), and Zipf-distributed vocabulary (reviews share common words and
differ in rare ones — what prefix filtering exploits).
"""

from repro.datagen.distributions import ZipfSampler, clustered_points
from repro.datagen.spatial import generate_parks, generate_wildfires
from repro.datagen.taxi import generate_taxi_rides
from repro.datagen.reviews import generate_reviews
from repro.datagen.trajectories import generate_trajectories
from repro.datagen.stats import dataset_summary

__all__ = [
    "ZipfSampler",
    "clustered_points",
    "generate_parks",
    "generate_wildfires",
    "generate_taxi_rides",
    "generate_reviews",
    "generate_trajectories",
    "dataset_summary",
]
