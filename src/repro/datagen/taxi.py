"""Synthetic NYCTaxi-like ride intervals.

Stand-in for the NYCTaxi dataset of Table I: each row has a vendor id and
a ride interval.  Ride start times follow a daily rush-hour mixture and
durations are log-normal-ish, giving the bursty overlap density a real
taxi feed has — the property the interval join's bucket-count sweep
(Fig 11b) is sensitive to.
"""

from __future__ import annotations

import random

from repro.interval import Interval

#: One simulated week, in minutes.
TIME_SPAN = (0.0, 7 * 24 * 60.0)

_RUSH_HOURS = (8 * 60.0, 18 * 60.0)  # minutes within a day


def generate_taxi_rides(count: int, seed: int = 44, vendors=(1, 2),
                        span=TIME_SPAN) -> list:
    """Rows for the NYCTaxi dataset: ``{id, vendor, ride_interval}``."""
    rng = random.Random(seed)
    day = 24 * 60.0
    start_lo, start_hi = span
    rows = []
    for i in range(count):
        day_index = int(rng.uniform(start_lo, start_hi) // day)
        if rng.random() < 0.6:
            # Rush-hour ride: cluster starts around morning/evening peaks.
            peak = rng.choice(_RUSH_HOURS)
            minute = min(max(rng.gauss(peak, 45.0), 0.0), day - 1.0)
        else:
            minute = rng.uniform(0.0, day - 1.0)
        start = day_index * day + minute
        duration = min(120.0, max(1.0, rng.lognormvariate(2.4, 0.6)))
        rows.append({
            "id": i,
            "vendor": rng.choice(list(vendors)),
            "ride_interval": Interval(start, start + duration),
        })
    return rows
