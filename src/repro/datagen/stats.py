"""Dataset statistics for the Table I reproduction."""

from __future__ import annotations

from repro.engine.record import Record, Schema
from repro.serde.values import box


def dataset_summary(name: str, rows: list, key_field: str, key_type: str) -> dict:
    """Name / wire size / record count / key type of a generated dataset.

    Sizes are measured by serializing a sample of the rows with the
    engine's wire format and extrapolating, matching how Table I reports
    on-disk sizes.
    """
    if not rows:
        return {"name": name, "size_bytes": 0, "records": 0, "key_type": key_type}
    fields = tuple(rows[0].keys())
    schema = Schema(fields)
    sample = rows[:: max(1, len(rows) // 200)][:200]
    sample_bytes = sum(
        Record(schema, (box(row[f]) for f in fields)).serialized_size()
        for row in sample
    )
    avg = sample_bytes / len(sample)
    return {
        "name": name,
        "size_bytes": int(avg * len(rows)),
        "records": len(rows),
        "key_type": key_type,
        "key_field": key_field,
    }
