"""Synthetic Amazon-like product reviews.

Stand-in for the AmazonReview dataset of Table I: short texts over a
Zipf-distributed vocabulary with a 1-5 star rating.  To make high
similarity thresholds meaningful (the paper's t=0.9 queries), reviews are
generated from *templates*: a base review is perturbed a token or two for
some records, so near-duplicate pairs exist across rating classes — the
same structure real review corpora show (copy-paste reviews, shills).
"""

from __future__ import annotations

import random

from repro.datagen.distributions import ZipfSampler

#: Core product-review vocabulary; extended with numbered tokens so the
#: vocabulary can grow with the requested size.
_BASE_VOCAB = (
    "great", "good", "bad", "terrible", "awesome", "love", "hate", "phone",
    "battery", "life", "camera", "screen", "quality", "price", "cheap",
    "expensive", "fast", "slow", "shipping", "arrived", "broken", "works",
    "perfect", "recommend", "return", "refund", "money", "waste", "buy",
    "again", "excellent", "poor", "amazing", "disappointed", "happy",
    "sound", "case", "color", "size", "fit", "comfortable", "durable",
)


def _vocabulary(size: int) -> list:
    vocab = list(_BASE_VOCAB)
    for i in range(max(0, size - len(vocab))):
        vocab.append(f"word{i:04d}")
    return vocab[:size]


def generate_reviews(count: int, seed: int = 45, vocab_size: int = 400,
                     review_length: tuple = (5, 12), zipf_s: float = 1.1,
                     duplicate_fraction: float = 0.35) -> list:
    """Rows for the AmazonReview dataset: ``{id, overall, review}``.

    ``duplicate_fraction`` of the reviews are near-copies of an earlier
    review (one token substituted / dropped), guaranteeing a population of
    genuinely similar pairs at high Jaccard thresholds.
    """
    rng = random.Random(seed)
    vocab = _vocabulary(vocab_size)
    sampler = ZipfSampler(len(vocab), zipf_s, rng)
    rows = []
    originals = []
    for i in range(count):
        if originals and rng.random() < duplicate_fraction:
            tokens = list(rng.choice(originals))
            # Perturb: drop a token or swap one for a fresh draw.
            if len(tokens) > 3 and rng.random() < 0.5:
                tokens.pop(rng.randrange(len(tokens)))
            else:
                tokens[rng.randrange(len(tokens))] = vocab[sampler.sample()]
        else:
            length = rng.randint(*review_length)
            tokens = []
            seen = set()
            while len(tokens) < length:
                token = vocab[sampler.sample()]
                if token not in seen:
                    seen.add(token)
                    tokens.append(token)
            originals.append(tuple(tokens))
        rows.append({
            "id": i,
            "overall": rng.randint(1, 5),
            "review": " ".join(tokens),
        })
    return rows
