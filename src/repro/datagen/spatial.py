"""Synthetic Parks (polygons) and Wildfires (points) datasets.

Stand-ins for the UCR-STAR Parks and WildfireDB datasets of Table I:
parks are irregular polygons of widely varying size (a Zipf-ish radius
distribution — a few huge national parks, many small city parks) tagged
with descriptive words; wildfires are clustered points with start times.
"""

from __future__ import annotations

import math
import random

from repro.datagen.distributions import clustered_points
from repro.geometry import Point, Polygon, Rectangle

#: The synthetic world; think "degrees" on a small continent.
WORLD = Rectangle(0.0, 0.0, 360.0, 180.0)

#: Tag vocabulary for the text-similarity motivation query (Query 2).
PARK_TAGS = (
    "river", "scenic", "landscape", "camping", "backpacking", "hiking",
    "lake", "mountain", "forest", "desert", "beach", "wildlife", "fishing",
    "climbing", "waterfall", "canyon", "meadow", "historic", "picnic",
    "playground",
)

#: One year of wildfire start times, in epoch-like day units.
FIRE_SEASON = (0.0, 365.0)


def _irregular_polygon(center: Point, radius: float, rng: random.Random,
                       vertices: int = None) -> Polygon:
    """A star-convex polygon with jittered radii — irregular but simple."""
    sides = vertices or rng.randint(4, 9)
    step = 2.0 * math.pi / sides
    phase = rng.uniform(0.0, step)
    ring = []
    for i in range(sides):
        r = radius * rng.uniform(0.55, 1.0)
        angle = phase + i * step
        ring.append(Point(center.x + r * math.cos(angle),
                          center.y + r * math.sin(angle)))
    return Polygon(ring)


def generate_parks(count: int, seed: int = 42, extent: Rectangle = WORLD,
                   max_radius: float = None) -> list:
    """Rows for the Parks dataset: ``{id, boundary, tags}``.

    Radii follow a heavy-tailed distribution so a few parks are huge;
    that is what makes multi-assign replication (and therefore duplicate
    handling) matter.
    """
    rng = random.Random(seed)
    if max_radius is None:
        max_radius = min(extent.width, extent.height) / 25.0
    rows = []
    for i in range(count):
        center = Point(rng.uniform(extent.x1, extent.x2),
                       rng.uniform(extent.y1, extent.y2))
        # Pareto-ish radius: mostly small, occasionally near max_radius.
        radius = min(max_radius, 0.3 + rng.paretovariate(2.5) * max_radius / 12.0)
        tags = " ".join(sorted(rng.sample(PARK_TAGS, rng.randint(2, 6))))
        rows.append({
            "id": i,
            "boundary": _irregular_polygon(center, radius, rng),
            "tags": tags,
        })
    return rows


def generate_wildfires(count: int, seed: int = 43, extent: Rectangle = WORLD,
                       num_clusters: int = 12) -> list:
    """Rows for the Wildfires dataset: ``{id, location, fire_start,
    fire_end}``; locations cluster in hotspots."""
    rng = random.Random(seed)
    spread = min(extent.width, extent.height) / 18.0
    locations = clustered_points(count, extent, num_clusters, spread, rng)
    rows = []
    season_start, season_end = FIRE_SEASON
    for i, location in enumerate(locations):
        start = rng.uniform(season_start, season_end - 1.0)
        rows.append({
            "id": i,
            "location": location,
            "fire_start": start,
            "fire_end": start + rng.uniform(0.1, 20.0),
        })
    return rows
