"""Exception hierarchy for the FUDJ reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch one base class.  The engine distinguishes between user
errors (bad SQL, unknown dataset, bad FUDJ implementation) and internal
invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParseError(ReproError):
    """The SQL text could not be parsed.

    Attributes:
        position: character offset of the offending token, if known.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(ReproError):
    """A catalog object (type, dataset, join) is missing or duplicated."""


class PlanError(ReproError):
    """A logical plan could not be built or optimized."""


class ExecutionError(ReproError):
    """A physical operator failed at runtime."""


class FudjCallbackError(ExecutionError):
    """A user FUDJ callback raised or returned something unusable.

    Carries the join name and the phase (summarize/divide/assign/match/
    verify/dedup) so a developer debugging a join library sees where the
    engine was, not just a raw traceback from deep inside an operator.
    """

    def __init__(self, join_name: str, phase: str, original: Exception) -> None:
        super().__init__(
            f"FUDJ {join_name!r} failed in {phase}: "
            f"{type(original).__name__}: {original}"
        )
        self.join_name = join_name
        self.phase = phase
        self.original = original


class QueryTimeoutError(ExecutionError):
    """The query exceeded its wall-clock budget and was cancelled.

    Raised at the next stage boundary or task attempt after the deadline
    passes, so cancellation is clean: no partial results escape.
    """

    def __init__(self, elapsed_seconds: float, limit_seconds: float) -> None:
        super().__init__(
            f"query timed out after {elapsed_seconds:.3f}s "
            f"(limit {limit_seconds:.3f}s)"
        )
        self.elapsed_seconds = elapsed_seconds
        self.limit_seconds = limit_seconds


class QueryCancelledError(ExecutionError):
    """The query was cancelled cooperatively before it finished.

    Raised at the next cancellation checkpoint (stage boundary, operator
    boundary, exchange, task attempt, or guarded FUDJ callback) after a
    :class:`~repro.engine.cancel.CancellationToken` is cancelled — by an
    explicit client CANCEL, a client disconnect, or a server drain.  The
    unwind is clean: reservations are released, spill files dropped, and
    the worker pool's leases abandoned, so the same query re-run on the
    same database returns byte-identical rows.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(f"query cancelled ({reason})")
        self.reason = reason


class TaskFailedError(ExecutionError):
    """A partition task kept failing past the fault plan's retry cap."""

    def __init__(self, stage: str, worker: int, attempts: int) -> None:
        super().__init__(
            f"task {stage!r} on worker {worker} failed "
            f"{attempts} consecutive attempts; giving up"
        )
        self.stage = stage
        self.worker = worker
        self.attempts = attempts


class AdmissionError(ExecutionError):
    """The admission controller refused to run the query.

    ``reason`` is ``"queue-full"`` (load shed: the bounded wait queue was
    at capacity) or ``"timeout"`` (the query waited past the configured
    queue timeout without getting a grant).  ``estimate_bytes`` is the
    memory reservation the controller computed for the query.
    """

    def __init__(self, reason: str, estimate_bytes: float,
                 detail: str = "") -> None:
        super().__init__(
            f"admission rejected ({reason}): "
            f"estimated {estimate_bytes:.0f} reserved bytes"
            + (f"; {detail}" if detail else "")
        )
        self.reason = reason
        self.estimate_bytes = estimate_bytes


class BreakerOpenError(ExecutionError):
    """A FUDJ callback library's circuit breaker is open.

    After ``threshold`` consecutive callback failures the breaker trips
    and every later query using the library fails fast with this error
    until an operator resets it (shell ``.breaker reset`` or
    :meth:`CircuitBreaker.reset`).
    """

    def __init__(self, join_name: str, failures: int, threshold: int) -> None:
        super().__init__(
            f"circuit breaker open for FUDJ {join_name!r}: "
            f"{failures} consecutive failures (threshold {threshold}); "
            "reset the breaker to re-enable the library"
        )
        self.join_name = join_name
        self.failures = failures
        self.threshold = threshold


class WorkerPoolError(ExecutionError):
    """The process-pool backend is unhealthy and cannot run tasks.

    Raised by the worker supervisor when the restart budget is exhausted
    or no live worker remains.  The engine catches it internally and
    degrades the query to the serial backend; it only escapes to callers
    who drive :class:`~repro.engine.workers.WorkerPool` directly.
    """


class ServerError(ReproError):
    """A server front door (session server or monitor) could not start
    or was misused.

    The common case is a port already in use: the raw ``OSError`` is
    wrapped so callers see *which* port failed and can react (pick
    another, report cleanly) without parsing errno text.
    """

    def __init__(self, message: str, host: str = "", port: int = None) -> None:
        super().__init__(message)
        self.host = host
        self.port = port


class SerdeError(ReproError):
    """A value could not be (de)serialized or translated."""


class JoinLibraryError(ReproError):
    """A FUDJ library is malformed (bad class path, wrong interface, ...)."""
