"""Exception hierarchy for the FUDJ reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch one base class.  The engine distinguishes between user
errors (bad SQL, unknown dataset, bad FUDJ implementation) and internal
invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParseError(ReproError):
    """The SQL text could not be parsed.

    Attributes:
        position: character offset of the offending token, if known.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(ReproError):
    """A catalog object (type, dataset, join) is missing or duplicated."""


class PlanError(ReproError):
    """A logical plan could not be built or optimized."""


class ExecutionError(ReproError):
    """A physical operator failed at runtime."""


class SerdeError(ReproError):
    """A value could not be (de)serialized or translated."""


class JoinLibraryError(ReproError):
    """A FUDJ library is malformed (bad class path, wrong interface, ...)."""
