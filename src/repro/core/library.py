"""Join libraries and the registry behind ``CREATE JOIN`` (paper §VI-A).

A join library is a Python module/package containing
:class:`~repro.core.flexible_join.FlexibleJoin` subclasses.  ``CREATE
JOIN`` registers a *signature* — the SQL-visible function name, its
parameter types, and the class path — and the engine instantiates the
class lazily the first time a query uses the join.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

from repro.core.flexible_join import FlexibleJoin
from repro.errors import JoinLibraryError


@dataclass(frozen=True)
class JoinSignature:
    """The SQL-visible shape of a registered FUDJ.

    Attributes:
        name: the function name used in join predicates
            (e.g. ``text_similarity_join``).
        param_types: declared argument types; the first two are the join
            keys, the rest are join parameters (e.g. a threshold).
        class_path: dotted path of the FlexibleJoin subclass
            (``package.module.ClassName``).
        library: the library name from the ``AT`` clause; purely
            informational here (the paper uploads JARs, we import modules).
    """

    name: str
    param_types: tuple
    class_path: str
    library: str = ""

    @property
    def arity(self) -> int:
        return len(self.param_types)

    @property
    def num_parameters(self) -> int:
        """Join parameters beyond the two keys."""
        return max(0, self.arity - 2)

    def __str__(self) -> str:
        types = ", ".join(self.param_types)
        return f"{self.name}({types})"


def load_join_class(class_path: str) -> type:
    """Import and validate a FlexibleJoin subclass from its dotted path."""
    module_name, _, class_name = class_path.rpartition(".")
    if not module_name:
        raise JoinLibraryError(
            f"class path must be 'module.Class', got {class_path!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise JoinLibraryError(f"cannot import join library {module_name!r}: {exc}")
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise JoinLibraryError(
            f"library {module_name!r} has no class {class_name!r}"
        ) from None
    if not (isinstance(cls, type) and issubclass(cls, FlexibleJoin)):
        raise JoinLibraryError(
            f"{class_path} is not a FlexibleJoin subclass"
        )
    return cls


@dataclass
class _Entry:
    signature: JoinSignature
    join_class: type = None
    defaults: tuple = ()


class JoinRegistry:
    """All joins installed in one database (CREATE/DROP JOIN)."""

    def __init__(self) -> None:
        self._entries = {}

    def create(self, signature: JoinSignature, join_class: type = None,
               defaults: tuple = ()) -> None:
        """Register a join.

        ``join_class`` may be passed directly to skip the import (the API
        path), otherwise it resolves lazily from the signature's class
        path.  ``defaults`` are constructor parameters used when a query
        call site passes none (e.g. the grid size of a spatial join, which
        is a tuning knob rather than a query argument).
        """
        if signature.name in self._entries:
            raise JoinLibraryError(f"join already exists: {signature.name}")
        if join_class is not None and not issubclass(join_class, FlexibleJoin):
            raise JoinLibraryError(
                f"{join_class!r} is not a FlexibleJoin subclass"
            )
        self._entries[signature.name] = _Entry(signature, join_class, tuple(defaults))

    def drop(self, name: str) -> None:
        """DROP JOIN: remove a registered join and its proxy UDFs."""
        if name not in self._entries:
            raise JoinLibraryError(f"no such join: {name}")
        del self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def signature(self, name: str) -> JoinSignature:
        try:
            return self._entries[name].signature
        except KeyError:
            raise JoinLibraryError(f"no such join: {name}") from None

    def instantiate(self, name: str, parameters) -> FlexibleJoin:
        """Build the FlexibleJoin object for one query call site.

        Call-site parameters win; when the call site passes none, the
        registration-time defaults apply.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise JoinLibraryError(f"no such join: {name}")
        if entry.join_class is None:
            entry.join_class = load_join_class(entry.signature.class_path)
        effective = tuple(parameters) if parameters else entry.defaults
        try:
            return entry.join_class(*effective)
        except TypeError as exc:
            raise JoinLibraryError(
                f"cannot instantiate join {name} with parameters "
                f"{effective!r}: {exc}"
            ) from None

    def names(self) -> list:
        return sorted(self._entries)
