"""The single-machine standalone FUDJ runner (paper §VI-D2).

Debugging a join algorithm inside a distributed DBMS is painful, so the
paper ships a standalone program that runs any FUDJ implementation over
two plain collections.  This is that program: it executes all three phases
faithfully — including bucket formation, matching, verification, and
duplicate handling — but in one process with no engine involved, so logic
bugs surface immediately.  An implementation debugged here runs unchanged
on the distributed engine.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.dedup import DedupStrategy, strategy_for
from repro.core.flexible_join import FlexibleJoin, JoinSide


class StandaloneRunner:
    """Runs a FlexibleJoin over two in-memory key collections.

    Args:
        join: the FlexibleJoin instance under test.
        dedup: optional strategy override (defaults to the join's own
            choice, i.e. duplicate avoidance or none).
        trace: when True, phase-by-phase counters are kept in
            :attr:`stats` for inspection.
    """

    def __init__(self, join: FlexibleJoin, dedup: DedupStrategy = None,
                 trace: bool = False) -> None:
        self.join = join
        self.dedup = strategy_for(join, dedup)
        self.trace = trace
        self.stats = {}

    # -- phases, exposed individually for debugging -----------------------------

    def summarize(self, keys, side: JoinSide):
        """Run SUMMARIZE over one side and return the global summary."""
        summary = None
        for key in keys:
            summary = self.join.local_aggregate(key, summary, side)
        return summary

    def partition(self, keys, pplan, side: JoinSide) -> dict:
        """Run PARTITION: bucket_id -> list of keys."""
        buckets = defaultdict(list)
        for key in keys:
            for bucket_id in self.join.assign_list(key, pplan, side):
                buckets[bucket_id].append(key)
        return buckets

    def combine(self, buckets1: dict, buckets2: dict, pplan):
        """Run COMBINE: match buckets, verify pairs, deduplicate."""
        results = []
        if self.join.uses_default_match():
            # Single-join: only equal bucket ids can match.
            pairs = (
                (bid, bid) for bid in buckets1.keys() & buckets2.keys()
            )
        else:
            pairs = (
                (b1, b2)
                for b1 in buckets1
                for b2 in buckets2
                if self.join.match(b1, b2)
            )
        verified = 0
        for b1, b2 in pairs:
            for key1 in buckets1[b1]:
                for key2 in buckets2[b2]:
                    verified += 1
                    if not self.join.verify(key1, key2, pplan):
                        continue
                    if not self.dedup.keep_local(self.join, b1, key1, b2, key2, pplan):
                        continue
                    results.append((key1, key2))
        if self.dedup.requires_shuffle:
            results = _distinct_pairs(results)
        if self.trace:
            self.stats["verify_calls"] = verified
        return results

    # -- the whole pipeline ------------------------------------------------------

    def run(self, left_keys, right_keys) -> list:
        """Execute the full FUDJ pipeline and return result key pairs."""
        left_keys = list(left_keys)
        right_keys = list(right_keys)
        summary1 = self.summarize(left_keys, JoinSide.LEFT)
        summary2 = self.summarize(right_keys, JoinSide.RIGHT)
        pplan = self.join.divide(summary1, summary2)
        buckets1 = self.partition(left_keys, pplan, JoinSide.LEFT)
        buckets2 = self.partition(right_keys, pplan, JoinSide.RIGHT)
        if self.trace:
            self.stats.update(
                left_keys=len(left_keys),
                right_keys=len(right_keys),
                left_buckets=len(buckets1),
                right_buckets=len(buckets2),
                left_assignments=sum(len(v) for v in buckets1.values()),
                right_assignments=sum(len(v) for v in buckets2.values()),
            )
        return self.combine(buckets1, buckets2, pplan)

    def bucket_histogram(self, keys, side: JoinSide, bins: int = 8) -> str:
        """A debugging view of how ``assign`` spreads ``keys``.

        Runs SUMMARIZE + DIVIDE on the given keys (both sides summarized
        from the same input — this is a diagnostic, not a join) and
        renders bucket-size statistics plus a text histogram.  Skewed or
        degenerate partitioning — the paper's §III-A failure modes —
        shows up immediately.
        """
        keys = list(keys)
        summary = self.summarize(keys, side)
        pplan = self.join.divide(summary, summary)
        buckets = self.partition(keys, pplan, side)
        if not buckets:
            return "(no buckets: empty input)"
        sizes = sorted((len(v) for v in buckets.values()), reverse=True)
        total = sum(sizes)
        lines = [
            f"{len(keys)} keys -> {len(buckets)} buckets, "
            f"{total} assignments (x{total / max(1, len(keys)):.2f} "
            f"replication)",
            f"bucket sizes: max={sizes[0]} "
            f"median={sizes[len(sizes) // 2]} min={sizes[-1]}",
        ]
        top = sizes[: bins]
        scale = max(top)
        for rank, size in enumerate(top):
            bar = "#" * max(1, int(size / scale * 40))
            lines.append(f"  #{rank + 1:<3} {bar} {size}")
        if len(sizes) > bins:
            lines.append(f"  ... {len(sizes) - bins} smaller buckets")
        return "\n".join(lines)

    def run_nested_loop(self, left_keys, right_keys) -> list:
        """Ground-truth nested loop using only ``verify`` (with a PPlan
        built the normal way).  Used by tests to check FUDJ correctness."""
        left_keys = list(left_keys)
        right_keys = list(right_keys)
        summary1 = self.summarize(left_keys, JoinSide.LEFT)
        summary2 = self.summarize(right_keys, JoinSide.RIGHT)
        pplan = self.join.divide(summary1, summary2)
        return [
            (k1, k2)
            for k1 in left_keys
            for k2 in right_keys
            if self.join.verify(k1, k2, pplan)
        ]


def _distinct_pairs(pairs: list) -> list:
    """Order-preserving distinct over possibly-unhashable key pairs."""
    seen = set()
    out = []
    for pair in pairs:
        try:
            token = pair
            if token in seen:
                continue
            seen.add(token)
        except TypeError:
            token = repr(pair)
            if token in seen:
                continue
            seen.add(token)
        out.append(pair)
    return out
