"""Duplicate-handling strategies for multi-assign joins (paper §III-B, §VII-E).

Multi-assign partitioning replicates records across buckets, so the same
logical result pair can be produced by several bucket pairs.  Two remedies
exist:

- **Duplicate avoidance** (the FUDJ default): each worker decides locally,
  per candidate pair, whether *its* bucket pair is the canonical one, and
  drops the pair otherwise.  No extra shuffle.
- **Duplicate elimination**: emit everything, then run a distributed
  distinct (one more shuffle on the pair identity) — the method of the
  original set-similarity study, kept here as the comparison point of
  Fig 12a.
"""

from __future__ import annotations

from repro.core.flexible_join import FlexibleJoin


class DedupStrategy:
    """Interface: how the combine phase suppresses duplicate pairs."""

    name = "dedup"

    #: True when the strategy needs a post-join distinct shuffle.
    requires_shuffle = False

    def keep_local(self, join: FlexibleJoin, bucket_id1: int, key1,
                   bucket_id2: int, key2, pplan) -> bool:
        """Local decision made where the pair was produced."""
        raise NotImplementedError


class DuplicateAvoidance(DedupStrategy):
    """The default: delegate to ``join.dedup`` (assignment-based avoidance
    or whatever the developer overrode it with)."""

    name = "avoidance"
    requires_shuffle = False

    def keep_local(self, join, bucket_id1, key1, bucket_id2, key2, pplan):
        return join.dedup(bucket_id1, key1, bucket_id2, key2, pplan)


class DuplicateElimination(DedupStrategy):
    """Emit all pairs locally; a global distinct runs afterwards.

    ``keep_local`` always says yes; the engine adds a pair-identity
    shuffle + distinct stage when ``requires_shuffle`` is set.
    """

    name = "elimination"
    requires_shuffle = True

    def keep_local(self, join, bucket_id1, key1, bucket_id2, key2, pplan):
        return True


class NoDedup(DedupStrategy):
    """For single-assign joins: duplicates cannot occur, skip all checks."""

    name = "none"
    requires_shuffle = False

    def keep_local(self, join, bucket_id1, key1, bucket_id2, key2, pplan):
        return True


def strategy_for(join: FlexibleJoin, override: DedupStrategy = None) -> DedupStrategy:
    """Pick the dedup strategy for a join instance.

    ``override`` wins (that is how Fig 12a compares strategies); otherwise
    joins that declare ``uses_dedup() == False`` get :class:`NoDedup` and
    everything else gets the default :class:`DuplicateAvoidance`.
    """
    if override is not None:
        return override
    if not join.uses_dedup():
        return NoDedup()
    return DuplicateAvoidance()
