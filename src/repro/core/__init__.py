"""The FUDJ programming model (the paper's primary contribution).

A developer implements a new partition-based distributed join by
subclassing :class:`~repro.core.flexible_join.FlexibleJoin` and overriding
a handful of small functions (``summarize``/``divide``/``assign``/
``match``/``verify``/``dedup``).  The engine supplies everything else:
distributed aggregation, shuffles, bucket matching, verification, and
duplicate handling.
"""

from repro.core.flexible_join import FlexibleJoin, JoinSide
from repro.core.library import JoinRegistry, JoinSignature, load_join_class
from repro.core.standalone import StandaloneRunner
from repro.core.dedup import DedupStrategy, DuplicateAvoidance, DuplicateElimination, NoDedup

__all__ = [
    "FlexibleJoin",
    "JoinSide",
    "JoinRegistry",
    "JoinSignature",
    "load_join_class",
    "StandaloneRunner",
    "DedupStrategy",
    "DuplicateAvoidance",
    "DuplicateElimination",
    "NoDedup",
]
