"""The :class:`FlexibleJoin` interface — the FUDJ programming model.

The model has three phases (paper §IV):

SUMMARIZE
    ``local_aggregate(key, summary)`` folds one key into a per-worker
    summary; ``global_aggregate(s1, s2)`` merges partial summaries;
    ``divide(summary1, summary2, *params)`` combines the two global
    summaries (plus query parameters) into the partitioning plan (PPlan).

PARTITION
    ``assign(key, pplan)`` maps a key to one bucket id (single-assign) or
    a list of bucket ids (multi-assign).

COMBINE
    ``match(bucket_id1, bucket_id2)`` decides whether two buckets join
    (default: equality — a *single-join*, which lets the engine use its
    hash-join machinery); ``verify(key1, key2, pplan)`` is the exact join
    predicate on a candidate pair; ``dedup(bucket_id1, key1, bucket_id2,
    key2, pplan)`` suppresses duplicate results of multi-assign
    partitioning (default: duplicate avoidance via ``assign``).

Keys are plain Python values — the engine's translation layer (Figure 7)
unboxes its internal typed values before every callback, so implementing
a join requires no engine knowledge at all.
"""

from __future__ import annotations

import enum


class JoinSide(enum.Enum):
    """Which side of the join a callback is being invoked for.

    Joins whose two inputs need different summarization or assignment
    logic (e.g. a point dataset against a polygon dataset) receive the
    side as context; symmetric joins can ignore it.
    """

    LEFT = "left"
    RIGHT = "right"


class FlexibleJoin:
    """Base class for user-defined distributed joins.

    Subclasses must override :meth:`local_aggregate`,
    :meth:`global_aggregate`, :meth:`divide`, :meth:`assign`, and
    :meth:`verify`.  :meth:`match` and :meth:`dedup` have engine defaults:
    equality matching (single-join) and assignment-based duplicate
    avoidance.

    ``parameters`` holds the extra arguments of the join call site (for
    example the similarity threshold of Query 4); the engine passes them
    to :meth:`divide`.
    """

    #: Human-readable name used in plans and error messages.
    name = "flexible-join"

    def __init__(self, *parameters) -> None:
        self.parameters = parameters

    # -- SUMMARIZE -------------------------------------------------------------

    def local_aggregate(self, key, summary, side: JoinSide):
        """Fold one ``key`` into ``summary`` (which is ``None`` for the
        first key on a worker) and return the updated summary."""
        raise NotImplementedError

    def global_aggregate(self, summary1, summary2, side: JoinSide):
        """Merge two partial summaries into one.  Either argument may be
        ``None`` when a worker saw no records."""
        raise NotImplementedError

    def divide(self, summary1, summary2):
        """Combine the global summaries of both sides into the PPlan.

        Query parameters are available as ``self.parameters``.
        """
        raise NotImplementedError

    # -- PARTITION -------------------------------------------------------------

    def assign(self, key, pplan, side: JoinSide):
        """Bucket id(s) for ``key``: an int (single-assign) or a list of
        ints (multi-assign)."""
        raise NotImplementedError

    # -- COMBINE ---------------------------------------------------------------

    def match(self, bucket_id1: int, bucket_id2: int) -> bool:
        """Whether two buckets should be joined.

        The default is equality, which marks the join a *single-join*; the
        optimizer then uses hash partitioning and the hash-join operator.
        Overriding this makes the join a *multi-join* (theta join on
        bucket ids) and forces a broadcast-based bucket matching plan.
        """
        return bucket_id1 == bucket_id2

    def verify(self, key1, key2, pplan) -> bool:
        """The exact join predicate on a candidate pair."""
        raise NotImplementedError

    def dedup(self, bucket_id1: int, key1, bucket_id2: int, key2, pplan) -> bool:
        """Return True if the pair should be *emitted* from these buckets.

        The framework default implements duplicate avoidance: it recomputes
        both assignment lists and emits the pair only from the first
        matching bucket pair (paper §IV-C).  Override for a custom scheme
        (e.g. the reference-point method) or disable dedup entirely via
        :meth:`uses_dedup` when the partitioning is single-assign.
        """
        first = self.first_matching_buckets(key1, key2, pplan)
        return first == (bucket_id1, bucket_id2)

    # -- capability probes (used by the optimizer, paper §VI-C) ----------------

    def uses_default_match(self) -> bool:
        """True when :meth:`match` is not overridden (single-join);
        enables the hash-join physical plan."""
        return type(self).match is FlexibleJoin.match

    def uses_dedup(self) -> bool:
        """Whether the combine phase must run duplicate handling.

        Defaults to True whenever dedup could matter; single-assign joins
        should override this to return False so the engine can skip the
        dedup work entirely (the paper's "can be disabled" knob).
        """
        return True

    def symmetric_summaries(self) -> bool:
        """True when both sides share one summarize/assign implementation,
        enabling the self-join summarize-once optimization (§VI-C)."""
        return True

    # -- optional extensions (the paper's §VIII future work) ---------------------

    def partition_buckets(self, bucket_id: int, num_partitions: int, pplan):
        """Optional: worker partitions a bucket belongs to, for the
        *partitioned theta join* extension.

        Multi-joins normally force a broadcast plan (§VII-C).  A join whose
        ``match`` has range structure can instead override this to map each
        bucket id onto one or more of ``num_partitions`` logical match
        partitions such that **any two buckets with ``match(b1, b2) ==
        True`` share at least one partition**.  The engine then
        co-partitions both sides and joins locally — no broadcast.  Return
        ``None`` (the default) to keep the broadcast plan.
        """
        return None

    def supports_partitioned_matching(self) -> bool:
        """True when :meth:`partition_buckets` is overridden."""
        return (
            type(self).partition_buckets is not FlexibleJoin.partition_buckets
        )

    def local_join(self, keys1: list, keys2: list, pplan):
        """Optional: a custom local algorithm for joining two matched
        buckets (the paper's planned *local join optimization* hook).

        Receives the keys of the two matched buckets and must yield
        ``(i, j)`` index pairs of *candidate* matches — pairs it does not
        yield are pruned without verification, so the implementation must
        never drop a pair that :meth:`verify` would accept.  ``verify``
        and duplicate handling still run on every yielded pair.  Return
        ``None`` (the default) for the engine's all-pairs loop.
        """
        return None

    def has_local_join(self) -> bool:
        """True when :meth:`local_join` is overridden."""
        return type(self).local_join is not FlexibleJoin.local_join

    # -- helpers ----------------------------------------------------------------

    def assign_list(self, key, pplan, side: JoinSide) -> list:
        """Normalized assignment: always a list of bucket ids."""
        bucket_ids = self.assign(key, pplan, side)
        if isinstance(bucket_ids, int):
            return [bucket_ids]
        return list(bucket_ids)

    def first_matching_buckets(self, key1, key2, pplan):
        """The lexicographically first ``(b1, b2)`` with ``match(b1, b2)``.

        This is the engine's duplicate-avoidance anchor: every worker
        computes the same deterministic pair, so exactly one copy of each
        result survives.  Returns ``None`` when no bucket pair matches
        (the pair then never got co-located and must not be emitted).
        """
        ids1 = sorted(self.assign_list(key1, pplan, JoinSide.LEFT))
        ids2 = sorted(self.assign_list(key2, pplan, JoinSide.RIGHT))
        for b1 in ids1:
            for b2 in ids2:
                if self.match(b1, b2):
                    return (b1, b2)
        return None

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.parameters)
        return f"{type(self).__name__}({params})"
