"""Concurrent session server: the database's network front door.

A zero-dependency TCP server multiplexing many client sessions onto one
:class:`~repro.database.Database`.  The wire protocol is JSONL: each
request is one JSON object per line, each response one JSON object per
line, matched by the client-chosen ``id`` — so responses may interleave
freely with later requests on the same connection (a ``cancel`` can
race the query it targets, which is the point).

Request ops::

    {"id": 1, "op": "hello", "tenant": "analytics"}
    {"id": 2, "op": "query", "sql": "SELECT ...", "mode": "fudj",
     "deadline_ms": 500}
    {"id": 3, "op": "cancel", "target": 2}
    {"id": 4, "op": "ping"}
    {"id": 5, "op": "close"}

Responses carry ``type`` (``result`` / ``error`` / ``ok`` / ``pong``)
plus op-specific fields; errors carry a typed ``error`` status
(``timeout`` / ``cancelled`` / ``shed`` / ``rejected`` / ``failed`` /
``error`` / ``draining`` / ``bad-request``) so clients react without
parsing messages.

Request robustness, end to end:

* **Deadlines** — ``deadline_ms`` extends the PR 1 ``query_timeout``
  machinery: the server computes the remaining budget when the query
  starts and passes it as the per-query timeout, *and* arms a watchdog
  that cancels the query's token at the deadline, so a request stuck
  behind a long-running query still dies on time.  Both paths answer
  with ``error: "timeout"``.
* **Cooperative cancellation** — every query request gets a
  :class:`~repro.engine.cancel.CancellationToken`.  An explicit
  ``cancel`` op, a client disconnect, or a server drain cancels it; the
  engine aborts at the next checkpoint, frees reservations and spill
  files, and the recorded status is ``cancelled``.  Re-running the same
  query afterwards returns byte-identical rows.
* **Per-tenant backpressure** — each session's tenant gets a bounded
  lane (:class:`~repro.engine.resources.TenantLanes`); requests past
  the lane depth are shed with ``error: "shed"`` before they can occupy
  the shared admission queue.  The PR 4
  :class:`~repro.engine.resources.AdmissionController` still governs
  memory capacity and global queueing behind the lanes.
* **Graceful drain** — :meth:`SessionServer.stop` (or SIGTERM via
  ``fudj serve``) stops accepting, lets in-flight requests finish for
  up to ``drain_timeout`` seconds, cancels stragglers cooperatively,
  then closes every session.  ``fudj_drain_seconds`` records how long
  the drain took.

Observability: ``server.*`` / ``session.*`` / ``cancel.*`` events (all
*runtime* kinds — client timing is not deterministic, so they never
perturb the canonical JSONL stream), ``fudj_sessions_*`` /
``fudj_session_requests_total`` / ``fudj_cancelled_total`` counters,
and the live ``sys.sessions`` virtual table.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
import time

from repro.engine.cancel import CancellationToken
from repro.engine.resources import TenantLanes
from repro.errors import (
    AdmissionError,
    BreakerOpenError,
    FudjCallbackError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ServerError,
    TaskFailedError,
)

#: Default in-flight request depth of one tenant's lane.
DEFAULT_TENANT_DEPTH = 4

#: Tenant a session belongs to before (or without) a ``hello``.
DEFAULT_TENANT = "default"

_SESSION_IDS = itertools.count(1)


def _error_status(exc: Exception) -> str:
    """Typed wire status of a failed request (mirrors the history
    status classes of ``Database.execute``)."""
    if isinstance(exc, QueryCancelledError):
        # A deadline watchdog cancels the token with reason "deadline";
        # to the client that is a timeout, same as the in-engine path.
        return "timeout" if exc.reason == "deadline" else "cancelled"
    if isinstance(exc, QueryTimeoutError):
        return "timeout"
    if isinstance(exc, AdmissionError):
        return "shed"
    if isinstance(exc, BreakerOpenError):
        return "rejected"
    if isinstance(exc, (TaskFailedError, FudjCallbackError)):
        return "failed"
    return "error"


def _jsonable(value):
    """A JSON-representable form of one row value (exotic engine types
    — geometry tuples, opaque states — render through repr)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class _Session:
    """One connected client: a reader thread plus per-request workers.

    The reader thread owns the socket's input side; each ``query``
    request runs on its own worker thread so the reader stays free to
    see a ``cancel`` (or EOF) while queries are in flight.  Writes are
    serialized by a lock so interleaved responses never garble lines.
    """

    def __init__(self, server: "SessionServer", conn: socket.socket,
                 session_id: int) -> None:
        self.server = server
        self.conn = conn
        self.session_id = session_id
        self.tenant = DEFAULT_TENANT
        self.state = "open"
        self.requests = 0
        self.cancelled = 0
        #: request id -> (CancellationToken, query_id holder) of queries
        #: currently in flight on this session.
        self.inflight = {}
        self._inflight_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._workers = []
        self.thread = threading.Thread(
            target=self._run, name=f"fudj-session-{session_id}",
            daemon=True,
        )

    # -- wire I/O -------------------------------------------------------------

    def send(self, payload: dict) -> None:
        """Write one response line (best effort: a dead peer is not an
        error — the session is about to notice EOF anyway)."""
        line = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
        try:
            with self._write_lock:
                self.conn.sendall(line.encode("utf-8"))
        except OSError:
            pass

    # -- lifecycle ------------------------------------------------------------

    def _run(self) -> None:
        server = self.server
        reader = self.conn.makefile("r", encoding="utf-8", newline="\n")
        try:
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                if not self._handle_line(line):
                    break
        except (OSError, ValueError):
            pass  # socket torn down under the reader
        finally:
            self.state = "closing"
            self._cancel_inflight("disconnect")
            for worker in list(self._workers):
                worker.join(timeout=server.drain_timeout + 5.0)
            try:
                reader.close()
            except OSError:
                pass
            try:
                self.conn.close()
            except OSError:
                pass
            server._forget_session(self)

    def _handle_line(self, line: str) -> bool:
        """Dispatch one request line; False ends the session."""
        server = self.server
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            self.send({"id": None, "type": "error", "error": "bad-request",
                       "message": f"unparseable request: {exc}"})
            server.db.telemetry.note_request("invalid", "bad-request")
            return True
        rid = request.get("id")
        op = request.get("op")
        self.requests += 1
        if server.draining and op in ("query", "hello"):
            self.send({"id": rid, "type": "error", "error": "draining",
                       "message": "server is draining; no new requests"})
            server.db.telemetry.note_request(str(op), "draining")
            return True
        if op == "query":
            self._start_query(rid, request)
            return True
        if op == "cancel":
            self._cancel_request(rid, request)
            return True
        if op == "ping":
            self.send({"id": rid, "type": "pong"})
            server.db.telemetry.note_request("ping", "ok")
            return True
        if op == "hello":
            self.tenant = str(request.get("tenant") or DEFAULT_TENANT)
            self.send({"id": rid, "type": "ok", "session": self.session_id,
                       "tenant": self.tenant})
            server.db.telemetry.note_request("hello", "ok")
            return True
        if op == "close":
            self.send({"id": rid, "type": "ok"})
            server.db.telemetry.note_request("close", "ok")
            return False
        self.send({"id": rid, "type": "error", "error": "bad-request",
                   "message": f"unknown op {op!r}"})
        server.db.telemetry.note_request(str(op), "bad-request")
        return True

    # -- query requests -------------------------------------------------------

    def _start_query(self, rid, request: dict) -> None:
        token = CancellationToken()
        deadline = None
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None:
            deadline = time.monotonic() + float(deadline_ms) / 1000.0
        holder = {"token": token, "query_id": 0}
        with self._inflight_lock:
            self.inflight[rid] = holder
        worker = threading.Thread(
            target=self._run_query,
            args=(rid, request, token, deadline, holder),
            name=f"fudj-req-{self.session_id}-{rid}", daemon=True,
        )
        self._workers.append(worker)
        worker.start()

    def _run_query(self, rid, request, token, deadline, holder) -> None:
        server = self.server
        db = server.db
        tenant = self.tenant
        watchdog = None
        outcome = "ok"
        in_lane = False

        def finish(payload: dict) -> None:
            # Retire the request *before* the terminal response goes
            # out: once the client can see the outcome, a cancel must
            # miss (``cancelled: false``), never claim a hit on a
            # request that already finished.
            with self._inflight_lock:
                self.inflight.pop(rid, None)
            self.send(payload)

        try:
            sql = request.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                outcome = "bad-request"
                finish({"id": rid, "type": "error",
                        "error": "bad-request",
                        "message": "query request needs a sql string"})
                return
            try:
                server.lanes.enter(tenant)
                in_lane = True
            except AdmissionError as exc:
                db.telemetry.note_admission(exc.reason)
                db.telemetry.events.emit(
                    "session.shed", reason=exc.reason,
                    session=self.session_id, tenant=tenant)
                outcome = "shed"
                finish(self._error_payload(rid, exc))
                return
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise QueryTimeoutError(0.0, 0.0)
                # The in-engine deadline starts only once the query is
                # admitted and holds the engine; the watchdog covers the
                # wait before that, so the deadline is end-to-end.
                watchdog = threading.Timer(
                    remaining, self._cancel_token, args=(token, "deadline"))
                watchdog.daemon = True
                watchdog.start()
            kwargs = {}
            if remaining is not None:
                kwargs["query_timeout"] = remaining
            # Reserve the history id up front so sys.sessions can show
            # which query this session is running *while* it runs.
            holder["query_id"] = db.telemetry.next_query_id()
            result = db.execute(
                sql, mode=request.get("mode", "fudj"),
                optimizer=request.get("optimizer"),
                cancel=token, query_id=holder["query_id"], **kwargs)
            rows = [{str(k): _jsonable(v) for k, v in row.items()}
                    for row in result.rows]
            finish({
                "id": rid, "type": "result", "rows": rows,
                "schema": list(result.schema),
                "row_count": len(rows),
                "query_id": holder["query_id"],
            })
        except ReproError as exc:
            outcome = _error_status(exc)
            finish(self._error_payload(rid, exc))
        except Exception as exc:  # never kill the worker silently
            outcome = "error"
            finish({"id": rid, "type": "error", "error": "error",
                    "error_type": type(exc).__name__,
                    "message": str(exc)})
        finally:
            if watchdog is not None:
                watchdog.cancel()
            if in_lane:
                server.lanes.leave(tenant)
            with self._inflight_lock:
                self.inflight.pop(rid, None)
            if token.cancelled:
                self.cancelled += 1
                db.telemetry.note_cancel(token.reason)
            db.telemetry.note_request("query", outcome)
            worker = threading.current_thread()
            if worker in self._workers:
                self._workers.remove(worker)

    def _error_payload(self, rid, exc) -> dict:
        return {"id": rid, "type": "error", "error": _error_status(exc),
                "error_type": type(exc).__name__, "message": str(exc)}

    # -- cancellation ---------------------------------------------------------

    def _cancel_token(self, token: CancellationToken, reason: str) -> None:
        if token.cancel(reason):
            self.server.db.telemetry.events.emit(
                "cancel.request", reason=reason,
                session=self.session_id)

    def _cancel_request(self, rid, request: dict) -> None:
        target = request.get("target")
        with self._inflight_lock:
            holder = self.inflight.get(target)
        if holder is None:
            # Already finished (or never existed): cancel raced normal
            # completion and lost — a normal outcome, not an error.
            self.send({"id": rid, "type": "ok", "cancelled": False})
            self.server.db.telemetry.note_request("cancel", "miss")
            return
        self._cancel_token(holder["token"], "client-cancel")
        self.send({"id": rid, "type": "ok", "cancelled": True})
        self.server.db.telemetry.note_request("cancel", "ok")

    def _cancel_inflight(self, reason: str) -> int:
        """Cancel every in-flight query on this session; returns how
        many tokens this call actually flipped."""
        with self._inflight_lock:
            holders = list(self.inflight.values())
        flipped = 0
        for holder in holders:
            if holder["token"].cancel(reason):
                flipped += 1
                self.server.db.telemetry.events.emit(
                    "cancel.request", reason=reason,
                    session=self.session_id)
        return flipped

    # -- introspection --------------------------------------------------------

    def row(self) -> dict:
        """This session as one ``sys.sessions`` row."""
        with self._inflight_lock:
            active = [h["query_id"] for h in self.inflight.values()
                      if h["query_id"]]
        return {
            "session": self.session_id,
            "tenant": self.tenant,
            "state": ("draining" if self.server.draining and
                      self.state == "open" else self.state),
            "requests": self.requests,
            "active_query": max(active) if active else 0,
            "cancelled": self.cancelled,
            "lane_depth": self.server.lanes.depth_of(self.tenant),
        }


class SessionServer:
    """The concurrent JSONL session server over one database.

    Construct via :meth:`Database.serve
    <repro.database.Database.serve>`; ``port=0`` binds any free port
    (read the real one from :attr:`port` after :meth:`start`).
    :meth:`stop` drains gracefully and is idempotent.
    """

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0,
                 max_sessions: int = 8, drain_timeout: float = 5.0,
                 tenant_depth: int = None) -> None:
        if max_sessions < 1:
            raise ServerError(
                f"max_sessions must be >= 1, got {max_sessions}",
                host=host, port=port)
        self.db = database
        self.max_sessions = int(max_sessions)
        self.drain_timeout = float(drain_timeout)
        self.lanes = TenantLanes(tenant_depth or DEFAULT_TENANT_DEPTH)
        self.draining = False
        self._stopped = False
        self._sessions = {}
        self._sessions_lock = threading.Lock()
        self._accept_thread = None
        try:
            self._listener = socket.create_server(
                (host, int(port)), reuse_port=False)
        except OSError as exc:
            raise ServerError(
                f"session server cannot bind {host}:{port}: {exc}",
                host=host, port=int(port),
            ) from exc
        self._listener.settimeout(0.2)
        self._address = self._listener.getsockname()

    # -- addresses ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._address[0]

    @property
    def port(self) -> int:
        return self._address[1]

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "SessionServer":
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="fudj-server-accept",
                daemon=True,
            )
            self._accept_thread.start()
            self.db.telemetry.events.emit(
                "server.start", max_sessions=self.max_sessions)
        return self

    def _accept_loop(self) -> None:
        while not self.draining:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: drain started
            self._admit_connection(conn)

    def _admit_connection(self, conn: socket.socket) -> None:
        telemetry = self.db.telemetry
        with self._sessions_lock:
            if self.draining or len(self._sessions) >= self.max_sessions:
                reason = ("draining" if self.draining else "server-full")
                session = None
            else:
                session = _Session(self, conn, next(_SESSION_IDS))
                self._sessions[session.session_id] = session
        if session is None:
            payload = json.dumps(
                {"id": None, "type": "error", "error": "shed",
                 "message": f"connection refused: {reason} "
                            f"(max_sessions {self.max_sessions})"},
                sort_keys=True, separators=(",", ":")) + "\n"
            try:
                conn.sendall(payload.encode("utf-8"))
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
            telemetry.events.emit("session.shed", reason=reason)
            telemetry.note_request("connect", "shed")
            return
        telemetry.note_session(+1)
        telemetry.events.emit("session.open", session=session.session_id)
        session.thread.start()

    def _forget_session(self, session: _Session) -> None:
        with self._sessions_lock:
            alive = self._sessions.pop(session.session_id, None)
        if alive is not None:
            session.state = "closed"
            self.db.telemetry.note_session(-1)
            self.db.telemetry.events.emit(
                "session.close", session=session.session_id,
                requests=session.requests)

    def _inflight_count(self) -> int:
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        total = 0
        for session in sessions:
            with session._inflight_lock:
                total += len(session.inflight)
        return total

    def stop(self, drain_timeout: float = None) -> None:
        """Graceful drain, then shutdown.  Idempotent.

        Stops accepting, refuses new requests on live sessions, waits
        up to ``drain_timeout`` seconds for in-flight requests to
        finish, cancels stragglers cooperatively, then closes every
        session socket and the listener.
        """
        if self._stopped:
            return
        self._stopped = True
        budget = (self.drain_timeout if drain_timeout is None
                  else float(drain_timeout))
        started = time.monotonic()
        self.draining = True
        self.db.telemetry.events.emit(
            "server.drain", inflight=self._inflight_count())
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        deadline = started + budget
        while self._inflight_count() > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        # Stragglers past the budget: cancel cooperatively and give the
        # unwind a moment — the engine aborts at its next checkpoint.
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session._cancel_inflight("drain")
        hard_deadline = time.monotonic() + max(budget, 1.0)
        while self._inflight_count() > 0 and time.monotonic() < hard_deadline:
            time.sleep(0.02)
        for session in sessions:
            try:
                session.conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                session.conn.close()
            except OSError:
                pass
        for session in sessions:
            session.thread.join(timeout=5.0)
            self._forget_session(session)
        elapsed = time.monotonic() - started
        self.db.telemetry.note_drain(elapsed)
        self.db.telemetry.events.emit("server.stop")

    # -- introspection --------------------------------------------------------

    def sessions_rows(self) -> list:
        """Live sessions as ``sys.sessions`` rows (session order)."""
        with self._sessions_lock:
            sessions = sorted(self._sessions.values(),
                              key=lambda s: s.session_id)
        return [session.row() for session in sessions]

    def snapshot(self) -> dict:
        with self._sessions_lock:
            open_sessions = len(self._sessions)
        return {
            "host": self.host,
            "port": self.port,
            "open_sessions": open_sessions,
            "max_sessions": self.max_sessions,
            "draining": self.draining,
            "inflight": self._inflight_count(),
            "lanes": self.lanes.snapshot(),
        }
