"""Exchange (shuffle) primitives: hash, broadcast, and random repartition.

Exchanges are the only operators that move records between workers, so
they are the only place network bytes are charged.  Records are serialized
for real (unless the context's ``measure_bytes`` speed knob is off, in
which case sizes are extrapolated from a per-partition sample).

Exchanges are also the engine's recovery boundary: with a fault plan
active, each worker's send is retried through injected transient link
failures (re-sent bytes and backoff charged to the sender), and the
received partitions are spooled to the local checkpoint store so a
downstream task that crashes replays one stage, not the whole plan.
"""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.faults import apply_exchange_faults, charge_checkpoint
from repro.engine.record import serialized_values_size
from repro.engine.resources import RecordSpillCodec, RowSpillCodec

_SIZE_SAMPLE = 32


def _admit_received(out, ctx: ExecutionContext, stage) -> list:
    """Account receive buffers against the memory budget.

    Active only under enforcement (``Database(memory_budget=...)``):
    exchange buffers were never priced by the cost model, so un-governed
    runs skip this entirely and charge exactly what they always did.
    Spilled records are replayed in place, keeping partition order.
    """
    if not ctx.resources.enforce:
        return out
    codec = RecordSpillCodec()
    return [
        ctx.admit(stage, worker, partition, codec, price=False)
        for worker, partition in enumerate(out)
    ]


def _partition_bytes(partition, ctx: ExecutionContext) -> int:
    """Wire size of a partition, exact or sampled."""
    if not partition:
        return 0
    if ctx.measure_bytes or len(partition) <= _SIZE_SAMPLE:
        return sum(r.serialized_size() for r in partition)
    sample = partition[:: max(1, len(partition) // _SIZE_SAMPLE)][:_SIZE_SAMPLE]
    avg = sum(r.serialized_size() for r in sample) / len(sample)
    return int(avg * len(partition))


def hash_exchange(partitions, key_fn, ctx: ExecutionContext,
                  stage_name: str = "hash-exchange") -> list:
    """Repartition by ``hash(key_fn(record))``.

    Records whose key hashes to their current worker do not cross the
    network (locality is modelled: roughly ``1/P`` of records stay put).
    """
    ctx.check_cancel()  # exchanges are cancellation checkpoints
    ctx.pool_tick()  # recycle idle-dead workers between stages
    stage = ctx.metrics.stage(stage_name)
    model = ctx.cost_model
    with ctx.tracer.span(stage_name.rsplit("/", 1)[-1], kind="exchange",
                         stage=stage):
        out = [[] for _ in range(ctx.num_partitions)]
        for worker, partition in enumerate(partitions):
            moved = []
            ctx.metrics.operator_invocations += len(partition)
            for record in partition:
                target = hash(key_fn(record)) % ctx.num_partitions
                out[target].append(record)
                if target != worker:
                    moved.append(record)
                stage.charge(worker, model.hash_op + model.record_touch)
            moved_bytes = _partition_bytes(moved, ctx)
            stage.network_bytes += moved_bytes
            stage.charge(worker, moved_bytes * model.serde_byte)
            apply_exchange_faults(ctx, stage, worker, moved_bytes)
            stage.records_in += len(partition)
        for worker, partition in enumerate(out):
            charge_checkpoint(ctx, stage, worker,
                              _partition_bytes(partition, ctx))
        stage.records_out = sum(len(p) for p in out)
        return _admit_received(out, ctx, stage)


def _row_bytes(rows, ctx: ExecutionContext) -> int:
    """Wire size of a row list, exact or sampled — the value-tuple twin
    of :func:`_partition_bytes` (same sampling stride, same sizes)."""
    if not rows:
        return 0
    if ctx.measure_bytes or len(rows) <= _SIZE_SAMPLE:
        return sum(serialized_values_size(row) for row in rows)
    sample = rows[:: max(1, len(rows) // _SIZE_SAMPLE)][:_SIZE_SAMPLE]
    avg = sum(serialized_values_size(row) for row in sample) / len(sample)
    return int(avg * len(rows))


def _admit_received_rows(out_rows, ctx: ExecutionContext, stage) -> list:
    """Batched twin of :func:`_admit_received`: account receive buffers
    (as raw rows) against the memory budget, enforcement-only."""
    if not ctx.resources.enforce:
        return out_rows
    codec = RowSpillCodec()
    return [
        ctx.admit(stage, worker, rows, codec, price=False)
        for worker, rows in enumerate(out_rows)
    ]


def hash_exchange_batches(worker_batches, key_fn, ctx: ExecutionContext,
                          stage_name: str, schema) -> list:
    """Batch-at-a-time hash repartition — the vectorized twin of
    :func:`hash_exchange`.

    ``worker_batches`` is one list of
    :class:`~repro.engine.batch.RecordBatch` per worker; ``key_fn``
    takes a raw value tuple (row mode keys on ``record.values``, so the
    hashes agree).  Stage name, per-row charges (issued once per worker
    as ``rows * (hash_op + record_touch)``), network bytes, fault
    injection, checkpoint spooling, and receive-buffer admission are all
    identical to the row exchange; only the dispatch granularity — one
    kernel call per batch — differs.  Returns per-worker batch lists.
    """
    from repro.engine.batch import batches_from_rows
    from repro.engine.kernels import scatter_batch

    ctx.check_cancel()  # exchanges are cancellation checkpoints
    ctx.pool_tick()  # recycle idle-dead workers between stages
    stage = ctx.metrics.stage(stage_name)
    model = ctx.cost_model
    with ctx.tracer.span(stage_name.rsplit("/", 1)[-1], kind="exchange",
                         stage=stage):
        out_rows = [[] for _ in range(ctx.num_partitions)]
        for worker, batches in enumerate(worker_batches):
            moved = []
            sent = 0
            for batch in batches:
                ctx.metrics.operator_invocations += 1
                scatter_batch(batch, key_fn, ctx.num_partitions, worker,
                              out_rows, moved)
                sent += batch.num_rows
            stage.charge(worker, sent * (model.hash_op + model.record_touch))
            moved_bytes = _row_bytes(moved, ctx)
            stage.network_bytes += moved_bytes
            stage.charge(worker, moved_bytes * model.serde_byte)
            apply_exchange_faults(ctx, stage, worker, moved_bytes)
            stage.records_in += sent
        for worker, rows in enumerate(out_rows):
            charge_checkpoint(ctx, stage, worker, _row_bytes(rows, ctx))
        stage.records_out = sum(len(rows) for rows in out_rows)
        received = _admit_received_rows(out_rows, ctx, stage)
        return [batches_from_rows(ctx, schema, rows) for rows in received]


def broadcast_exchange(partitions, ctx: ExecutionContext,
                       stage_name: str = "broadcast-exchange") -> list:
    """Replicate the full input to every worker.

    Network cost is ``(P - 1) * |input bytes|`` — every worker needs a copy
    and one copy is already local somewhere.
    """
    ctx.check_cancel()  # exchanges are cancellation checkpoints
    ctx.pool_tick()  # recycle idle-dead workers between stages
    stage = ctx.metrics.stage(stage_name)
    model = ctx.cost_model
    with ctx.tracer.span(stage_name.rsplit("/", 1)[-1], kind="exchange",
                         stage=stage):
        everything = [
            record for partition in partitions for record in partition
        ]
        ctx.metrics.operator_invocations += len(everything)
        total_bytes = _partition_bytes(everything, ctx)
        replicas = max(0, ctx.num_partitions - 1)
        stage.fabric_bytes += total_bytes * replicas
        for worker in range(ctx.num_partitions):
            stage.charge(
                worker,
                len(everything) * model.record_touch
                + total_bytes * model.serde_byte,
            )
            # A flaky link to one receiver forces a re-send of its whole copy.
            apply_exchange_faults(ctx, stage, worker, total_bytes)
        # One checkpoint copy covers every replica (the data is identical),
        # charged to the worker that holds the canonical copy.
        charge_checkpoint(ctx, stage, 0, total_bytes)
        stage.records_in = len(everything)
        stage.records_out = len(everything) * ctx.num_partitions
        replicas = [list(everything) for _ in range(ctx.num_partitions)]
        return _admit_received(replicas, ctx, stage)


def random_exchange(partitions, ctx: ExecutionContext,
                    stage_name: str = "random-exchange") -> list:
    """Round-robin repartition (the theta-join fallback of paper §VII-C:
    with no partitioning key available, one side is spread randomly)."""
    ctx.check_cancel()  # exchanges are cancellation checkpoints
    ctx.pool_tick()  # recycle idle-dead workers between stages
    stage = ctx.metrics.stage(stage_name)
    model = ctx.cost_model
    with ctx.tracer.span(stage_name.rsplit("/", 1)[-1], kind="exchange",
                         stage=stage):
        out = [[] for _ in range(ctx.num_partitions)]
        cursor = 0
        for worker, partition in enumerate(partitions):
            moved = []
            ctx.metrics.operator_invocations += len(partition)
            for record in partition:
                target = cursor % ctx.num_partitions
                cursor += 1
                out[target].append(record)
                if target != worker:
                    moved.append(record)
                stage.charge(worker, model.record_touch)
            moved_bytes = _partition_bytes(moved, ctx)
            stage.network_bytes += moved_bytes
            stage.charge(worker, moved_bytes * model.serde_byte)
            apply_exchange_faults(ctx, stage, worker, moved_bytes)
            stage.records_in += len(partition)
        for worker, partition in enumerate(out):
            charge_checkpoint(ctx, stage, worker,
                              _partition_bytes(partition, ctx))
        stage.records_out = sum(len(p) for p in out)
        return _admit_received(out, ctx, stage)
