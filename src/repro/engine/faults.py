"""Seeded fault injection and task recovery for the simulated cluster.

The paper's FUDJ plans run on a 13-node cluster where worker crashes,
stragglers, and flaky links are operational reality.  This module gives
the engine a *deterministic* failure model so robustness can be tested
and benchmarked exactly like performance:

- :class:`FaultPlan` decides, from a seed, which ``(stage, worker,
  attempt)`` task attempts crash, which tasks straggle, and which
  exchange sends fail in transit.  Decisions are pure functions of the
  seed — independent of execution order, Python hash randomization, and
  operator instance counters — so the same plan replays identically.
- :func:`apply_exchange_faults` and :func:`charge_checkpoint` are the
  recovery hooks exchanges call: failed sends are retried (the re-sent
  bytes and backoff are charged through the cost model) and exchange
  outputs are spooled to a local checkpoint store, which is what lets a
  crashed task replay one stage instead of the whole plan.

The compute-side retry loop lives in
:meth:`repro.engine.context.ExecutionContext.run_task`; every recovery
charge lands in the normal per-stage metrics, so
``QueryMetrics.simulated_seconds`` reflects fault-tolerance overhead
with no special cases.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.errors import ExecutionError

#: Operator stage names embed a per-instance counter (``fudj-join#7``)
#: that depends on how many plans the process built before this one.
#: Fault rolls key on the *normalized* name so the same query replays the
#: same faults no matter when it runs.
_INSTANCE_ID = re.compile(r"#\d+")


def stage_key(stage_name: str) -> str:
    """The stable identity of a stage used for fault rolls."""
    return _INSTANCE_ID.sub("", stage_name)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected failures.

    Rates are per-attempt probabilities in ``[0, 1]``; every decision is
    derived by hashing ``(seed, kind, stage, worker, attempt)``, so two
    runs with the same plan see byte-identical failure schedules.

    Attributes:
        seed: root of every pseudo-random decision.
        crash_rate: chance one ``(stage, worker)`` task attempt is lost
            after doing its work (the output never gets acknowledged).
        straggler_rate: chance a task runs ``straggler_slowdown`` times
            slower than its charge (a sick node, not a lost one).
        exchange_failure_rate: chance one worker's outgoing shuffle
            traffic must be re-sent (a transient link failure).
        straggler_slowdown: work multiplier a straggling task suffers
            when left alone.
        straggler_detect_factor: the scheduler launches a speculative
            copy once a task overruns this multiple of its expected
            time, capping straggler damage at detection + rerun +
            checkpoint restore.
        backoff_base_seconds / backoff_cap_seconds: capped exponential
            backoff between retry attempts (charged as schedule time).
        max_task_retries: consecutive failures after which the query
            aborts with :class:`~repro.errors.TaskFailedError`.
        checkpoint: spool exchange outputs to the local checkpoint
            store (the lineage that makes single-stage replay possible).
            Charged even at zero fault rates — that is the ablation's
            "checkpointing overhead at 0% faults".
        phases: stage-name substrings injection is restricted to; empty
            means every stage is eligible.
        real: under the process backend, act the schedule out physically —
            a crash roll SIGKILLs the live worker process mid-task and a
            straggler roll makes the worker genuinely stall — instead of
            only charging the cost model.  The *accounting* is identical
            either way (same rolls, same charges), so metrics stay
            byte-comparable with the serial backend.
    """

    seed: int = 0
    crash_rate: float = 0.0
    straggler_rate: float = 0.0
    exchange_failure_rate: float = 0.0
    straggler_slowdown: float = 4.0
    straggler_detect_factor: float = 2.0
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    max_task_retries: int = 6
    checkpoint: bool = True
    phases: tuple = ()
    real: bool = False

    def __post_init__(self) -> None:
        for name in ("crash_rate", "straggler_rate", "exchange_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ExecutionError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_slowdown < 1.0:
            raise ExecutionError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        if self.max_task_retries < 1:
            raise ExecutionError(
                f"max_task_retries must be >= 1, got {self.max_task_retries}"
            )

    # -- deterministic rolls ---------------------------------------------------

    def _roll(self, kind: str, stage: str, worker: int, attempt: int) -> float:
        """A stable pseudo-uniform draw in [0, 1)."""
        token = f"{self.seed}|{kind}|{stage}|{worker}|{attempt}"
        digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def active_for(self, stage_name: str) -> bool:
        """Whether injection applies to this stage at all."""
        if not self.phases:
            return True
        return any(phase in stage_name for phase in self.phases)

    def any_faults(self) -> bool:
        return bool(
            self.crash_rate or self.straggler_rate or self.exchange_failure_rate
        )

    def crashes(self, stage: str, worker: int, attempt: int) -> bool:
        """Does attempt ``attempt`` of this task lose its output?"""
        return self._roll("crash", stage, worker, attempt) < self.crash_rate

    def straggles(self, stage: str, worker: int) -> bool:
        """Is this task scheduled onto a straggling node?"""
        return self._roll("straggle", stage, worker, 0) < self.straggler_rate

    def exchange_failures(self, stage: str, worker: int) -> int:
        """How many times this worker's shuffle send fails before landing."""
        failures = 0
        while (failures < self.max_task_retries
               and self._roll("exchange", stage, worker, failures)
               < self.exchange_failure_rate):
            failures += 1
        return failures

    def backoff_seconds(self, attempt: int) -> float:
        """Capped exponential backoff before retry number ``attempt``."""
        return min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2.0 ** max(0, attempt - 1)),
        )

    # -- CLI / facade helpers --------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the CLI syntax ``SEED:RATE`` (one rate for
        crash, straggler, and exchange faults alike) or
        ``SEED:CRASH:STRAGGLER:EXCHANGE``.  A trailing ``:real`` token
        turns on :attr:`real` (physical faults under the process
        backend)."""
        parts = spec.split(":")
        real = False
        if parts and parts[-1] == "real":
            real = True
            parts = parts[:-1]
        if len(parts) not in (2, 4):
            raise ExecutionError(
                f"bad fault spec {spec!r}; use SEED:RATE or "
                f"SEED:CRASH:STRAGGLER:EXCHANGE (append :real for "
                f"physical faults under the process backend)"
            )
        try:
            seed = int(parts[0])
            rates = [float(p) for p in parts[1:]]
        except ValueError:
            raise ExecutionError(
                f"bad fault spec {spec!r}; use SEED:RATE or "
                f"SEED:CRASH:STRAGGLER:EXCHANGE"
            ) from None
        if len(rates) == 1:
            rates = rates * 3
        return cls(seed=seed, crash_rate=rates[0], straggler_rate=rates[1],
                   exchange_failure_rate=rates[2], real=real)

    def describe(self) -> str:
        line = (
            f"seed={self.seed} crash={self.crash_rate:g} "
            f"straggler={self.straggler_rate:g} "
            f"exchange={self.exchange_failure_rate:g} "
            f"checkpoint={'on' if self.checkpoint else 'off'}"
        )
        if self.real:
            line += " real=on"
        return line


# -- recovery hooks used by exchanges ----------------------------------------


def apply_exchange_faults(ctx, stage, worker: int, moved_bytes: float) -> None:
    """Retry a worker's shuffle send through transient link failures.

    Each failed attempt re-serializes and re-sends the moved bytes and
    waits out a capped exponential backoff; everything is charged to the
    sending worker inside the exchange stage, so the recovery work shows
    up in the stage makespan like any other work.
    """
    plan = ctx.fault_plan
    if (plan is None or moved_bytes <= 0
            or not plan.exchange_failure_rate
            or not plan.active_for(stage.name)):
        return
    failures = plan.exchange_failures(stage_key(stage.name), worker)
    if not failures:
        return
    model = ctx.cost_model
    resent = moved_bytes * failures
    backoff = sum(plan.backoff_seconds(i + 1) for i in range(failures))
    stage.network_bytes += resent
    stage.charge(
        worker,
        resent * model.serde_byte + backoff * model.core_ops_per_second,
    )
    metrics = ctx.metrics
    metrics.exchange_retries += failures
    metrics.recovery_seconds += (
        backoff
        + model.network_seconds(resent)
        + model.cpu_seconds(resent * model.serde_byte)
    )
    ctx.events.emit("fault.exchange_retry", stage=stage.name, worker=worker,
                    failures=failures, resent_bytes=round(resent, 6))


def charge_checkpoint(ctx, stage, worker: int, num_bytes: float) -> None:
    """Spool ``num_bytes`` of exchange output to the local checkpoint
    store (async write-behind, so the per-byte cost is a fraction of a
    serde unit).  This is the lineage a crashed downstream task restores
    from instead of replaying the whole plan."""
    if not ctx.checkpointing or num_bytes <= 0:
        return
    stage.charge(worker, ctx.cost_model.checkpoint_write_units(num_bytes))
    ctx.metrics.checkpoint_bytes += num_bytes
