"""The distributed query engine substrate (the AsterixDB stand-in).

An in-process shared-nothing engine: datasets are hash-partitioned across
simulated worker nodes, physical operators process partitions, and exchange
operators move serialized records between workers.  Every operator charges
its work to a :class:`~repro.engine.metrics.QueryMetrics` object, which can
replay the schedule over any number of virtual cores — that is how the
paper's scalability experiments (Fig 10, 12–144 cores) run on one machine.
"""

from repro.engine.record import Record, Schema
from repro.engine.dataset import PartitionedDataset
from repro.engine.cluster import Cluster
from repro.engine.faults import FaultPlan
from repro.engine.metrics import QueryMetrics
from repro.engine.costs import CostModel
from repro.engine.tracing import BucketSkew, Span, Trace, Tracer
from repro.engine.telemetry import MetricsRegistry, QueryHistory, Telemetry

__all__ = [
    "Record",
    "Schema",
    "PartitionedDataset",
    "Cluster",
    "FaultPlan",
    "QueryMetrics",
    "CostModel",
    "BucketSkew",
    "Span",
    "Trace",
    "Tracer",
    "MetricsRegistry",
    "QueryHistory",
    "Telemetry",
]
