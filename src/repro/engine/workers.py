"""Supervised process-pool backend: real workers that crash and recover.

The serial backend *simulates* a cluster: per-worker tasks run inline and
faults are charged through the cost model.  This module is the physical
half — ``Database(backend="process")`` ships each COMBINE partition task
to a pool of real worker processes, supervised by the coordinator:

- **Leases + heartbeats.**  Every dispatched task is a lease; workers
  heartbeat every :data:`HEARTBEAT_INTERVAL` seconds while computing, and
  a silent-but-alive worker is flagged (``heartbeat_misses``).
- **Crash detection + re-dispatch.**  A worker process that dies
  mid-lease (``SIGKILL`` in tests, or a planned kill under
  ``FaultPlan(real=True)``) is detected by the supervisor; its task is
  re-dispatched and the loss charged through the same retry/backoff
  arithmetic the serial backend uses.
- **Speculative re-execution.**  A task overrunning
  ``straggler_detect_factor`` times the median completed-task time (or
  missing heartbeats) gets a speculative copy on an idle worker; first
  result wins.
- **Bounded restart budget.**  Worker respawns per query are capped;
  past the cap the pool marks itself unhealthy and raises
  :class:`~repro.errors.WorkerPoolError`, which the engine catches to
  degrade the query to the serial path.

Determinism contract: result rows are byte-identical to the serial
backend and, under a :class:`~repro.engine.faults.FaultPlan`, so is the
cost accounting.  Workers execute the task *kernels* (mirrors of the
serial combine task bodies) and export an ordered ledger of everything a
serial task would have done to shared state — charges, callback calls,
trace attributions, quarantines, breaker events, memory reservations.
The coordinator replays that ledger through the real metrics/tracer/
breaker/accountant, re-running the serial retry loop per planned fault
roll, so every float lands in the same order as the serial backend.

Only COMBINE tasks ship (they dominate FUDJ cost and close over nothing
but picklable state); SUMMARIZE/PARTITION and the exchanges stay on the
coordinator.  Anything unshippable — an unpicklable join, a serde
failure, a non-callback worker error — makes :func:`run_combine` return
None and the caller falls through to the (unchanged) serial loop.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
from collections import defaultdict, deque
from itertools import count
from multiprocessing import connection as mp_connection

from repro.engine.faults import FaultPlan, stage_key
from repro.engine.metrics import QueryMetrics
from repro.engine.record import Record
from repro.engine.resources import (
    KeyedEntrySpillCodec,
    QueryResources,
    _rid_of,
)
from repro.errors import (
    FudjCallbackError,
    SerdeError,
    TaskFailedError,
    WorkerPoolError,
)
from repro.serde.serializer import _I64, deserialize_value, serialize_value

__all__ = ["WorkerPool", "default_pool_size", "run_combine"]

#: Seconds between worker heartbeats while a task lease is held.
HEARTBEAT_INTERVAL = 0.05
#: Heartbeat intervals of silence before a live worker is flagged.
HEARTBEAT_MISS_LIMIT = 10
#: Floor (seconds) under which no task is considered a straggler — keeps
#: speculation from firing on scheduling jitter in tiny queries.
SPECULATION_FLOOR = 0.08
#: How long a worker under ``FaultPlan(real=True)`` genuinely stalls when
#: its straggler roll fires — long enough to trip detection, short enough
#: for tests.
REAL_STRAGGLER_SLEEP = 0.3
#: Supervisor poll granularity (seconds) while waiting on worker pipes.
WAIT_TIMEOUT = 0.05

#: Backoff schedule for *unplanned* worker deaths (no fault plan active):
#: the default plan's capped exponential, same arithmetic as injected
#: crashes so a real SIGKILL is charged like a simulated one.
_DEFAULT_PLAN = FaultPlan()


def default_pool_size(cluster) -> int:
    """Worker processes to run for ``cluster``: bounded by its partition
    count, its core count, the machine, and a small cap (fork + pickle
    overhead swamps any win past a few local processes)."""
    cores = getattr(cluster, "cores", None) or 1
    return max(1, min(cluster.num_partitions, cores, os.cpu_count() or 1, 4))


# -- entry/row transport through the serde layer ------------------------------
#
# COMBINE inputs are (bucket_id, external_key, record) triples.  Records
# ship as serde frames (the same wire format the spill codecs use):
# _I64(rid) _I64(bucket) + boxed values.  Keys ride alongside through the
# body pickle — they are plain external Python values that callbacks must
# see unchanged, so re-boxing them is not an option.  Anything the serde
# layer cannot express falls back to pickling the entries wholesale, and
# if even that fails the caller degrades to the serial path.


def _pack_entries(entries: list) -> dict:
    schema = None
    frames = []
    keys = []
    for bucket, key, record in entries:
        if not isinstance(bucket, int) or not isinstance(record, Record):
            return {"codec": "pickle", "entries": entries}
        if schema is None:
            schema = record.schema
        elif record.schema != schema:
            return {"codec": "pickle", "entries": entries}
        buf = bytearray(_I64.pack(_rid_of(record)))
        buf += _I64.pack(bucket)
        try:
            for value in record.values:
                serialize_value(value, buf)
        except SerdeError:
            return {"codec": "pickle", "entries": entries}
        frames.append(bytes(buf))
        keys.append(key)
    return {"codec": "serde", "schema": schema, "frames": frames, "keys": keys}


def _unpack_entries(packed: dict) -> list:
    if packed["codec"] == "pickle":
        return packed["entries"]
    schema = packed["schema"]
    entries = []
    for frame, key in zip(packed["frames"], packed["keys"]):
        rid = _I64.unpack_from(frame, 0)[0]
        bucket = _I64.unpack_from(frame, _I64.size)[0]
        offset = 2 * _I64.size
        values = []
        while offset < len(frame):
            value, offset = deserialize_value(frame, offset)
            values.append(value)
        record = Record(schema, values)
        record.rid = rid
        entries.append((bucket, key, record))
    return entries


def _pack_rows(rows: list, tagged: bool) -> dict:
    frames = []
    ids = [] if tagged else None
    for row in rows:
        if tagged:
            pair_id, record = row
        else:
            record = row
        buf = bytearray()
        try:
            for value in record.values:
                serialize_value(value, buf)
        except SerdeError:
            return {"codec": "pickle", "rows": rows}
        frames.append(bytes(buf))
        if tagged:
            ids.append(pair_id)
    return {"codec": "serde", "frames": frames, "ids": ids}


def _unpack_rows(packed: dict, out_schema, tagged: bool) -> list:
    if packed["codec"] == "pickle":
        return packed["rows"]
    rows = []
    ids = packed["ids"]
    for index, frame in enumerate(packed["frames"]):
        offset = 0
        values = []
        while offset < len(frame):
            value, offset = deserialize_value(frame, offset)
            values.append(value)
        record = Record(out_schema, values)
        rows.append((ids[index], record) if tagged else record)
    return rows


# -- portable error transport -------------------------------------------------
#
# FudjCallbackError's 3-arg __init__ breaks default exception pickling, and
# shipping arbitrary user exceptions across the pipe is a liability anyway.
# Errors travel as plain descriptors; callback errors are rebuilt on the
# coordinator with a byte-identical message to the serial backend's.


def _describe_error(exc: BaseException) -> dict:
    if isinstance(exc, FudjCallbackError):
        return {
            "kind": "callback",
            "join": exc.join_name,
            "phase": exc.phase,
            "type": type(exc.original).__name__,
            "msg": str(exc.original),
        }
    return {"kind": "generic", "type": type(exc).__name__, "msg": str(exc)}


def _rebuild_error(desc: dict) -> FudjCallbackError:
    err = FudjCallbackError.__new__(FudjCallbackError)
    Exception.__init__(
        err,
        f"FUDJ {desc['join']!r} failed in {desc['phase']}: "
        f"{desc['type']}: {desc['msg']}",
    )
    err.join_name = desc["join"]
    err.phase = desc["phase"]
    err.original = RuntimeError(desc["msg"])
    return err


# -- the worker-side execution site -------------------------------------------


class _WorkerResources(QueryResources):
    """The worker's private accountant: same spill machinery, plus an
    ordered log of reservations so the coordinator can replay them
    through its own accountant in the serial order."""

    def __init__(self, cost_model, enforce: bool, spill_dir: str) -> None:
        super().__init__(cost_model, enforce=enforce, spill_dir=spill_dir)
        self.reservations = []

    def _note_reservation(self, stage_name, worker, num_bytes) -> None:
        self.reservations.append(num_bytes)
        super()._note_reservation(stage_name, worker, num_bytes)

    def export(self) -> dict:
        return {
            "reservations": list(self.reservations),
            "spill": {
                "bytes": self.spill_bytes,
                "files": self.spill_files,
                "units": self.spill_units,
                "spilled": self.spilled_items,
                "pinned": self.pinned_items,
            },
        }


class _SiteEvents:
    """Just enough event-log surface for :meth:`QueryResources.admit`:
    records ``(kind, detail)`` tuples for the export.  Stage and worker
    are dropped — the coordinator's replay re-emits each event with the
    *real* stage name and worker index (the site only knows "worker"),
    so the replayed stream matches the serial backend's byte for byte."""

    __slots__ = ("logged",)

    def __init__(self) -> None:
        self.logged = []

    def emit(self, kind: str, stage: str = "", worker: int = -1,
             phase: str = None, level: str = None, **detail) -> None:
        self.logged.append((kind, detail))


class _TracerShim:
    """Just enough tracer surface for :meth:`QueryResources.admit`."""

    __slots__ = ("enabled", "_site")

    def __init__(self, site, enabled: bool) -> None:
        self.enabled = enabled
        self._site = site

    def attribute(self, name: str, units: float, calls: int = 0) -> None:
        self._site.attribute(name, units, calls=calls)


class _StageShim:
    """Just enough stage surface for :meth:`QueryResources.admit`."""

    __slots__ = ("name", "_site")

    def __init__(self, site, name: str) -> None:
        self.name = name
        self._site = site

    def charge(self, worker: int, units: float) -> None:
        self._site.charge(units)


class _WorkerSite:
    """One task's stand-in for the execution context inside a worker.

    Where a serial task charges the stage, records a callback, attributes
    trace units, quarantines a record, or touches the breaker, the kernel
    does the same thing against this site — which only *logs* the event,
    in order.  The export ships back to the coordinator, which replays it
    against the real objects (see :func:`_apply_task`), so the arithmetic
    and its float-summation order match the serial backend exactly.
    """

    def __init__(self, spec: dict, spill_dir: str) -> None:
        self.join = spec["join"]
        self.join_name = spec["join_name"]
        self.dedup = spec["dedup"]
        self.pplan = spec["pplan"]
        self.out_schema = spec["out_schema"]
        self.v_cost = spec["v_cost"]
        self.tag = spec["tag"]
        self.policy = spec["policy"]
        self.traced = spec["traced"]
        self.num = spec["num"]
        self.enforce = spec["enforce"]
        self.model = spec["model"]
        self.translate = spec["translate"]
        self.worker = spec["worker"]
        self.charges = []
        self.comparisons = 0
        self.attrs = []
        self.calls = {}
        self.child_order = []
        self._child_seen = set()
        self.quarantined = 0
        self.quarantine_log = []
        self.key_conversions = 0
        self.breaker_failures = 0
        self.breaker_ok = False
        self.resources = _WorkerResources(self.model, self.enforce, spill_dir)
        self.tracer = _TracerShim(self, self.traced)
        self.events = _SiteEvents()
        self._stage = _StageShim(self, "worker")

    # -- event log -----------------------------------------------------------

    def charge(self, units: float) -> None:
        self.charges.append(units)

    def _touch_child(self, name: str) -> None:
        # First-touch order of callback spans, so the coordinator creates
        # trace children in the same order the serial backend would.
        if name not in self._child_seen:
            self._child_seen.add(name)
            self.child_order.append(name)

    def attribute(self, name: str, units: float, calls: int = 0) -> None:
        self._touch_child(name)
        self.attrs.append((name, units, calls))

    def note_call(self, name: str, wall: float, ok: bool = True) -> None:
        self._touch_child(name)
        entry = self.calls.get(name)
        if entry is None:
            entry = [0, 0, 0.0]
            self.calls[name] = entry
        entry[0] += 1
        if not ok:
            entry[1] += 1
        entry[2] += wall

    # -- context mirrors -----------------------------------------------------

    def admit(self, items: list, price: bool = True) -> list:
        codec = KeyedEntrySpillCodec(items)
        if self.translate:
            # The serial codec recomputes each restored entry's key
            # through the translation layer, which counts one conversion
            # per decode; the cached-key lookup must stay count-parity.
            inner = codec.rekey

            def rekey(record):
                self.key_conversions += 1
                return inner(record)

            codec.rekey = rekey
        return self.resources.admit(
            self, self._stage, self.worker, items, codec, price=price,
        )

    def guard_record(self, phase: str, fn, *args, detail=None):
        started = time.perf_counter() if self.traced else 0.0
        try:
            result = fn(*args)
        except Exception as exc:
            if self.traced:
                self.note_call(phase, time.perf_counter() - started, ok=False)
            self.breaker_failures += 1
            if self.policy == "fail":
                if isinstance(exc, FudjCallbackError):
                    raise
                raise FudjCallbackError(self.join_name, phase, exc) from exc
            if self.policy == "quarantine":
                self.quarantined += 1
                if len(self.quarantine_log) < QueryMetrics.MAX_QUARANTINE_REPORT:
                    self.quarantine_log.append((
                        phase,
                        f"{type(exc).__name__}: {exc}",
                        None if detail is None else repr(detail),
                    ))
            else:  # skip
                self.quarantined += 1
            return False, None
        if self.traced:
            self.note_call(phase, time.perf_counter() - started)
        self.breaker_ok = True
        return True, result

    def safe_verify(self, key1, key2) -> bool:
        ok, matched = self.guard_record(
            "verify", self.join.verify, key1, key2, self.pplan,
            detail=(key1, key2),
        )
        return bool(matched) if ok else False

    def safe_match(self, bucket1, bucket2) -> bool:
        ok, matched = self.guard_record(
            "match", self.join.match, bucket1, bucket2,
            detail=(bucket1, bucket2),
        )
        return bool(matched) if ok else False

    def local_join_pairs(self, keys1, keys2):
        if not self.traced:
            return self.join.local_join(keys1, keys2, self.pplan)
        started = time.perf_counter()
        pairs = list(self.join.local_join(keys1, keys2, self.pplan))
        self.note_call("local_join", time.perf_counter() - started)
        return pairs

    def export(self) -> dict:
        return {
            "charges": self.charges,
            "comparisons": self.comparisons,
            "attrs": self.attrs,
            "calls": [(name, c[0], c[1], c[2])
                      for name, c in self.calls.items()],
            "child_order": self.child_order,
            "quarantined": self.quarantined,
            "quarantine_log": self.quarantine_log,
            "key_conversions": self.key_conversions,
            "breaker_failures": self.breaker_failures,
            "breaker_ok": self.breaker_ok,
            "resources": self.resources.export(),
            "events": self.events.logged,
        }


def _tag_pair(record1, record2, joined):
    """Worker-side pair tagging: every shipped record carries a rid (the
    coordinator assigns them before packing), so the pair identity is the
    rid pair — stable across workers and spill round-trips."""
    return ((record1.rid, record2.rid), joined)


# -- worker-side task kernels -------------------------------------------------
#
# Deliberate duplication: each kernel mirrors the corresponding serial
# task closure in operators/fudj_join.py line for line — same loops, same
# charge expressions, same charge *order* — with the site standing in for
# (ctx, stage).  Duplicating instead of refactoring the serial closures
# onto a shared site keeps the serial path byte-for-byte untouched; the
# property tests in tests/test_workers.py enforce that the two copies
# never drift.


def _single_task(site: _WorkerSite, left_entries: list,
                 right_entries: list) -> list:
    model = site.model
    build = site.admit(left_entries)
    table = defaultdict(list)
    for bucket_id, key, record in build:
        table[bucket_id].append((key, record))
    site.charge(len(build) * model.hash_op)
    rows = []
    verify_units = 0.0
    dedup_checks = 0
    tag = _tag_pair if site.tag else None
    if site.join.has_local_join():
        rows, dedup_checks, verify_units = _local_buckets(
            site, table, right_entries
        )
    else:
        for bucket_id, key2, record2 in right_entries:
            for key1, record1 in table.get(bucket_id, ()):
                dedup_checks += 1
                if not site.dedup.keep_local(
                    site.join, bucket_id, key1, bucket_id, key2, site.pplan
                ):
                    continue
                matched = site.safe_verify(key1, key2)
                verify_units += model.predicate_units(site.v_cost, matched)
                if not matched:
                    continue
                joined = record1.concat(record2, site.out_schema)
                rows.append(tag(record1, record2, joined) if tag else joined)
    site.charge(
        len(right_entries) * model.hash_op
        + verify_units
        + dedup_checks * model.comparison
    )
    site.comparisons += dedup_checks
    if site.traced:
        site.attribute("verify", verify_units)
        site.attribute(
            "dedup", dedup_checks * model.comparison, calls=dedup_checks
        )
    return rows


def _local_buckets(site: _WorkerSite, left_table, right_entries):
    """Mirror of ``FudjJoin._join_buckets_local``."""
    model = site.model
    right_table = defaultdict(list)
    for bucket_id, key, record in right_entries:
        right_table[bucket_id].append((key, record))
    rows = []
    candidates = 0
    verify_units = 0.0
    setup_keys = 0
    for bucket_id, right_bucket in right_table.items():
        left_bucket = left_table.get(bucket_id)
        if not left_bucket:
            continue
        keys1 = [key for key, _ in left_bucket]
        keys2 = [key for key, _ in right_bucket]
        setup_keys += len(keys1) + len(keys2)
        for i, j in site.local_join_pairs(keys1, keys2):
            candidates += 1
            key1, record1 = left_bucket[i]
            key2, record2 = right_bucket[j]
            if not site.dedup.keep_local(
                site.join, bucket_id, key1, bucket_id, key2, site.pplan
            ):
                continue
            matched = site.safe_verify(key1, key2)
            verify_units += model.predicate_units(site.v_cost, matched)
            if not matched:
                continue
            joined = record1.concat(record2, site.out_schema)
            rows.append(
                _tag_pair(record1, record2, joined) if site.tag else joined
            )
    verify_units += setup_keys * model.comparison
    return rows, candidates, verify_units


def _theta_task(site: _WorkerSite, left_entries: list,
                broadcast: list) -> list:
    model = site.model
    broadcast = site.admit(broadcast)
    site.charge((len(left_entries) + len(broadcast)) * model.hash_op)
    rows = []
    match_checks = 0
    verify_units = 0.0
    dedup_checks = 0
    for b1, key1, record1 in left_entries:
        for b2, key2, record2 in broadcast:
            match_checks += 1
            if not site.safe_match(b1, b2):
                continue
            dedup_checks += 1
            if not site.dedup.keep_local(
                site.join, b1, key1, b2, key2, site.pplan
            ):
                continue
            matched = site.safe_verify(key1, key2)
            verify_units += model.predicate_units(site.v_cost, matched)
            if not matched:
                continue
            joined = record1.concat(record2, site.out_schema)
            rows.append(
                _tag_pair(record1, record2, joined) if site.tag else joined
            )
    site.charge(
        match_checks * model.match_op
        + verify_units
        + dedup_checks * model.comparison
    )
    site.comparisons += dedup_checks
    if site.traced:
        site.attribute("match", match_checks * model.match_op)
        site.attribute("verify", verify_units)
        site.attribute(
            "dedup", dedup_checks * model.comparison, calls=dedup_checks
        )
    return rows


def _partitioned_task(site: _WorkerSite, local_left: list,
                      local_right: list) -> list:
    model = site.model
    join = site.join
    worker = site.worker
    num = site.num
    pplan = site.pplan
    if site.enforce:
        local_left = site.admit(local_left, price=False)
        local_right = site.admit(local_right, price=False)
    site.charge((len(local_left) + len(local_right)) * model.hash_op)
    rows = []
    match_checks = 0
    verify_units = 0.0
    dedup_checks = 0
    part_cache = {}

    def parts_of(bucket_id):
        found = part_cache.get(bucket_id)
        if found is None:
            found = set(join.partition_buckets(bucket_id, num, pplan))
            part_cache[bucket_id] = found
        return found

    if join.has_local_join():
        keys1 = [entry[1] for entry in local_left]
        keys2 = [entry[1] for entry in local_right]
        match_checks = len(keys1) + len(keys2)  # sort/setup charge
        for i, j in site.local_join_pairs(keys1, keys2):
            b1, key1, record1 = local_left[i]
            b2, key2, record2 = local_right[j]
            if not site.safe_match(b1, b2):
                continue
            shared = parts_of(b1) & parts_of(b2)
            if min(shared) != worker:
                continue
            dedup_checks += 1
            if not site.dedup.keep_local(join, b1, key1, b2, key2, pplan):
                continue
            matched = site.safe_verify(key1, key2)
            verify_units += model.predicate_units(site.v_cost, matched)
            if not matched:
                continue
            joined = record1.concat(record2, site.out_schema)
            rows.append(
                _tag_pair(record1, record2, joined) if site.tag else joined
            )
    else:
        for b1, key1, record1 in local_left:
            for b2, key2, record2 in local_right:
                match_checks += 1
                if not site.safe_match(b1, b2):
                    continue
                shared = parts_of(b1) & parts_of(b2)
                if min(shared) != worker:
                    continue  # another partition owns this pair
                dedup_checks += 1
                if not site.dedup.keep_local(join, b1, key1, b2, key2, pplan):
                    continue
                matched = site.safe_verify(key1, key2)
                verify_units += model.predicate_units(site.v_cost, matched)
                if not matched:
                    continue
                joined = record1.concat(record2, site.out_schema)
                rows.append(
                    _tag_pair(record1, record2, joined) if site.tag else joined
                )
    site.charge(
        match_checks * model.match_op
        + verify_units
        + dedup_checks * model.comparison
    )
    site.comparisons += dedup_checks
    if site.traced:
        site.attribute("match", match_checks * model.match_op)
        site.attribute("verify", verify_units)
        site.attribute(
            "dedup", dedup_checks * model.comparison, calls=dedup_checks
        )
    return rows


_KERNELS = {
    "single": _single_task,
    "theta": _theta_task,
    "partitioned": _partitioned_task,
}


def _run_body(body_bytes: bytes, spill_dir: str):
    """Unpack and execute one task body inside a worker process."""
    try:
        body = pickle.loads(body_bytes)
        spec = body["spec"]
        site = _WorkerSite(spec, spill_dir)
    except Exception as exc:
        return "err", {"error": _describe_error(exc), "partial": None}
    try:
        left = _unpack_entries(body["left"])
        right = _unpack_entries(body["right"])
        rows = _KERNELS[spec["kind"]](site, left, right)
        payload = {"rows": _pack_rows(rows, site.tag), "site": site.export()}
        return "ok", payload
    except Exception as exc:
        return "err", {"error": _describe_error(exc), "partial": site.export()}


def _worker_main(parent_conn, conn, slot_index: int, spill_dir: str) -> None:
    """Worker process entry point.

    Protocol (all over one duplex pipe): the supervisor sends
    ``("task", uid, header)`` followed by the raw pickled body, or
    ``("stop",)``; the worker sends ``("hb", slot, uid)`` heartbeats from
    a daemon thread while computing, then ``(status, uid, payload, pid)``.
    A planned kill (``header["kill"]``) fires *after* the compute and
    *before* the send — the work is genuinely wasted, exactly the crash
    the serial model charges for.
    """
    try:
        parent_conn.close()  # our inherited copy of the supervisor's end
    except Exception:
        pass
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    send_lock = threading.Lock()
    current = {"task": None}

    def heartbeat() -> None:
        while True:
            time.sleep(HEARTBEAT_INTERVAL)
            uid = current["task"]
            if uid is None:
                continue
            try:
                with send_lock:
                    conn.send(("hb", slot_index, uid))
            except Exception:
                return

    threading.Thread(target=heartbeat, daemon=True).start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        if msg[0] == "stop":
            os._exit(0)
        _, uid, header = msg
        try:
            body_bytes = conn.recv_bytes()
        except (EOFError, OSError):
            os._exit(0)
        current["task"] = uid
        status, payload = _run_body(body_bytes, spill_dir)
        if header.get("kill"):
            os.kill(os.getpid(), signal.SIGKILL)
        sleep = header.get("sleep", 0.0)
        if sleep:
            time.sleep(sleep)
        current["task"] = None
        try:
            blob = pickle.dumps(
                (status, uid, payload, os.getpid()),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as exc:
            blob = pickle.dumps(
                ("err", uid,
                 {"error": _describe_error(exc), "partial": None},
                 os.getpid()),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        try:
            with send_lock:
                conn.send_bytes(blob)
        except (BrokenPipeError, OSError):
            os._exit(0)


# -- the supervisor -----------------------------------------------------------


class _Slot:
    """One worker seat: the live process plus its lease bookkeeping."""

    __slots__ = ("index", "proc", "conn", "spill_dir", "busy", "task_id",
                 "dispatched_at", "last_heartbeat", "hb_flagged", "tasks_ok",
                 "tasks_failed", "restarts", "heartbeats")

    def __init__(self, index: int, proc, conn, spill_dir: str) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn
        self.spill_dir = spill_dir
        self.busy = False
        self.task_id = None
        self.dispatched_at = 0.0
        self.last_heartbeat = 0.0
        self.hb_flagged = False
        self.tasks_ok = 0
        self.tasks_failed = 0
        self.restarts = 0
        self.heartbeats = 0


class _TaskState:
    """Supervisor-side state of one task across attempts and copies."""

    __slots__ = ("uid", "header_fn", "body", "kills", "attempt", "deaths",
                 "hb_misses", "running", "first_dispatch", "done",
                 "speculated")

    def __init__(self, uid: int, header_fn, body: bytes, kills: int) -> None:
        self.uid = uid
        self.header_fn = header_fn
        self.body = body
        self.kills = kills
        self.attempt = 0
        self.deaths = 0
        self.hb_misses = 0
        self.running = set()
        self.first_dispatch = None
        self.done = False
        self.speculated = False


class WorkerPool:
    """A supervised pool of real worker processes.

    The pool is long-lived (one per :class:`~repro.database.Database`);
    each query hands it a batch of tasks via :meth:`run_tasks`.  Task ids
    are globally unique, so results from tasks abandoned by a cancelled
    query are recognized and dropped whenever they eventually surface.
    """

    def __init__(self, size: int, restart_budget: int = None) -> None:
        self.size = max(1, int(size))
        self.restart_budget = (
            restart_budget if restart_budget is not None
            else max(4, 2 * self.size)
        )
        self._mp = _mp_context()
        self.spill_root = tempfile.mkdtemp(prefix="fudj-workers-")
        self.healthy = True
        self.restarts_total = 0
        self.heartbeat_misses_total = 0
        self.speculations_total = 0
        self.degradations_total = 0
        self.tasks_ok_total = 0
        self.tasks_failed_total = 0
        self._task_seq = count(1)
        self._closed = False
        self._slots = [self._spawn(i) for i in range(self.size)]

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, index: int) -> _Slot:
        spill_dir = os.path.join(self.spill_root, f"w{index}")
        os.makedirs(spill_dir, exist_ok=True)
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        proc = self._mp.Process(
            target=_worker_main,
            args=(parent_conn, child_conn, index, spill_dir),
            name=f"fudj-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Slot(index, proc, parent_conn, spill_dir)

    def _respawn(self, old: _Slot) -> _Slot:
        slot = self._spawn(old.index)
        slot.restarts = old.restarts + 1
        slot.tasks_ok = old.tasks_ok
        slot.tasks_failed = old.tasks_failed
        slot.heartbeats = old.heartbeats
        return slot

    @staticmethod
    def _retire(slot: _Slot) -> _Slot:
        slot.proc = None
        slot.busy = False
        slot.task_id = None
        return slot

    def shutdown(self) -> None:
        """Stop every worker (graceful, then kill) and drop the spill
        tree.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.healthy = False
        for slot in self._slots:
            if slot.proc is None:
                continue
            try:
                slot.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for slot in self._slots:
            if slot.proc is None:
                continue
            slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=1.0)
            try:
                slot.conn.close()
            except OSError:
                pass
            slot.proc = None
        shutil.rmtree(self.spill_root, ignore_errors=True)

    # -- between-query maintenance -------------------------------------------

    def tick(self) -> None:
        """Cheap upkeep between queries (exchanges call it through the
        context): recycle workers that died while idle and drain stale
        heartbeats/results left over from abandoned tasks."""
        if self._closed:
            return
        for slot in list(self._slots):
            if slot.proc is None:
                continue
            if not slot.proc.is_alive():
                try:
                    slot.conn.close()
                except OSError:
                    pass
                if self.healthy:
                    self.restarts_total += 1
                    self._slots[slot.index] = self._respawn(slot)
                else:
                    self._retire(slot)
                continue
            try:
                while slot.conn.poll():
                    msg = slot.conn.recv()
                    if msg[0] == "hb":
                        slot.heartbeats += 1
                    else:
                        slot.busy = False
                        slot.task_id = None
            except (EOFError, OSError):
                pass

    def cancel_active(self) -> None:
        """Abandon whatever the workers are doing (query timeout or
        admission error).  Workers cannot be interrupted mid-kernel, but
        their task ids are dead to the supervisor: late results are
        dropped by the next drain and the slots become reusable."""
        self.tick()

    # -- the event loop ------------------------------------------------------

    def run_tasks(self, tasks: list, check_cancel=None,
                  extra_restarts: int = 0, detect_factor: float = 2.0) -> list:
        """Run a batch of tasks, supervising leases end to end.

        ``tasks`` is a list of ``{"header_fn", "body", "kills"}`` dicts;
        ``header_fn(attempt, speculative)`` builds the per-dispatch header
        (planned kills/stalls for ``FaultPlan(real=True)``).  Returns one
        outcome dict per task, in order.  ``extra_restarts`` widens the
        respawn budget by the number of *planned* kills so injected
        faults never exhaust it.  Raises :class:`WorkerPoolError` (and
        marks the pool unhealthy) when the budget runs out.
        """
        if self._closed or not self.healthy:
            raise WorkerPoolError("worker pool is not healthy")
        states = {}
        order = []
        for task in tasks:
            uid = next(self._task_seq)
            order.append(uid)
            states[uid] = _TaskState(
                uid, task["header_fn"], task["body"], task.get("kills", 0)
            )
        pending = deque(order)
        completed = {}
        durations = []
        budget = self.restart_budget + extra_restarts
        spent = 0

        def live_slots():
            return [s for s in self._slots
                    if s.proc is not None and s.proc.is_alive()]

        def finish(slot, uid, status, payload, pid, now):
            st = states[uid]
            st.done = True
            if status == "ok":
                slot.tasks_ok += 1
                self.tasks_ok_total += 1
            else:
                slot.tasks_failed += 1
                self.tasks_failed_total += 1
            wall = now - (st.first_dispatch or now)
            durations.append(wall)
            completed[uid] = {
                "status": status,
                "payload": payload,
                "deaths": st.deaths,
                "hb_misses": st.hb_misses,
                "attempts": st.attempt + 1,
                "wall": wall,
                "pid": pid,
                "speculated": st.speculated,
            }

        def handle_message(slot, msg, now):
            if msg[0] == "hb":
                slot.last_heartbeat = now
                slot.heartbeats += 1
                return
            status, uid, payload, pid = msg
            if slot.task_id == uid:
                slot.busy = False
                slot.task_id = None
            st = states.get(uid)
            if st is None:
                return  # stale result from an abandoned query — drop
            st.running.discard(slot.index)
            if uid not in completed:
                finish(slot, uid, status, payload, pid, now)

        def pump(slot, now):
            while True:
                try:
                    if not slot.conn.poll():
                        return
                    msg = slot.conn.recv()
                except (EOFError, OSError):
                    return
                handle_message(slot, msg, now)

        def dispatch(slot, st, speculative, now):
            header = st.header_fn(st.attempt, speculative)
            try:
                slot.conn.send(("task", st.uid, header))
                slot.conn.send_bytes(st.body)
            except (BrokenPipeError, OSError):
                return False  # died since the liveness check; reaped next round
            slot.busy = True
            slot.task_id = st.uid
            slot.dispatched_at = now
            slot.last_heartbeat = now
            slot.hb_flagged = False
            st.running.add(slot.index)
            if st.first_dispatch is None:
                st.first_dispatch = now
            return True

        while len(completed) < len(states):
            if check_cancel is not None:
                check_cancel()
            now = time.monotonic()
            # 1. Reap dead workers: requeue their leases, respawn within
            #    the budget, retire the seat past it.
            for i, slot in enumerate(self._slots):
                if slot.proc is None or slot.proc.is_alive():
                    continue
                pump(slot, now)  # a result may have landed just before death
                uid = slot.task_id
                if uid is not None:
                    st = states.get(uid)
                    if st is not None:
                        st.running.discard(slot.index)
                        if not st.done:
                            st.deaths += 1
                            if not st.running:
                                st.attempt += 1
                                pending.append(uid)
                slot.busy = False
                slot.task_id = None
                try:
                    slot.conn.close()
                except OSError:
                    pass
                slot.proc.join(timeout=0.1)
                if spent < budget:
                    spent += 1
                    self.restarts_total += 1
                    self._slots[i] = self._respawn(slot)
                else:
                    self._slots[i] = self._retire(slot)
            # Degrade only when every seat is *retired* (its respawn was
            # refused by the budget).  A seat that is merely dead right
            # now — a worker can die between the reap pass and this
            # check — is respawned by the next reap within budget.
            if all(slot.proc is None for slot in self._slots):
                self.healthy = False
                self.degradations_total += 1
                raise WorkerPoolError(
                    "no live worker remains and the restart budget "
                    f"({budget}) is exhausted"
                )
            # 2. Dispatch pending leases to idle live workers.
            idle = [s for s in live_slots() if not s.busy]
            while pending and idle:
                uid = pending.popleft()
                st = states[uid]
                if st.done or st.running:
                    continue
                if not dispatch(idle.pop(), st, False, now):
                    pending.appendleft(uid)
                    break
            # 3. Speculation: one extra copy for a task overrunning the
            #    detect factor (vs the median finished task) or missing
            #    heartbeats — but only after its planned kills played out,
            #    so injected faults stay deterministic.
            median = sorted(durations)[len(durations) // 2] if durations else None
            for uid, st in states.items():
                if st.done or st.speculated or len(st.running) != 1:
                    continue
                if st.attempt < st.kills:
                    continue
                slot = self._slots[next(iter(st.running))]
                if not slot.busy or slot.task_id != uid:
                    continue
                overdue = (
                    median is not None
                    and now - slot.dispatched_at
                    > max(SPECULATION_FLOOR, detect_factor * median)
                )
                if not (overdue or slot.hb_flagged):
                    continue
                idle = [s for s in live_slots() if not s.busy]
                if not idle:
                    break
                if dispatch(idle[0], st, True, now):
                    st.speculated = True
                    self.speculations_total += 1
            # 4. Wait on busy pipes, drain whatever arrived.
            watch = [s for s in live_slots() if s.busy]
            if watch:
                try:
                    ready = mp_connection.wait(
                        [s.conn for s in watch], timeout=WAIT_TIMEOUT
                    )
                except OSError:
                    ready = []
                by_conn = {s.conn: s for s in watch}
                now = time.monotonic()
                for conn in ready:
                    pump(by_conn[conn], now)
            elif len(completed) < len(states):
                time.sleep(0.002)
            # 5. Heartbeat-miss detection (once per lease).
            now = time.monotonic()
            for slot in self._slots:
                if (not slot.busy or slot.hb_flagged or slot.proc is None
                        or not slot.proc.is_alive()):
                    continue
                silence = now - max(slot.last_heartbeat, slot.dispatched_at)
                if silence > HEARTBEAT_MISS_LIMIT * HEARTBEAT_INTERVAL:
                    slot.hb_flagged = True
                    st = states.get(slot.task_id)
                    if st is not None and not st.done:
                        st.hb_misses += 1
                        self.heartbeat_misses_total += 1
        return [completed[uid] for uid in order]

    # -- introspection -------------------------------------------------------

    def snapshot_rows(self) -> list:
        """One dict per worker seat — the ``sys.workers`` table rows."""
        rows = []
        for slot in self._slots:
            alive = slot.proc is not None and slot.proc.is_alive()
            rows.append({
                "slot": slot.index,
                "pid": slot.proc.pid if slot.proc is not None else -1,
                "alive": alive,
                "busy": bool(slot.busy and alive),
                "tasks_ok": slot.tasks_ok,
                "tasks_failed": slot.tasks_failed,
                "restarts": slot.restarts,
                "heartbeats": slot.heartbeats,
                "spill_dir": slot.spill_dir,
            })
        return rows

    def counters(self) -> dict:
        """Pool-lifetime counters (telemetry folds deltas of these)."""
        return {
            "restarts": self.restarts_total,
            "heartbeat_misses": self.heartbeat_misses_total,
            "speculations": self.speculations_total,
            "degradations": self.degradations_total,
            "tasks_ok": self.tasks_ok_total,
            "tasks_failed": self.tasks_failed_total,
        }

    def describe(self) -> str:
        alive = sum(
            1 for s in self._slots
            if s.proc is not None and s.proc.is_alive()
        )
        return (
            f"{self.size} workers ({alive} alive), "
            f"{self.restarts_total} restarts, "
            f"{self.speculations_total} speculations, "
            f"healthy={'yes' if self.healthy else 'no'}"
        )

    def __repr__(self) -> str:
        return f"WorkerPool({self.describe()})"


def _mp_context():
    """Fork when the platform has it (workers inherit the loaded join
    libraries for free); the default start method otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


# -- coordinator-side replay --------------------------------------------------


def _replay_attempt(ctx, stage, worker: int, export: dict,
                    join_name: str) -> float:
    """Replay one attempt's worth of a task ledger against the real
    metrics/tracer/breaker/accountant, in the serial order.  Returns the
    units this attempt charged (the serial retry loop's ``units``)."""
    units_before = stage.worker_units.get(worker, 0.0)
    for units in export["charges"]:
        stage.charge(worker, units)
    tracer = ctx.tracer
    if tracer.enabled:
        for name in export["child_order"]:
            tracer.attribute(name, 0.0)
        for name, calls, errors, wall in export["calls"]:
            tracer.record_calls(name, calls, wall, errors)
        for name, units, calls in export["attrs"]:
            tracer.attribute(name, units, calls=calls)
    if ctx.breaker is not None:
        for _ in range(export["breaker_failures"]):
            ctx.breaker.record_failure(join_name)
    if export["breaker_ok"]:
        ctx.note_breaker_success(join_name)
    # Spill restores recompute keys through the translator; the serial
    # retry loop re-runs them on every attempt (conversion counts are
    # not rolled back), so the replay adds them per attempt too.
    ctx.translator.unbox_count += export["key_conversions"]
    ctx.resources.absorb(stage.name, worker, export["resources"])
    # Worker-side deterministic events (spills) ride the ledger: re-emit
    # them here with the real stage name and worker index, once per
    # replayed attempt — exactly when the serial backend's re-run of the
    # task function would emit them.
    for kind, detail in export.get("events", ()):
        ctx.events.emit(kind, stage=stage.name, worker=worker, **detail)
    return stage.worker_units.get(worker, 0.0) - units_before


def _apply_counters(ctx, export: dict, join_name: str) -> None:
    """Result-visible counters land once (the serial retry loop rolls
    them back on every crashed attempt, so its net effect is one
    attempt's worth too)."""
    metrics = ctx.metrics
    metrics.comparisons += export["comparisons"]
    for phase, error, detail in export["quarantine_log"]:
        if len(metrics.quarantine_log) < metrics.MAX_QUARANTINE_REPORT:
            metrics.quarantine_log.append({
                "phase": phase,
                "join": join_name,
                "error": error,
                "record": detail,
            })
    metrics.records_quarantined += export["quarantined"]


def _apply_task(ctx, stage, worker: int, export: dict, join_name: str,
                plan, key: str, input_bytes: float) -> None:
    """The coordinator's mirror of :meth:`ExecutionContext.run_task`:
    same retry loop, same charges, same straggler arithmetic — driven by
    the same fault-plan rolls — with the worker's ledger standing in for
    re-running the task function."""
    model = ctx.cost_model
    metrics = ctx.metrics
    if plan is None:
        ctx.check_timeout()
        _replay_attempt(ctx, stage, worker, export, join_name)
    else:
        attempt = 0
        while True:
            ctx.check_timeout()
            units = _replay_attempt(ctx, stage, worker, export, join_name)
            if not plan.crashes(key, worker, attempt):
                break
            attempt += 1
            if attempt > plan.max_task_retries:
                raise TaskFailedError(stage.name, worker, attempt)
            backoff = plan.backoff_seconds(attempt)
            restore = model.checkpoint_restore_units(input_bytes)
            penalty = backoff * model.core_ops_per_second + restore
            stage.charge(worker, penalty)
            metrics.tasks_retried += 1
            metrics.recovery_seconds += model.cpu_seconds(units + penalty)
            ctx.events.emit("fault.retry", stage=stage.name, worker=worker,
                            attempt=attempt, backoff_seconds=backoff)
        if plan.straggles(key, worker) and units > 0.0:
            crawl = units * (plan.straggler_slowdown - 1.0)
            speculate = (units * plan.straggler_detect_factor
                         + model.checkpoint_restore_units(input_bytes))
            extra = min(crawl, speculate)
            stage.charge(worker, extra)
            metrics.stragglers_detected += 1
            metrics.recovery_seconds += model.cpu_seconds(extra)
            ctx.events.emit("fault.straggler", stage=stage.name,
                            worker=worker, extra_units=round(extra, 6))
    _apply_counters(ctx, export, join_name)


def _fault_schedule(plan, key: str, worker: int, real: bool) -> dict:
    """Physical acting script for one task under ``FaultPlan(real=True)``:
    how many times the worker actually dies (capped by the retry budget —
    the *accounting* still aborts doomed tasks from the rolls alone) and
    whether it genuinely stalls."""
    if not real:
        return {"kills": 0, "sleep": 0.0}
    kills = 0
    while kills < plan.max_task_retries and plan.crashes(key, worker, kills):
        kills += 1
    sleep = REAL_STRAGGLER_SLEEP if plan.straggles(key, worker) else 0.0
    return {"kills": kills, "sleep": sleep}


def _make_header_fn(sched: dict):
    def header_fn(attempt: int, speculative: bool) -> dict:
        return {
            "kill": (not speculative) and attempt < sched["kills"],
            "sleep": (
                sched["sleep"]
                if (not speculative and attempt >= sched["kills"])
                else 0.0
            ),
        }
    return header_fn


def run_combine(pool: WorkerPool, op, ctx, stage, kind: str,
                left_parts: list, right_parts: list, pplan, out_schema,
                v_cost: float):
    """Run one COMBINE stage's per-partition tasks on the pool.

    Returns the per-worker row lists (the serial loop's output), or None
    when the stage cannot or should not ship — unpicklable state, a
    serde/transport failure, a non-callback worker error, or an exhausted
    pool — in which case the caller falls through to the serial loop,
    which reproduces any genuine error deterministically.

    Raises exactly what the serial loop would for errors with serial
    parity: :class:`FudjCallbackError` (fail policy),
    :class:`TaskFailedError` (doomed fault rolls), and
    :class:`QueryTimeoutError` — after replaying the partial ledger so
    charges match the serial abort state.
    """
    model = ctx.cost_model
    metrics = ctx.metrics
    plan = ctx.fault_plan
    plan_active = (
        plan is not None and plan.any_faults() and plan.active_for(stage.name)
    )
    key = stage_key(stage.name)
    real = bool(plan_active and plan.real)
    num = ctx.num_partitions
    join_name = op.join.name

    try:
        spec = {
            "kind": kind,
            "join": op.join,
            "join_name": join_name,
            "dedup": op.dedup,
            "pplan": pplan,
            "out_schema": out_schema,
            "v_cost": v_cost,
            "tag": op.dedup.requires_shuffle,
            "policy": ctx.on_error,
            "traced": ctx.tracer.enabled,
            "num": num,
            "enforce": ctx.resources.enforce,
            "translate": op.translate,
            "model": model,
        }
        # Every shipped record needs its spill-stable identity *before*
        # packing: pair dedup and the worker spill codec both key on rid.
        for parts in (left_parts, right_parts):
            for entries in parts:
                for entry in entries:
                    _rid_of(entry[2])
        packed_broadcast = (
            _pack_entries(right_parts[0]) if kind == "theta" else None
        )
        tasks = []
        schedules = []
        input_bytes_list = []
        for worker in range(num):
            left_entries = left_parts[worker]
            right_entries = right_parts[worker]
            packed_right = (
                packed_broadcast if kind == "theta"
                else _pack_entries(right_entries)
            )
            body = pickle.dumps(
                {
                    "spec": dict(spec, worker=worker),
                    "left": _pack_entries(left_entries),
                    "right": packed_right,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            sched = (
                _fault_schedule(plan, key, worker, real)
                if plan_active else {"kills": 0, "sleep": 0.0}
            )
            schedules.append(sched)
            tasks.append({
                "header_fn": _make_header_fn(sched),
                "body": body,
                "kills": sched["kills"],
            })
            input_bytes_list.append(
                op._restore_bytes(ctx, left_entries, right_entries)
            )
    except Exception:
        return None  # unshippable state — serial path handles it

    extra = sum(t["kills"] for t in tasks)
    detect = plan.straggler_detect_factor if plan_active else 2.0
    for worker in range(num):
        ctx.events.emit("worker.lease", stage=stage.name, worker=worker)
    try:
        outcomes = pool.run_tasks(
            tasks, check_cancel=ctx.check_cancel,
            extra_restarts=extra, detect_factor=detect,
        )
    except WorkerPoolError:
        ctx.events.emit("worker.degrade", stage=stage.name,
                        reason="pool_exhausted")
        return None  # pool exhausted — degrade to serial

    # Decode everything first: nothing is applied to shared state until
    # the whole batch is known to be representable, so a late transport
    # failure cannot leave half-applied charges behind.
    tagged = spec["tag"]
    decoded = []
    for outcome in outcomes:
        payload = outcome["payload"]
        if outcome["status"] == "ok":
            try:
                rows = _unpack_rows(payload["rows"], out_schema, tagged)
            except Exception:
                return None
            decoded.append(("ok", rows, payload["site"]))
        else:
            desc = payload["error"]
            if desc.get("kind") != "callback" or payload.get("partial") is None:
                return None  # generic failure — serial replay reproduces it
            decoded.append(("err", desc, payload["partial"]))

    applied = []

    def flush_records_out():
        # On an abort mid-batch the serial loop has already credited
        # records_out for the workers it finished; mirror that.
        for finished_rows in applied:
            stage.records_out += len(finished_rows)

    for worker, item in enumerate(decoded):
        outcome = outcomes[worker]
        if outcome["deaths"]:
            ctx.events.emit("worker.crash", stage=stage.name, worker=worker,
                            deaths=outcome["deaths"])
            ctx.events.emit("worker.redispatch", stage=stage.name,
                            worker=worker, attempts=outcome["attempts"])
        if outcome["hb_misses"]:
            ctx.events.emit("worker.heartbeat_miss", stage=stage.name,
                            worker=worker, misses=outcome["hb_misses"])
        if outcome["speculated"]:
            ctx.events.emit("worker.speculate", stage=stage.name,
                            worker=worker)
        if ctx.tracer.enabled:
            ctx.tracer.worker_span(worker, {
                "pid": outcome["pid"],
                "wall_ms": outcome["wall"] * 1000.0,
                "attempts": outcome["attempts"],
                "deaths": outcome["deaths"],
                "speculated": outcome["speculated"],
            })
        if item[0] == "err":
            flush_records_out()
            ctx.check_timeout()
            # The failing attempt charged partial work before raising;
            # replay it once (the serial loop aborts without retrying on
            # an exception), then re-raise with an identical message.
            _replay_attempt(ctx, stage, worker, item[2], join_name)
            _apply_counters(ctx, item[2], join_name)
            raise _rebuild_error(item[1])
        rows = item[1]
        try:
            _apply_task(
                ctx, stage, worker, item[2], join_name,
                plan if plan_active else None, key, input_bytes_list[worker],
            )
        except BaseException:
            flush_records_out()
            raise
        # Physical recovery accounting: deaths beyond the planned kills
        # (a genuine SIGKILL, an OOM kill) are charged like injected
        # crashes — backoff plus a checkpoint restore of the task input.
        deaths = outcome["deaths"]
        unplanned = deaths - (schedules[worker]["kills"] if real else 0)
        if unplanned > 0:
            backoff_plan = plan if plan is not None else _DEFAULT_PLAN
            for i in range(unplanned):
                penalty = (
                    backoff_plan.backoff_seconds(i + 1)
                    * model.core_ops_per_second
                    + model.checkpoint_restore_units(input_bytes_list[worker])
                )
                stage.charge(worker, penalty)
                metrics.tasks_retried += 1
                metrics.recovery_seconds += model.cpu_seconds(penalty)
        metrics.worker_restarts += deaths
        metrics.heartbeat_misses += outcome["hb_misses"]
        applied.append(rows)
    return applied
