"""The FUDJ composite physical operator — the Figure 8 plan.

The optimizer plugs this operator in whenever a join predicate is a
registered FUDJ.  It drives the user's
:class:`~repro.core.flexible_join.FlexibleJoin` through all three phases
on top of the engine primitives:

1. SUMMARIZE — per-worker ``local_aggregate`` over the join keys, a
   coordinator ``global_aggregate`` merge, then ``divide`` to produce the
   PPlan, which is broadcast.
2. PARTITION — ``assign`` unnests each record to ``(bucket_id, record)``.
3. COMBINE — single-joins (default ``match``) hash-exchange both sides on
   bucket id and run a per-bucket hash join; multi-joins fall back to the
   theta plan (spread left, broadcast right, ``match`` per bucket pair).
   ``verify`` then checks each candidate pair, and the dedup strategy
   suppresses duplicates (locally for avoidance, with one more exchange
   for elimination).

Every FUDJ callback goes through the translation layer (Figure 7) so
engine values are unboxed to plain Python values first; built-in operator
baselines bypass the layer (``translate=False``), which is exactly the
overhead gap measured in paper §VII-B.

Fault tolerance: every per-worker phase body runs as a *task* through
:meth:`ExecutionContext.run_task`, so an active fault plan can crash or
straggle it and the engine replays just that task from the exchange
checkpoints (lineage-style recovery).  Per-record callbacks
(``local_aggregate``, ``assign``, ``verify``, ``match``) additionally
honor the context's degraded-mode policy: under ``skip``/``quarantine``
a poison record is dropped (and reported) instead of aborting the query.
Phases with no single culprit record (``global_aggregate``, ``divide``,
``local_join``, ``dedup``) always fail hard.
"""

from __future__ import annotations

import time
from collections import defaultdict

from repro.core.dedup import DedupStrategy, strategy_for
from repro.core.flexible_join import FlexibleJoin, JoinSide
from repro.engine.context import ExecutionContext
from repro.engine.exchange import hash_exchange
from repro.engine.faults import apply_exchange_faults, charge_checkpoint
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.engine.resources import EntrySpillCodec
from repro.errors import ExecutionError, FudjCallbackError

__all__ = ["FudjCallbackError", "FudjJoin"]


def _guard(ctx, join, phase: str, fn, *args):
    """Invoke a user callback, wrapping any failure with phase context.

    Used for the phases that must fail hard regardless of the error
    policy — a broken ``divide`` or ``global_aggregate`` leaves no plan
    to continue with.  With tracing on, the call lands in the aggregated
    callback span of the currently open span.  A shared circuit breaker
    counts every failure (hard-fail phases included); successes only
    reset the streak when the whole query completes.
    """
    tracer = ctx.tracer
    started = time.perf_counter() if tracer.enabled else 0.0
    try:
        result = fn(*args)
    except FudjCallbackError:
        if tracer.enabled:
            tracer.record_call(phase, time.perf_counter() - started, ok=False)
        if ctx.breaker is not None:
            ctx.breaker.record_failure(join.name)
        raise
    except Exception as exc:
        if tracer.enabled:
            tracer.record_call(phase, time.perf_counter() - started, ok=False)
        if ctx.breaker is not None:
            ctx.breaker.record_failure(join.name)
        raise FudjCallbackError(join.name, phase, exc) from exc
    if tracer.enabled:
        tracer.record_call(phase, time.perf_counter() - started)
    ctx.note_breaker_success(join.name)
    return result


def _pair_identity(record) -> int:
    """Identity of one join-input record for pair dedup.

    Records that went through a spill round-trip carry a ``rid`` (a
    process-unique negative integer, shared by the original and every
    replayed clone); in-memory records fall back to ``id()``, which is
    always non-negative — the two namespaces cannot collide.
    """
    rid = record.rid
    return rid if rid is not None else id(record)


class FudjJoin(PhysicalOperator):
    """Physical FUDJ join of two inputs.

    Args:
        left, right: child operators.
        join: the FlexibleJoin instance (parameters already bound).
        left_key, right_key: functions Record -> boxed join key.
        dedup: optional dedup strategy override (Fig 12 experiments).
        translate: route keys through the FUDJ translation layer.  The
            built-in baselines set this False — their operators read
            engine values natively.
        self_join: summarize only one side and reuse the summary
            (the §VI-C self-join optimization); requires symmetric
            summaries.
        verify_cost: work units per ``verify`` call; defaults to the cost
            model's ``expensive_predicate`` since verify evaluates the
            same predicate the on-top NLJ would.
    """

    label = "fudj-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 join: FlexibleJoin, left_key, right_key,
                 dedup: DedupStrategy = None, translate: bool = True,
                 self_join: bool = False, verify_cost: float = None,
                 summarize_sample: float = 1.0) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.join = join
        self.left_key = left_key
        self.right_key = right_key
        self.dedup = strategy_for(join, dedup)
        self.translate = translate
        self.self_join = self_join and join.symmetric_summaries()
        self.verify_cost = verify_cost
        if not 0.0 < summarize_sample <= 1.0:
            raise ExecutionError(
                f"summarize sample fraction must be in (0, 1], got "
                f"{summarize_sample}"
            )
        #: SUMMARIZE over a deterministic sample (every k-th record per
        #: worker).  Sound for any FUDJ whose assign clamps keys outside
        #: the summarized domain (all shipped joins do): summaries steer
        #: partitioning quality, verify decides membership.
        self.summarize_sample = summarize_sample

    def describe(self) -> str:
        kind = "single-join" if self.join.uses_default_match() else "multi-join"
        return (
            f"FUDJ JOIN [{self.join.name}] ({kind}, dedup={self.dedup.name}, "
            f"translate={self.translate})"
        )

    def children(self) -> list:
        return [self.left, self.right]

    # -- key extraction through the translation layer ---------------------------

    def _external_key(self, record, key_fn, ctx: ExecutionContext):
        boxed = key_fn(record)
        if self.translate:
            return ctx.translator.to_external(boxed)
        from repro.serde.values import unbox

        return unbox(boxed)

    def _key_cost(self, ctx: ExecutionContext) -> float:
        return ctx.cost_model.translation if self.translate else 0.0

    # -- degraded-mode callback wrappers -----------------------------------------

    def _safe_verify(self, ctx: ExecutionContext, key1, key2, pplan) -> bool:
        """``verify`` under the error policy: a raising pair is treated
        as a non-match (and quarantined) instead of aborting."""
        ok, matched = ctx.guard_record(
            self.join.name, "verify", self.join.verify, key1, key2, pplan,
            detail=(key1, key2),
        )
        return bool(matched) if ok else False

    def _safe_match(self, ctx: ExecutionContext, bucket1, bucket2) -> bool:
        ok, matched = ctx.guard_record(
            self.join.name, "match", self.join.match, bucket1, bucket2,
            detail=(bucket1, bucket2),
        )
        return bool(matched) if ok else False

    # -- phase 1: SUMMARIZE ------------------------------------------------------

    def _summarize_side(self, result: OperatorResult, key_fn, side: JoinSide,
                        ctx: ExecutionContext):
        stage = ctx.metrics.stage(f"{self.stage_name}/summarize-{side.value}")
        with ctx.tracer.span(f"summarize-{side.value}", kind="stage",
                             stage=stage):
            return self._summarize_side_inner(result, key_fn, side, ctx, stage)

    def _summarize_side_inner(self, result, key_fn, side, ctx, stage):
        model = ctx.cost_model
        key_cost = self._key_cost(ctx)
        step = max(1, round(1.0 / self.summarize_sample))
        join = self.join
        partials = []
        for worker, partition in enumerate(result.partitions):
            sampled = partition if step == 1 else partition[::step]

            def task(worker=worker, sampled=sampled):
                summary = None
                for record in sampled:
                    key = self._external_key(record, key_fn, ctx)
                    ok, folded = ctx.guard_record(
                        join.name, "local_aggregate",
                        join.local_aggregate, key, summary, side,
                        detail=record,
                    )
                    if ok:
                        summary = folded
                stage.charge(
                    worker, len(sampled) * (model.record_touch + key_cost)
                )
                return summary

            summary = ctx.run_task(stage, worker, task)
            if summary is not None:
                partials.append(summary)
        # Global merge at the coordinator; partial summaries are tiny, so
        # the network charge is one small constant per worker.
        stage.network_bytes += 64 * max(0, len(partials) - 1)
        merged = None
        for partial in partials:
            if merged is None:
                merged = partial
            else:
                merged = _guard(ctx, join, "global_aggregate",
                                join.global_aggregate, merged, partial, side)
            stage.charge(0, model.record_touch)
        stage.records_in = len(result)
        return merged

    # -- phase 2: PARTITION ------------------------------------------------------

    def _assign_side(self, result: OperatorResult, key_fn, side: JoinSide,
                     pplan, ctx: ExecutionContext) -> list:
        """Unnest each record into ``(bucket_id, external_key, record)``.

        With tracing on, the per-bucket record histogram is collected
        here — the raw material for the skew diagnostics (replication
        factor, heaviest buckets).
        """
        stage = ctx.metrics.stage(f"{self.stage_name}/assign-{side.value}")
        with ctx.tracer.span(f"assign-{side.value}", kind="stage",
                             stage=stage):
            out = self._assign_side_inner(result, key_fn, side, pplan, ctx,
                                          stage)
        if ctx.tracer.enabled:
            histogram = {}
            for rows in out:
                for bucket_id, _, _ in rows:
                    histogram[bucket_id] = histogram.get(bucket_id, 0) + 1
            ctx.tracer.note_skew(
                f"{self.stage_name}/assign-{side.value}",
                stage.records_in, histogram,
            )
        return out

    def _assign_side_inner(self, result, key_fn, side, pplan, ctx,
                           stage) -> list:
        model = ctx.cost_model
        key_cost = self._key_cost(ctx)
        join = self.join
        out = []

        def checked_assign(key):
            bucket_ids = join.assign_list(key, pplan, side)
            for bucket_id in bucket_ids:
                if not isinstance(bucket_id, int):
                    raise TypeError(
                        f"bucket ids must be ints, got "
                        f"{type(bucket_id).__name__}: {bucket_id!r}"
                    )
            return bucket_ids

        for worker, partition in enumerate(result.partitions):

            def task(worker=worker, partition=partition):
                rows = []
                assignments = 0
                for record in partition:
                    key = self._external_key(record, key_fn, ctx)
                    ok, bucket_ids = ctx.guard_record(
                        join.name, "assign", checked_assign, key,
                        detail=record,
                    )
                    if not ok:
                        continue
                    assignments += len(bucket_ids)
                    for bucket_id in bucket_ids:
                        rows.append((bucket_id, key, record))
                stage.charge(
                    worker,
                    len(partition) * (model.record_touch + key_cost)
                    + assignments * model.hash_op,
                )
                return rows

            rows = ctx.run_task(stage, worker, task)
            stage.records_in += len(partition)
            stage.records_out += len(rows)
            out.append(rows)
        return out

    # -- phase 3: COMBINE ---------------------------------------------------------

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        if ctx.breaker is not None:
            # Fail fast before any phase runs when the library is tripped.
            ctx.breaker.check(self.join.name)
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        join = self.join
        tracer = ctx.tracer

        # SUMMARIZE (+ the self-join summarize-once optimization).
        with tracer.span("SUMMARIZE", kind="phase"):
            summary1 = self._summarize_side(
                left, self.left_key, JoinSide.LEFT, ctx
            )
            if self.self_join:
                summary2 = summary1
            else:
                summary2 = self._summarize_side(
                    right, self.right_key, JoinSide.RIGHT, ctx
                )
            pplan = _guard(ctx, join, "divide", join.divide, summary1, summary2)
            # PPlan broadcast: one small object to every worker.
            ctx.metrics.stage(
                f"{self.stage_name}/pplan-broadcast"
            ).network_bytes += 256 * max(0, ctx.num_partitions - 1)

        # PARTITION.
        with tracer.span("PARTITION", kind="phase"):
            left_assigned = self._assign_side(
                left, self.left_key, JoinSide.LEFT, pplan, ctx
            )
            right_assigned = self._assign_side(
                right, self.right_key, JoinSide.RIGHT, pplan, ctx
            )

        out_schema = left.schema.concat(right.schema)
        with tracer.span("COMBINE", kind="phase"):
            if join.uses_default_match():
                partitions = self._combine_single_join(
                    left_assigned, right_assigned, pplan, out_schema, ctx
                )
            elif join.supports_partitioned_matching():
                partitions = self._combine_partitioned_theta(
                    left_assigned, right_assigned, pplan, out_schema, ctx
                )
            else:
                partitions = self._combine_multi_join(
                    left_assigned, right_assigned, pplan, out_schema, ctx
                )

            if self.dedup.requires_shuffle:
                partitions = self._eliminate_duplicates(partitions, ctx)

        result = OperatorResult(partitions, out_schema)
        ctx.metrics.output_records = len(result)
        return result

    def _restore_bytes(self, ctx: ExecutionContext, *entry_lists) -> float:
        """Checkpoint-restore size of a combine task's input, only
        computed when a fault plan could actually charge it."""
        if ctx.fault_plan is None or not ctx.fault_plan.any_faults():
            return 0.0
        return float(sum(_entry_bytes(entries, ctx) for entries in entry_lists))

    def _pooled_combine(self, ctx: ExecutionContext, stage, kind: str,
                        left_parts, right_parts, pplan, out_schema, v_cost):
        """Ship this combine stage to the process pool, if one is attached.

        Returns the per-worker row lists, or None — no pool, an unhealthy
        pool, or a stage the pool cannot ship (unpicklable join state,
        an exhausted restart budget, a non-callback worker failure) — in
        which case the caller falls through to the serial loop, which
        reproduces any genuine error deterministically.
        """
        pool = ctx.active_pool()
        if pool is None:
            return None
        from repro.engine import workers as _workers
        return _workers.run_combine(
            pool, self, ctx, stage, kind, left_parts, right_parts,
            pplan, out_schema, v_cost,
        )

    def _combine_single_join(self, left_assigned, right_assigned, pplan,
                             out_schema, ctx: ExecutionContext) -> list:
        """Hash-partition both sides on bucket id; join equal buckets."""
        left_parts = _exchange_assigned(
            left_assigned, ctx, f"{self.stage_name}/xleft"
        )
        right_parts = _exchange_assigned(
            right_assigned, ctx, f"{self.stage_name}/xright"
        )
        stage = ctx.metrics.stage(f"{self.stage_name}/combine")
        model = ctx.cost_model
        v_cost = (
            self.verify_cost if self.verify_cost is not None
            else model.expensive_predicate
        )
        out = []
        with ctx.tracer.span("combine", kind="stage", stage=stage):
            pooled = self._pooled_combine(
                ctx, stage, "single", left_parts, right_parts, pplan,
                out_schema, v_cost,
            )
            if pooled is not None:
                for rows in pooled:
                    stage.records_out += len(rows)
                    out.append(rows)
                return out
            for worker in range(ctx.num_partitions):
                left_entries = left_parts[worker]
                right_entries = right_parts[worker]

                def task(worker=worker, left_entries=left_entries,
                         right_entries=right_entries):
                    # COMBINE build state goes through the accountant: it
                    # prices the spill exactly as before and, under a
                    # memory budget, spills/replays the overflow for real.
                    build = ctx.admit(
                        stage, worker, left_entries,
                        EntrySpillCodec(
                            lambda r: self._external_key(r, self.left_key, ctx)
                        ),
                    )
                    table = defaultdict(list)
                    for bucket_id, key, record in build:
                        table[bucket_id].append((key, record))
                    stage.charge(worker, len(build) * model.hash_op)
                    rows = []
                    verify_units = 0.0
                    dedup_checks = 0
                    tag = self._tag_pair if self.dedup.requires_shuffle else None
                    if self.join.has_local_join():
                        rows, dedup_checks, verify_units = self._join_buckets_local(
                            table, right_entries, pplan, out_schema, ctx, tag
                        )
                    else:
                        # Both verify and dedup are pure predicates, so the
                        # engine runs the cheap duplicate check first and pays
                        # the expensive verification only for pairs this
                        # worker owns.
                        for bucket_id, key2, record2 in right_entries:
                            for key1, record1 in table.get(bucket_id, ()):
                                dedup_checks += 1
                                if not self.dedup.keep_local(
                                    self.join, bucket_id, key1, bucket_id, key2,
                                    pplan
                                ):
                                    continue
                                matched = self._safe_verify(ctx, key1, key2, pplan)
                                verify_units += model.predicate_units(v_cost, matched)
                                if not matched:
                                    continue
                                joined = record1.concat(record2, out_schema)
                                rows.append(
                                    tag(record1, record2, joined) if tag else joined
                                )
                    stage.charge(
                        worker,
                        len(right_entries) * model.hash_op
                        + verify_units
                        + dedup_checks * model.comparison,
                    )
                    ctx.metrics.comparisons += dedup_checks
                    if ctx.tracer.enabled:
                        ctx.tracer.attribute("verify", verify_units)
                        ctx.tracer.attribute(
                            "dedup", dedup_checks * model.comparison,
                            calls=dedup_checks,
                        )
                    return rows

                rows = ctx.run_task(
                    stage, worker, task,
                    self._restore_bytes(ctx, left_entries, right_entries),
                )
                stage.records_out += len(rows)
                out.append(rows)
        return out

    def _combine_multi_join(self, left_assigned, right_assigned, pplan,
                            out_schema, ctx: ExecutionContext) -> list:
        """Theta bucket matching: spread left, broadcast right, test
        ``match`` per record pair (the paper's §VII-C fallback).

        The engine has no partitioned theta-join operator (AsterixDB does
        not either — the paper lists one as future work), so the bucket
        matching degenerates to a nested loop over ``(bucket_id, record)``
        tuples: every worker receives the whole broadcast side, tables it,
        and evaluates ``match`` once per record pair.  The per-node
        broadcast processing does not shrink as the cluster grows, which
        is exactly why Fig 10b's interval join scales poorly.
        """
        left_parts = _spread_assigned(left_assigned, ctx, f"{self.stage_name}/spread")
        right_parts = _broadcast_assigned(
            right_assigned, ctx, f"{self.stage_name}/broadcast"
        )
        stage = ctx.metrics.stage(f"{self.stage_name}/combine")
        model = ctx.cost_model
        v_cost = (
            self.verify_cost if self.verify_cost is not None
            else model.expensive_predicate
        )
        out = []
        with ctx.tracer.span("combine", kind="stage", stage=stage):
            pooled = self._pooled_combine(
                ctx, stage, "theta", left_parts, right_parts, pplan,
                out_schema, v_cost,
            )
            if pooled is not None:
                for rows in pooled:
                    stage.records_out += len(rows)
                    out.append(rows)
                return out
            for worker in range(ctx.num_partitions):
                left_entries = left_parts[worker]
                broadcast = right_parts[worker]

                def task(worker=worker, left_entries=left_entries,
                         broadcast=broadcast):
                    # Every worker materializes the whole broadcast side —
                    # per-node work that does not shrink as the cluster grows
                    # (and spills when it exceeds the worker's memory budget).
                    broadcast = ctx.admit(
                        stage, worker, broadcast,
                        EntrySpillCodec(
                            lambda r: self._external_key(r, self.right_key, ctx)
                        ),
                    )
                    stage.charge(
                        worker,
                        (len(left_entries) + len(broadcast)) * model.hash_op,
                    )
                    rows = []
                    match_checks = 0
                    verify_units = 0.0
                    dedup_checks = 0
                    for b1, key1, record1 in left_entries:
                        for b2, key2, record2 in broadcast:
                            match_checks += 1
                            if not self._safe_match(ctx, b1, b2):
                                continue
                            dedup_checks += 1
                            if not self.dedup.keep_local(
                                self.join, b1, key1, b2, key2, pplan
                            ):
                                continue
                            matched = self._safe_verify(ctx, key1, key2, pplan)
                            verify_units += model.predicate_units(v_cost, matched)
                            if not matched:
                                continue
                            joined = record1.concat(record2, out_schema)
                            rows.append(
                                self._tag_pair(record1, record2, joined)
                                if self.dedup.requires_shuffle else joined
                            )
                    stage.charge(
                        worker,
                        match_checks * model.match_op
                        + verify_units
                        + dedup_checks * model.comparison,
                    )
                    ctx.metrics.comparisons += dedup_checks
                    if ctx.tracer.enabled:
                        ctx.tracer.attribute("match", match_checks * model.match_op)
                        ctx.tracer.attribute("verify", verify_units)
                        ctx.tracer.attribute(
                            "dedup", dedup_checks * model.comparison,
                            calls=dedup_checks,
                        )
                    return rows

                rows = ctx.run_task(
                    stage, worker, task,
                    self._restore_bytes(ctx, left_entries, broadcast),
                )
                stage.records_out += len(rows)
                out.append(rows)
        return out

    def _eliminate_duplicates(self, partitions: list, ctx: ExecutionContext) -> list:
        """Post-join distinct: shuffle (pair_id, record) entries by pair
        identity, then drop repeated pairs on each worker (the Duplicate
        Elimination stage)."""

        class _Entry:
            """Adapter so the generic exchange can size the payload."""

            __slots__ = ("pair_id", "record")

            def __init__(self, pair_id, record):
                self.pair_id = pair_id
                self.record = record

            def serialized_size(self):
                return 16 + self.record.serialized_size()

        wrapped = [
            [_Entry(pair_id, record) for pair_id, record in partition]
            for partition in partitions
        ]
        shuffled = hash_exchange(
            wrapped, lambda entry: entry.pair_id, ctx,
            f"{self.stage_name}/dedup-shuffle",
        )
        stage = ctx.metrics.stage(f"{self.stage_name}/dedup")
        model = ctx.cost_model
        out = []
        with ctx.tracer.span("dedup", kind="stage", stage=stage):
            for worker, partition in enumerate(shuffled):

                def task(worker=worker, partition=partition):
                    seen = set()
                    rows = []
                    for entry in partition:
                        if entry.pair_id in seen:
                            continue
                        seen.add(entry.pair_id)
                        rows.append(entry.record)
                    stage.charge(worker, len(partition) * model.hash_op)
                    return rows

                rows = ctx.run_task(stage, worker, task)
                stage.records_in += len(partition)
                stage.records_out += len(rows)
                out.append(rows)
        return out


    def _local_join_pairs(self, ctx: ExecutionContext, keys1, keys2, pplan):
        """Enumerate the developer's ``local_join`` candidates; with
        tracing on the hook is materialized under a timer so its wall
        time lands in the ``local_join`` callback span."""
        tracer = ctx.tracer
        if not tracer.enabled:
            return self.join.local_join(keys1, keys2, pplan)
        started = time.perf_counter()
        pairs = list(self.join.local_join(keys1, keys2, pplan))
        tracer.record_call("local_join", time.perf_counter() - started)
        return pairs

    @staticmethod
    def _tag_pair(record1, record2, joined):
        """Attach the pair identity for duplicate elimination.

        Elimination must distinguish *the same input pair emitted from two
        buckets* (a duplicate) from *two different pairs with equal field
        values* (two legitimate results) — the original set-similarity
        study dedups on record ids for the same reason.  Exchanges move
        references and spills replay clones that keep their ``rid``, so
        :func:`_pair_identity` is stable within one query either way.
        """
        return ((_pair_identity(record1), _pair_identity(record2)), joined)

    def _join_buckets_local(self, left_table, right_entries, pplan,
                            out_schema, ctx: ExecutionContext, tag=None):
        """Single-join combine through the developer's ``local_join`` hook.

        Buckets are paired as usual (equal bucket ids); within each bucket
        pair the hook enumerates candidate index pairs, replacing the
        all-pairs loop.  The hook's own work is charged per input key
        (sort/setup) plus per emitted candidate.
        """
        model = ctx.cost_model
        v_cost = (
            self.verify_cost if self.verify_cost is not None
            else model.expensive_predicate
        )
        right_table = defaultdict(list)
        for bucket_id, key, record in right_entries:
            right_table[bucket_id].append((key, record))
        rows = []
        candidates = 0
        verify_units = 0.0
        setup_keys = 0
        for bucket_id, right_bucket in right_table.items():
            left_bucket = left_table.get(bucket_id)
            if not left_bucket:
                continue
            keys1 = [key for key, _ in left_bucket]
            keys2 = [key for key, _ in right_bucket]
            setup_keys += len(keys1) + len(keys2)
            for i, j in self._local_join_pairs(ctx, keys1, keys2, pplan):
                candidates += 1
                key1, record1 = left_bucket[i]
                key2, record2 = right_bucket[j]
                if not self.dedup.keep_local(
                    self.join, bucket_id, key1, bucket_id, key2, pplan
                ):
                    continue
                matched = self._safe_verify(ctx, key1, key2, pplan)
                verify_units += model.predicate_units(v_cost, matched)
                if not matched:
                    continue
                joined = record1.concat(record2, out_schema)
                rows.append(tag(record1, record2, joined) if tag else joined)
        verify_units += setup_keys * model.comparison
        return rows, candidates, verify_units

    def _combine_partitioned_theta(self, left_assigned, right_assigned,
                                   pplan, out_schema,
                                   ctx: ExecutionContext) -> list:
        """The partitioned theta join the paper lists as future work.

        ``partition_buckets`` maps every bucket onto match partitions such
        that matching buckets share one, so both sides co-partition and
        join locally — no broadcast, and the per-node work shrinks with
        the cluster.  A pair may meet in several partitions; the engine
        keeps it only in the smallest shared one.
        """
        num = ctx.num_partitions
        left_parts = _route_partitioned(
            left_assigned, self.join, num, pplan, ctx,
            f"{self.stage_name}/route-left",
        )
        right_parts = _route_partitioned(
            right_assigned, self.join, num, pplan, ctx,
            f"{self.stage_name}/route-right",
        )
        stage = ctx.metrics.stage(f"{self.stage_name}/combine")
        model = ctx.cost_model
        v_cost = (
            self.verify_cost if self.verify_cost is not None
            else model.expensive_predicate
        )
        join = self.join
        out = []
        with ctx.tracer.span("combine", kind="stage", stage=stage):
            pooled = self._pooled_combine(
                ctx, stage, "partitioned", left_parts, right_parts, pplan,
                out_schema, v_cost,
            )
            if pooled is not None:
                for rows in pooled:
                    stage.records_out += len(rows)
                    out.append(rows)
                return out
            for worker in range(num):
                local_left = left_parts[worker]
                local_right = right_parts[worker]

                def task(worker=worker, local_left=local_left,
                         local_right=local_right):
                    if ctx.resources.enforce:
                        # Both routed sides are resident; this plan never
                        # priced spills (it co-partitions instead of
                        # broadcasting), so admission is enforcement-only.
                        local_left = ctx.admit(
                            stage, worker, local_left,
                            EntrySpillCodec(lambda r: self._external_key(
                                r, self.left_key, ctx)),
                            price=False,
                        )
                        local_right = ctx.admit(
                            stage, worker, local_right,
                            EntrySpillCodec(lambda r: self._external_key(
                                r, self.right_key, ctx)),
                            price=False,
                        )
                    stage.charge(
                        worker,
                        (len(local_left) + len(local_right)) * model.hash_op,
                    )
                    rows = []
                    match_checks = 0
                    verify_units = 0.0
                    dedup_checks = 0
                    part_cache = {}

                    def parts_of(bucket_id):
                        found = part_cache.get(bucket_id)
                        if found is None:
                            found = set(join.partition_buckets(bucket_id, num, pplan))
                            part_cache[bucket_id] = found
                        return found

                    if join.has_local_join():
                        # A custom local algorithm (e.g. a sort-merge forward
                        # scan) enumerates candidates instead of the NLJ; the
                        # ownership check and verify still run per candidate.
                        keys1 = [entry[1] for entry in local_left]
                        keys2 = [entry[1] for entry in local_right]
                        match_checks = len(keys1) + len(keys2)  # sort/setup charge
                        for i, j in self._local_join_pairs(ctx, keys1, keys2,
                                                           pplan):
                            b1, key1, record1 = local_left[i]
                            b2, key2, record2 = local_right[j]
                            if not self._safe_match(ctx, b1, b2):
                                continue
                            shared = parts_of(b1) & parts_of(b2)
                            if min(shared) != worker:
                                continue
                            dedup_checks += 1
                            if not self.dedup.keep_local(
                                join, b1, key1, b2, key2, pplan
                            ):
                                continue
                            matched = self._safe_verify(ctx, key1, key2, pplan)
                            verify_units += model.predicate_units(v_cost, matched)
                            if not matched:
                                continue
                            joined = record1.concat(record2, out_schema)
                            rows.append(
                                self._tag_pair(record1, record2, joined)
                                if self.dedup.requires_shuffle else joined
                            )
                    else:
                        for b1, key1, record1 in local_left:
                            for b2, key2, record2 in local_right:
                                match_checks += 1
                                if not self._safe_match(ctx, b1, b2):
                                    continue
                                shared = parts_of(b1) & parts_of(b2)
                                if min(shared) != worker:
                                    continue  # another partition owns this pair
                                dedup_checks += 1
                                if not self.dedup.keep_local(
                                    join, b1, key1, b2, key2, pplan
                                ):
                                    continue
                                matched = self._safe_verify(ctx, key1, key2, pplan)
                                verify_units += model.predicate_units(v_cost, matched)
                                if not matched:
                                    continue
                                joined = record1.concat(record2, out_schema)
                                rows.append(
                                    self._tag_pair(record1, record2, joined)
                                    if self.dedup.requires_shuffle else joined
                                )
                    stage.charge(
                        worker,
                        match_checks * model.match_op
                        + verify_units
                        + dedup_checks * model.comparison,
                    )
                    ctx.metrics.comparisons += dedup_checks
                    if ctx.tracer.enabled:
                        ctx.tracer.attribute("match", match_checks * model.match_op)
                        ctx.tracer.attribute("verify", verify_units)
                        ctx.tracer.attribute(
                            "dedup", dedup_checks * model.comparison,
                            calls=dedup_checks,
                        )
                    return rows

                rows = ctx.run_task(
                    stage, worker, task,
                    self._restore_bytes(ctx, local_left, local_right),
                )
                stage.records_out += len(rows)
                out.append(rows)
        return out


# -- assigned-entry exchanges -----------------------------------------------------
#
# Assigned entries are (bucket_id, key, record) triples.  They reuse the
# record's wire size plus a small constant for the bucket id.


def _entry_bytes(entries, ctx) -> int:
    if not entries:
        return 0
    if ctx.measure_bytes or len(entries) <= 32:
        return sum(9 + e[2].serialized_size() for e in entries)
    sample = entries[:: max(1, len(entries) // 32)][:32]
    avg = sum(9 + e[2].serialized_size() for e in sample) / len(sample)
    return int(avg * len(entries))


def _exchange_assigned(assigned: list, ctx: ExecutionContext, stage_name: str) -> list:
    """Hash-exchange assigned entries on bucket id."""
    stage = ctx.metrics.stage(stage_name)
    model = ctx.cost_model
    with ctx.tracer.span(stage_name.rsplit("/", 1)[-1], kind="exchange",
                         stage=stage):
        out = [[] for _ in range(ctx.num_partitions)]
        for worker, entries in enumerate(assigned):
            moved = []
            for entry in entries:
                target = hash(entry[0]) % ctx.num_partitions
                out[target].append(entry)
                if target != worker:
                    moved.append(entry)
                stage.charge(worker, model.hash_op)
            moved_bytes = _entry_bytes(moved, ctx)
            stage.network_bytes += moved_bytes
            stage.charge(worker, moved_bytes * model.serde_byte)
            apply_exchange_faults(ctx, stage, worker, moved_bytes)
            stage.records_in += len(entries)
        for worker, entries in enumerate(out):
            charge_checkpoint(ctx, stage, worker, _entry_bytes(entries, ctx))
        stage.records_out = sum(len(p) for p in out)
        return out


def _spread_assigned(assigned: list, ctx: ExecutionContext, stage_name: str) -> list:
    """Round-robin assigned entries (theta-join left side)."""
    stage = ctx.metrics.stage(stage_name)
    model = ctx.cost_model
    with ctx.tracer.span(stage_name.rsplit("/", 1)[-1], kind="exchange",
                         stage=stage):
        out = [[] for _ in range(ctx.num_partitions)]
        cursor = 0
        for worker, entries in enumerate(assigned):
            moved = []
            for entry in entries:
                target = cursor % ctx.num_partitions
                cursor += 1
                out[target].append(entry)
                if target != worker:
                    moved.append(entry)
                stage.charge(worker, model.record_touch)
            moved_bytes = _entry_bytes(moved, ctx)
            stage.network_bytes += moved_bytes
            stage.charge(worker, moved_bytes * model.serde_byte)
            apply_exchange_faults(ctx, stage, worker, moved_bytes)
            stage.records_in += len(entries)
        for worker, entries in enumerate(out):
            charge_checkpoint(ctx, stage, worker, _entry_bytes(entries, ctx))
        stage.records_out = sum(len(p) for p in out)
        return out


def _route_partitioned(assigned: list, join, num: int, pplan,
                       ctx: ExecutionContext, stage_name: str) -> list:
    """Send each assigned entry to the match partitions of its bucket."""
    stage = ctx.metrics.stage(stage_name)
    model = ctx.cost_model
    with ctx.tracer.span(stage_name.rsplit("/", 1)[-1], kind="exchange",
                         stage=stage):
        out = [[] for _ in range(num)]
        for worker, entries in enumerate(assigned):
            moved = []
            for entry in entries:
                targets = join.partition_buckets(entry[0], num, pplan)
                for target in targets:
                    out[target].append(entry)
                    if target != worker:
                        moved.append(entry)
                    stage.charge(worker, model.hash_op)
            moved_bytes = _entry_bytes(moved, ctx)
            stage.network_bytes += moved_bytes
            stage.charge(worker, moved_bytes * model.serde_byte)
            apply_exchange_faults(ctx, stage, worker, moved_bytes)
            stage.records_in += len(entries)
        for worker, entries in enumerate(out):
            charge_checkpoint(ctx, stage, worker, _entry_bytes(entries, ctx))
        stage.records_out = sum(len(p) for p in out)
        return out


def _broadcast_assigned(assigned: list, ctx: ExecutionContext, stage_name: str) -> list:
    """Broadcast assigned entries to every worker (theta-join right side)."""
    stage = ctx.metrics.stage(stage_name)
    model = ctx.cost_model
    with ctx.tracer.span(stage_name.rsplit("/", 1)[-1], kind="exchange",
                         stage=stage):
        everything = [entry for entries in assigned for entry in entries]
        total_bytes = _entry_bytes(everything, ctx)
        stage.fabric_bytes += total_bytes * max(0, ctx.num_partitions - 1)
        for worker in range(ctx.num_partitions):
            stage.charge(
                worker,
                len(everything) * model.record_touch
                + total_bytes * model.serde_byte,
            )
            # A flaky link to one receiver forces a re-send of its whole copy.
            apply_exchange_faults(ctx, stage, worker, total_bytes)
        # One checkpoint copy covers every replica (the data is identical).
        charge_checkpoint(ctx, stage, 0, total_bytes)
        stage.records_in = len(everything)
        stage.records_out = len(everything) * ctx.num_partitions
        return [list(everything) for _ in range(ctx.num_partitions)]
