"""The UNNEST operator (paper Fig 8's PARTITION-phase building block).

Expands a computed list per input record into one output record per
element.  The FUDJ composite operator performs its bucket-id unnesting
inline for speed, but the standalone operator is part of the engine's
public surface: the paper's Figure 8 plan is expressible operator by
operator, and custom plans (tests, future rules) can reuse it.
"""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.engine.record import Record, Schema
from repro.errors import ExecutionError
from repro.serde.values import box


class Unnest(PhysicalOperator):
    """Emit one record per element of ``list_fn(record)``.

    Output schema: the input fields plus ``output_field`` holding the
    element.  Records whose list is empty produce no output (inner unnest
    semantics, which is what bucket assignment needs: an unassignable
    record joins nothing).
    """

    label = "unnest"

    def __init__(self, child: PhysicalOperator, list_fn, output_field: str,
                 cost_units: float = None) -> None:
        super().__init__()
        self.child = child
        self.list_fn = list_fn
        self.output_field = output_field
        self.cost_units = cost_units

    def describe(self) -> str:
        return f"UNNEST -> {self.output_field}"

    def children(self) -> list:
        return [self.child]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        source = self.child.execute(ctx)
        if self.output_field in source.schema:
            raise ExecutionError(
                f"unnest output field {self.output_field!r} already exists"
            )
        schema = Schema(source.schema.fields + (self.output_field,))
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        per_row = (
            self.cost_units if self.cost_units is not None else model.record_touch
        )
        out = []
        for worker, partition in enumerate(source.partitions):
            rows = []
            emitted = 0
            for record in partition:
                elements = self.list_fn(record)
                if elements is None:
                    continue
                for element in elements:
                    rows.append(Record(schema, record.values + (box(element),)))
                    emitted += 1
            stage.charge(
                worker,
                len(partition) * per_row + emitted * model.record_touch,
            )
            stage.records_in += len(partition)
            stage.records_out += len(rows)
            out.append(rows)
        return OperatorResult(out, schema)
