"""Operator base class and the result type flowing between operators."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.engine.context import ExecutionContext
from repro.engine.record import Schema

_IDS = itertools.count(1)


def format_estimate(value: float) -> str:
    """Deterministic short rendering of a row bound: integers print
    plain, non-integers keep one decimal, infinities print ``inf``."""
    if value != value or value in (float("inf"), float("-inf")):
        return "inf"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.1f}"


@dataclass
class OperatorResult:
    """Output of one physical operator: partitions plus their schema.

    Partitions are frozen at construction (no operator mutates a result
    it has returned), so the record count is computed once here —
    ``len()`` is called per operator per query by tracing and the
    printer, and re-summing every partition each time was pure waste.
    """

    partitions: list
    schema: Schema

    def __post_init__(self) -> None:
        self._num_records = sum(len(p) for p in self.partitions)

    def __len__(self) -> int:
        return self._num_records

    def all_records(self):
        """Yield every record across partitions."""
        for partition in self.partitions:
            yield from partition


class PhysicalOperator:
    """Base class for physical operators.

    Subclasses implement :meth:`run`; callers invoke :meth:`execute`,
    which wraps the run in a tracing span when the context traces (so
    the span tree is shaped exactly like the physical plan).
    ``stage_name`` is unique per operator instance so metrics can tell
    two filters apart.
    """

    label = "operator"

    #: Pessimistic row bound attached by the cost-based optimizer; rule
    #: plans leave it None and render exactly as before.
    est_rows = None

    def __init__(self) -> None:
        self.stage_name = f"{self.label}#{next(_IDS)}"

    def execute(self, ctx: ExecutionContext) -> OperatorResult:
        """Run the operator (inside an ``operator`` span when tracing).

        Dispatches to :meth:`run_batches` when the context executes in
        batch mode; operators without a vectorized path fall back to
        :meth:`run` (the default :meth:`run_batches`), while their
        children still dispatch independently — a row-only join happily
        consumes batched children through the duck-typed
        :class:`~repro.engine.batch.BatchResult` surface.
        """
        ctx.check_cancel()  # every operator boundary is a checkpoint
        runner = self.run_batches if ctx.execution == "batch" else self.run
        tracer = ctx.tracer
        if not tracer.enabled:
            return runner(ctx)
        with tracer.span(self.stage_name, kind="operator") as span:
            result = runner(ctx)
            stage = ctx.metrics.find_stage(self.stage_name)
            if stage is not None:
                span.copy_stage(stage)
            span.records_out = len(result)
            batches = getattr(result, "num_batches", None)
            if batches is not None:
                span.meta["batches_out"] = batches
            return result

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        """Compute the operator's partitioned output (subclass hook)."""
        raise NotImplementedError

    def run_batches(self, ctx: ExecutionContext):
        """Batched execution hook; operators with a vectorized path
        override this to return a :class:`~repro.engine.batch.BatchResult`.
        The default keeps the operator on the row path."""
        return self.run(ctx)

    def explain(self, indent: int = 0) -> str:
        """A one-operator-per-line plan rendering (children indented).

        Cost-optimized plans carry pessimistic row bounds; each is
        rendered as ``[est<=N rows]`` after the operator description.
        """
        line = " " * indent + self.describe()
        if self.est_rows is not None:
            line += f"  [est<={format_estimate(self.est_rows)} rows]"
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + 2))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description used by :meth:`explain`."""
        return self.label

    def children(self) -> list:
        """Child operators, outermost first."""
        return []
