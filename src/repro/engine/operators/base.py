"""Operator base class and the result type flowing between operators."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.engine.context import ExecutionContext
from repro.engine.record import Schema

_IDS = itertools.count(1)


@dataclass
class OperatorResult:
    """Output of one physical operator: partitions plus their schema."""

    partitions: list
    schema: Schema

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def all_records(self):
        """Yield every record across partitions."""
        for partition in self.partitions:
            yield from partition


class PhysicalOperator:
    """Base class for physical operators.

    Subclasses implement :meth:`run`; callers invoke :meth:`execute`,
    which wraps the run in a tracing span when the context traces (so
    the span tree is shaped exactly like the physical plan).
    ``stage_name`` is unique per operator instance so metrics can tell
    two filters apart.
    """

    label = "operator"

    def __init__(self) -> None:
        self.stage_name = f"{self.label}#{next(_IDS)}"

    def execute(self, ctx: ExecutionContext) -> OperatorResult:
        """Run the operator (inside an ``operator`` span when tracing)."""
        tracer = ctx.tracer
        if not tracer.enabled:
            return self.run(ctx)
        with tracer.span(self.stage_name, kind="operator") as span:
            result = self.run(ctx)
            stage = ctx.metrics.find_stage(self.stage_name)
            if stage is not None:
                span.copy_stage(stage)
            span.records_out = len(result)
            return result

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        """Compute the operator's partitioned output (subclass hook)."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """A one-operator-per-line plan rendering (children indented)."""
        lines = [" " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 2))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description used by :meth:`explain`."""
        return self.label

    def children(self) -> list:
        """Child operators, outermost first."""
        return []
