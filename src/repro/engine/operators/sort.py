"""Global ORDER BY."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.operators.base import OperatorResult, PhysicalOperator


class Sort(PhysicalOperator):
    """Globally ordered output: local sorts plus a coordinator merge.

    ``keys`` is a list of ``(key_fn, descending)``.  Output lands on
    worker 0 in order (like a query result returned to the client).
    """

    label = "sort"

    def __init__(self, child: PhysicalOperator, keys) -> None:
        super().__init__()
        self.child = child
        self.keys = list(keys)

    def describe(self) -> str:
        return f"SORT ({len(self.keys)} key(s))"

    def children(self) -> list:
        return [self.child]

    def _sort(self, records: list) -> list:
        # Stable multi-key sort: apply keys right-to-left.
        out = list(records)
        import math

        for key_fn, descending in reversed(self.keys):
            out.sort(key=lambda r: _orderable(key_fn(r)), reverse=descending)
        return out

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        source = self.child.execute(ctx)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        import math

        merged = []
        total_bytes = 0
        for worker, partition in enumerate(source.partitions):
            local = self._sort(partition)
            n = max(1, len(local))
            stage.charge(worker, len(local) * model.comparison * max(1.0, math.log2(n)))
            merged.extend(local)
            if worker != 0:
                total_bytes += sum(r.serialized_size() for r in local) if partition else 0
        stage.network_bytes += total_bytes
        merged = self._sort(merged)
        stage.charge(0, len(merged) * model.comparison)
        stage.records_in = stage.records_out = len(source)
        partitions = [[] for _ in range(ctx.num_partitions)]
        partitions[0] = merged
        return OperatorResult(partitions, source.schema)


def _orderable(value):
    """Make a value sortable: unbox engine values, map None lowest."""
    from repro.serde.values import unbox

    plain = unbox(value)
    if plain is None:
        return (0, 0)
    return (1, plain)
