"""Binary join operators: hash join and block nested-loop join.

The hash join is the engine's workhorse for equi-joins (and for FUDJ
single-joins on bucket ids).  The block nested-loop join broadcasts its
right input and evaluates an arbitrary predicate per pair — this is the
paper's *on-top* baseline when the predicate is a scalar UDF, and the
theta-join fallback for multi-join bucket matching.
"""

from __future__ import annotations

from collections import defaultdict

from repro.engine.context import ExecutionContext
from repro.engine.exchange import broadcast_exchange, hash_exchange, random_exchange
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.engine.resources import RecordSpillCodec


class HashJoin(PhysicalOperator):
    """Distributed hash equi-join.

    Both inputs are hash-exchanged on their key; each worker builds a hash
    table over its left fragment and probes with its right fragment.  An
    optional ``residual`` predicate filters joined pairs (charged at
    ``residual_cost`` units per evaluation).
    """

    label = "hash-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key, right_key, residual=None,
                 residual_cost: float = None) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.residual_cost = residual_cost

    def describe(self) -> str:
        return "HASH JOIN" + (" (+residual)" if self.residual else "")

    def children(self) -> list:
        return [self.left, self.right]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        left_parts = hash_exchange(
            left.partitions, self.left_key, ctx, f"{self.stage_name}/xleft"
        )
        right_parts = hash_exchange(
            right.partitions, self.right_key, ctx, f"{self.stage_name}/xright"
        )
        schema = left.schema.concat(right.schema)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        res_cost = (
            self.residual_cost if self.residual_cost is not None else model.comparison
        )
        out = []
        for worker in range(ctx.num_partitions):

            def task(worker=worker):
                # The build side is resident state: the accountant prices
                # its spill (and, under a memory budget, actually spills
                # and replays the overflow) before the table is built.
                build = ctx.admit(
                    stage, worker, left_parts[worker],
                    RecordSpillCodec(left.schema),
                )
                table = defaultdict(list)
                for record in build:
                    table[self.left_key(record)].append(record)
                stage.charge(worker, len(build) * model.hash_op)
                rows = []
                probes = 0
                pairs = 0
                for r_record in right_parts[worker]:
                    probes += 1
                    for l_record in table.get(self.right_key(r_record), ()):
                        pairs += 1
                        joined = l_record.concat(r_record, schema)
                        if self.residual is not None and not self.residual(joined):
                            continue
                        rows.append(joined)
                stage.charge(
                    worker,
                    probes * model.hash_op
                    + pairs * (model.record_touch
                               + (res_cost if self.residual else 0)),
                )
                ctx.metrics.comparisons += pairs
                return rows

            out.append(ctx.run_task(stage, worker, task))
        stage.records_in = len(left) + len(right)
        stage.records_out = sum(len(p) for p in out)
        return OperatorResult(out, schema)


class BroadcastHashJoin(PhysicalOperator):
    """Hash equi-join with the right (build) side broadcast.

    The left input stays where it is; the right input is broadcast to
    every worker over the shared fabric, each worker builds a hash table
    over the full right side and probes with its local left fragment.
    Chosen by the cost-based operator selection when the build side's
    estimated bytes fit one worker's memory grant and replicating it is
    cheaper than shuffling both sides (small-dimension joins).  Pays the
    same hash/probe/pair unit prices as :class:`HashJoin`; what changes
    is the exchange: fabric broadcast bytes instead of point-to-point
    shuffles.
    """

    label = "broadcast-hash-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key, right_key, residual=None,
                 residual_cost: float = None) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.residual_cost = residual_cost

    def describe(self) -> str:
        return ("BROADCAST HASH JOIN (broadcast right)"
                + (" (+residual)" if self.residual else ""))

    def children(self) -> list:
        return [self.left, self.right]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        right_parts = broadcast_exchange(
            right.partitions, ctx, f"{self.stage_name}/broadcast"
        )
        schema = left.schema.concat(right.schema)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        res_cost = (
            self.residual_cost if self.residual_cost is not None else model.comparison
        )
        out = []
        for worker in range(ctx.num_partitions):

            def task(worker=worker):
                # The broadcast copy is this worker's resident build state;
                # admit it through the accountant like any hash build.
                build = ctx.admit(
                    stage, worker, right_parts[worker],
                    RecordSpillCodec(right.schema),
                )
                table = defaultdict(list)
                for record in build:
                    table[self.right_key(record)].append(record)
                stage.charge(worker, len(build) * model.hash_op)
                rows = []
                probes = 0
                pairs = 0
                for l_record in left.partitions[worker]:
                    probes += 1
                    for r_record in table.get(self.left_key(l_record), ()):
                        pairs += 1
                        joined = l_record.concat(r_record, schema)
                        if self.residual is not None and not self.residual(joined):
                            continue
                        rows.append(joined)
                stage.charge(
                    worker,
                    probes * model.hash_op
                    + pairs * (model.record_touch
                               + (res_cost if self.residual else 0)),
                )
                ctx.metrics.comparisons += pairs
                return rows

            out.append(ctx.run_task(stage, worker, task))
        stage.records_in = len(left) + len(right)
        stage.records_out = sum(len(p) for p in out)
        return OperatorResult(out, schema)


class BlockNestedLoopJoin(PhysicalOperator):
    """Broadcast nested-loop join with an arbitrary pair predicate.

    The right input is broadcast to every worker; each worker loops its
    left fragment against the full right input.  ``predicate_cost`` is the
    per-pair charge — for the on-top baseline the planner passes the cost
    model's ``expensive_predicate``, which is what makes NLJ plans pay the
    price the paper describes.

    ``spread_left`` randomly repartitions the left side first, which is
    what AsterixDB does for theta joins when no partitioning key exists
    (paper §VII-C).
    """

    label = "nl-join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 predicate, predicate_cost: float = None,
                 spread_left: bool = False) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.predicate = predicate
        self.predicate_cost = predicate_cost
        self.spread_left = spread_left

    def describe(self) -> str:
        return "NESTED LOOP JOIN (broadcast right)"

    def children(self) -> list:
        return [self.left, self.right]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        left_parts = left.partitions
        if self.spread_left:
            left_parts = random_exchange(
                left_parts, ctx, f"{self.stage_name}/spread"
            )
        right_parts = broadcast_exchange(
            right.partitions, ctx, f"{self.stage_name}/broadcast"
        )
        schema = left.schema.concat(right.schema)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        pair_cost = (
            self.predicate_cost
            if self.predicate_cost is not None
            else model.expensive_predicate
        )
        out = []
        for worker in range(ctx.num_partitions):

            def task(worker=worker):
                rows = []
                broadcast = right_parts[worker]
                pairs = 0
                units = 0.0
                for l_record in left_parts[worker]:
                    for r_record in broadcast:
                        pairs += 1
                        joined = l_record.concat(r_record, schema)
                        matched = bool(self.predicate(joined))
                        units += model.predicate_units(pair_cost, matched)
                        if matched:
                            rows.append(joined)
                stage.charge(worker, units)
                ctx.metrics.comparisons += pairs
                return rows

            out.append(ctx.run_task(stage, worker, task))
        stage.records_in = len(left) + len(right)
        stage.records_out = sum(len(p) for p in out)
        return OperatorResult(out, schema)
