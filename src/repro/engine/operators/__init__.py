"""Physical operators of the simulated engine.

Every operator consumes/produces an :class:`OperatorResult` (partition
lists plus the output schema) and charges its work to the query metrics.
The planner composes these into physical plans; the FUDJ composite
operator (:mod:`repro.engine.operators.fudj_join`) implements the whole
Figure 8 pipeline on top of the same primitives.
"""

from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.engine.operators.scan import Scan, Values
from repro.engine.operators.filter import Distinct, Filter, Limit, MapColumns, Project
from repro.engine.operators.aggregate import (
    AggregateSpec,
    AvgAgg,
    CountAgg,
    CountDistinctAgg,
    GroupBy,
    MaxAgg,
    MinAgg,
    ScalarAggregate,
    SumAgg,
)
from repro.engine.operators.join import (
    BlockNestedLoopJoin,
    BroadcastHashJoin,
    HashJoin,
)
from repro.engine.operators.sort import Sort
from repro.engine.operators.unnest import Unnest
from repro.engine.operators.fudj_join import FudjJoin

__all__ = [
    "PhysicalOperator",
    "OperatorResult",
    "Scan",
    "Values",
    "Filter",
    "Project",
    "MapColumns",
    "Limit",
    "Distinct",
    "GroupBy",
    "ScalarAggregate",
    "AggregateSpec",
    "CountAgg",
    "CountDistinctAgg",
    "SumAgg",
    "AvgAgg",
    "MinAgg",
    "MaxAgg",
    "HashJoin",
    "BroadcastHashJoin",
    "BlockNestedLoopJoin",
    "Sort",
    "Unnest",
    "FudjJoin",
]
