"""Aggregation: aggregate function specs, GROUP BY, and scalar aggregates.

Both group-by and scalar aggregation follow the two-level scheme the paper
leans on for SUMMARIZE: aggregate locally on each worker, shuffle/gather
the partials, then merge globally.
"""

from __future__ import annotations

from repro.engine import kernels
from repro.engine.batch import BatchResult, as_worker_batches, batches_from_rows
from repro.engine.context import ExecutionContext
from repro.engine.exchange import hash_exchange, hash_exchange_batches
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.engine.record import Record, Schema
from repro.engine.resources import RecordSpillCodec, RowSpillCodec
from repro.serde.values import box, unbox


class AggregateSpec:
    """One aggregate function: COUNT/SUM/AVG/MIN/MAX over an input fn.

    Subclasses define ``init`` (the identity state), ``add`` (fold one
    record in), ``merge`` (combine two partial states), and ``result``.
    ``value_fn`` extracts the aggregated value from a record (``None`` for
    COUNT(*)-style aggregates).
    """

    name = "agg"

    def __init__(self, output_name: str, value_fn=None) -> None:
        self.output_name = output_name
        self.value_fn = value_fn

    def init(self):
        raise NotImplementedError

    def add(self, state, record):
        raise NotImplementedError

    def merge(self, a, b):
        raise NotImplementedError

    def result(self, state):
        raise NotImplementedError


class CountAgg(AggregateSpec):
    """COUNT(*) / COUNT(expr) with SQL semantics (NULLs not counted when
    an expression is given)."""

    name = "count"

    def init(self):
        return 0

    def add(self, state, record):
        if self.value_fn is not None and unbox(self.value_fn(record)) is None:
            return state
        return state + 1

    def merge(self, a, b):
        return a + b

    def result(self, state):
        return state


class CountDistinctAgg(AggregateSpec):
    """COUNT(DISTINCT expr): partial states are sets of seen values, so
    they merge exactly across workers."""

    name = "count-distinct"

    def init(self):
        return set()

    def add(self, state, record):
        value = unbox(self.value_fn(record))
        if value is not None:
            try:
                state.add(value)
            except TypeError:
                state.add(repr(value))
        return state

    def merge(self, a, b):
        return a | b

    def result(self, state):
        return len(state)


class SumAgg(AggregateSpec):
    name = "sum"

    def init(self):
        return None

    def add(self, state, record):
        value = unbox(self.value_fn(record))
        if value is None:
            return state
        return value if state is None else state + value

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a + b

    def result(self, state):
        return state


class AvgAgg(AggregateSpec):
    """AVG keeps a (sum, count) pair so partials merge exactly."""

    name = "avg"

    def init(self):
        return (0.0, 0)

    def add(self, state, record):
        value = unbox(self.value_fn(record))
        if value is None:
            return state
        return (state[0] + value, state[1] + 1)

    def merge(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def result(self, state):
        total, count = state
        return total / count if count else None


class MinAgg(AggregateSpec):
    name = "min"

    def init(self):
        return None

    def add(self, state, record):
        value = unbox(self.value_fn(record))
        if value is None:
            return state
        return value if state is None else min(state, value)

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    def result(self, state):
        return state


class MaxAgg(AggregateSpec):
    name = "max"

    def init(self):
        return None

    def add(self, state, record):
        value = unbox(self.value_fn(record))
        if value is None:
            return state
        return value if state is None else max(state, value)

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)

    def result(self, state):
        return state


class GroupBy(PhysicalOperator):
    """Hash GROUP BY: local pre-aggregation, shuffle partials by key,
    global merge.

    ``keys`` is a list of ``(output_name, key_fn)``; key functions must
    return hashable boxed or plain values.
    """

    label = "group-by"

    def __init__(self, child: PhysicalOperator, keys, aggregates) -> None:
        super().__init__()
        self.child = child
        self.keys = list(keys)
        self.aggregates = list(aggregates)

    def describe(self) -> str:
        names = ", ".join(name for name, _ in self.keys)
        aggs = ", ".join(a.output_name for a in self.aggregates)
        return f"GROUP BY {names} AGG {aggs}"

    def children(self) -> list:
        return [self.child]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        source = self.child.execute(ctx)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model

        # Phase 1: local aggregation per worker.  Under a memory budget
        # the pre-aggregation input is admitted first — aggregation tables
        # were never priced for spills, so this is enforcement-only.
        local_tables = []
        for worker, partition in enumerate(source.partitions):
            if ctx.resources.enforce:
                partition = ctx.admit(
                    stage, worker, partition,
                    RecordSpillCodec(source.schema), price=False,
                )
            ctx.metrics.operator_invocations += len(partition)
            table = {}
            for record in partition:
                key = tuple(key_fn(record) for _, key_fn in self.keys)
                states = table.get(key)
                if states is None:
                    states = [agg.init() for agg in self.aggregates]
                    table[key] = states
                for i, agg in enumerate(self.aggregates):
                    states[i] = agg.add(states[i], record)
            stage.charge(
                worker,
                len(partition) * (model.hash_op + model.record_touch),
            )
            local_tables.append(table)

        # Phase 2: shuffle partial states by group key.
        partial_schema = Schema(["__key", "__states"])
        partials = [
            [Record(partial_schema, (box_key(key), RawState(states)))
             for key, states in table.items()]
            for table in local_tables
        ]
        shuffled = hash_exchange(
            partials, lambda r: r.values[0], ctx,
            stage_name=f"{self.stage_name}/shuffle",
        )

        # Phase 3: global merge per worker.
        out_schema = Schema(
            [name for name, _ in self.keys]
            + [agg.output_name for agg in self.aggregates]
        )
        out = []
        for worker, partition in enumerate(shuffled):
            ctx.metrics.operator_invocations += len(partition)
            table = {}
            for record in partition:
                key = record.values[0]
                states = record.values[1].states
                current = table.get(key)
                if current is None:
                    table[key] = list(states)
                else:
                    for i, agg in enumerate(self.aggregates):
                        current[i] = agg.merge(current[i], states[i])
            stage.charge(worker, len(partition) * model.hash_op)
            rows = []
            for key, states in table.items():
                key_values = unbox_key(key, len(self.keys))
                agg_values = [
                    box(agg.result(states[i]))
                    for i, agg in enumerate(self.aggregates)
                ]
                rows.append(Record(out_schema, list(key_values) + agg_values))
            out.append(rows)
        stage.records_in = len(source)
        stage.records_out = sum(len(p) for p in out)
        return OperatorResult(out, out_schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        source = self.child.execute(ctx)
        batches = as_worker_batches(source, ctx)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        cursor = kernels.make_cursor(source.schema)

        # Phase 1: local aggregation, one kernel call per batch.  Under a
        # memory budget the raw rows are admitted first through the
        # row-tuple codec — same sizes, same spill frames as row mode.
        local_tables = []
        for worker, worker_batches in enumerate(batches):
            if ctx.resources.enforce:
                rows = [row for batch in worker_batches
                        for row in batch.iter_rows()]
                rows = ctx.admit(stage, worker, rows, RowSpillCodec(),
                                 price=False)
                worker_batches = batches_from_rows(ctx, source.schema, rows)
            table = {}
            total = 0
            for batch in worker_batches:
                ctx.metrics.operator_invocations += 1
                kernels.fold_groups(batch, self.keys, self.aggregates,
                                    table, cursor)
                total += batch.num_rows
            stage.charge(
                worker, total * (model.hash_op + model.record_touch)
            )
            local_tables.append(table)

        # Phase 2: shuffle partial states by group key (batched).
        partial_schema = Schema(["__key", "__states"])
        partials = [
            batches_from_rows(
                ctx, partial_schema,
                [(box_key(key), RawState(states))
                 for key, states in table.items()],
            )
            for table in local_tables
        ]
        shuffled = hash_exchange_batches(
            partials, lambda row: row[0], ctx,
            f"{self.stage_name}/shuffle", partial_schema,
        )

        # Phase 3: global merge per worker, one kernel call per batch.
        out_schema = Schema(
            [name for name, _ in self.keys]
            + [agg.output_name for agg in self.aggregates]
        )
        out = []
        records_out = 0
        for worker, worker_batches in enumerate(shuffled):
            table = {}
            total = 0
            for batch in worker_batches:
                ctx.metrics.operator_invocations += 1
                for key, raw in batch.iter_rows():
                    states = raw.states
                    current = table.get(key)
                    if current is None:
                        table[key] = list(states)
                    else:
                        for i, agg in enumerate(self.aggregates):
                            current[i] = agg.merge(current[i], states[i])
                total += batch.num_rows
            stage.charge(worker, total * model.hash_op)
            rows = []
            for key, states in table.items():
                key_values = unbox_key(key, len(self.keys))
                agg_values = [
                    box(agg.result(states[i]))
                    for i, agg in enumerate(self.aggregates)
                ]
                rows.append(tuple(key_values) + tuple(agg_values))
            records_out += len(rows)
            out.append(batches_from_rows(ctx, out_schema, rows))
        stage.records_in = len(source)
        stage.records_out = records_out
        return BatchResult(out, out_schema)


class ScalarAggregate(PhysicalOperator):
    """Aggregates without GROUP BY (``SELECT COUNT(1) FROM ...``).

    Local partials are merged at the coordinator; output is one record on
    worker 0.
    """

    label = "scalar-aggregate"

    def __init__(self, child: PhysicalOperator, aggregates) -> None:
        super().__init__()
        self.child = child
        self.aggregates = list(aggregates)

    def describe(self) -> str:
        return f"AGGREGATE {', '.join(a.output_name for a in self.aggregates)}"

    def children(self) -> list:
        return [self.child]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        source = self.child.execute(ctx)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        partials = []
        for worker, partition in enumerate(source.partitions):
            ctx.metrics.operator_invocations += len(partition)
            states = [agg.init() for agg in self.aggregates]
            for record in partition:
                for i, agg in enumerate(self.aggregates):
                    states[i] = agg.add(states[i], record)
            stage.charge(worker, len(partition) * model.record_touch)
            partials.append(states)
        merged = [agg.init() for agg in self.aggregates]
        for states in partials:
            for i, agg in enumerate(self.aggregates):
                merged[i] = agg.merge(merged[i], states[i])
        out_schema = Schema(agg.output_name for agg in self.aggregates)
        row = Record(
            out_schema,
            (box(agg.result(merged[i])) for i, agg in enumerate(self.aggregates)),
        )
        partitions = [[] for _ in range(ctx.num_partitions)]
        partitions[0] = [row]
        stage.records_in = len(source)
        stage.records_out = 1
        return OperatorResult(partitions, out_schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        source = self.child.execute(ctx)
        batches = as_worker_batches(source, ctx)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        cursor = kernels.make_cursor(source.schema)
        partials = []
        for worker, worker_batches in enumerate(batches):
            states = [agg.init() for agg in self.aggregates]
            total = 0
            for batch in worker_batches:
                ctx.metrics.operator_invocations += 1
                kernels.fold_scalar(batch, self.aggregates, states, cursor)
                total += batch.num_rows
            stage.charge(worker, total * model.record_touch)
            partials.append(states)
        merged = [agg.init() for agg in self.aggregates]
        for states in partials:
            for i, agg in enumerate(self.aggregates):
                merged[i] = agg.merge(merged[i], states[i])
        out_schema = Schema(agg.output_name for agg in self.aggregates)
        row = tuple(
            box(agg.result(merged[i]))
            for i, agg in enumerate(self.aggregates)
        )
        out = [[] for _ in range(ctx.num_partitions)]
        out[0] = batches_from_rows(ctx, out_schema, [row])
        stage.records_in = len(source)
        stage.records_out = 1
        return BatchResult(out, out_schema)


class RawState:
    """Opaque carrier for partial aggregate states inside a record.

    GROUP BY ships partial states through the exchange layer; the states
    themselves are arbitrary Python values, so they ride in this box (its
    wire size is approximated as a small constant per state).
    """

    __slots__ = ("states",)
    type_tag = "raw-state"

    def __init__(self, states) -> None:
        self.states = states

    def to_python(self):
        return self.states


def box_key(key: tuple):
    """Box a group key tuple into one hashable value."""
    return tuple(v if not hasattr(v, "to_python") else v for v in key)


def unbox_key(key: tuple, arity: int) -> list:
    """Inverse of :func:`box_key`, re-boxing each element for the output."""
    assert len(key) == arity
    return [box(unbox(v)) for v in key]
