"""Leaf operators: dataset scans and literal value sources."""

from __future__ import annotations

from repro.engine.batch import BatchResult, batches_from_rows
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.engine.record import Record, Schema


class Scan(PhysicalOperator):
    """Scan a stored dataset, qualifying fields with the query alias.

    ``Parks p`` produces fields ``p.id``, ``p.boundary``, ... so that later
    expressions can reference either side of a join unambiguously.
    """

    label = "scan"

    def __init__(self, dataset_name: str, alias: str = None) -> None:
        super().__init__()
        self.dataset_name = dataset_name
        self.alias = alias or dataset_name

    def describe(self) -> str:
        return f"SCAN {self.dataset_name} AS {self.alias}"

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        dataset = ctx.cluster.dataset(self.dataset_name)
        schema = dataset.schema.qualify(self.alias)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        partitions = []
        for worker, partition in enumerate(dataset.partitions):
            ctx.metrics.operator_invocations += len(partition)
            out = [Record(schema, record.values) for record in partition]
            stage.charge(worker, len(out) * model.record_touch)
            partitions.append(out)
        stage.records_in = stage.records_out = sum(len(p) for p in partitions)
        # A dataset may have fewer/more partitions than the query context;
        # normalise to the cluster's partition count.
        partitions = _normalize(partitions, ctx.num_partitions)
        return OperatorResult(partitions, schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        dataset = ctx.cluster.dataset(self.dataset_name)
        schema = dataset.schema.qualify(self.alias)
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        worker_batches = []
        total = 0
        for worker, partition in enumerate(dataset.partitions):
            batches = batches_from_rows(
                ctx, schema, [record.values for record in partition]
            )
            ctx.metrics.operator_invocations += len(batches)
            stage.charge(worker, len(partition) * model.record_touch)
            total += len(partition)
            worker_batches.append(batches)
        stage.records_in = stage.records_out = total
        # The same partition-level round robin as the row path, on batch
        # lists — row order per worker comes out identical.
        worker_batches = _normalize(worker_batches, ctx.num_partitions)
        return BatchResult(worker_batches, schema)


class Values(PhysicalOperator):
    """A literal in-memory source (used by tests and the standalone path)."""

    label = "values"

    def __init__(self, schema: Schema, rows) -> None:
        super().__init__()
        self.schema = schema
        self.rows = [
            row if isinstance(row, Record) else Record.from_dict(schema, row)
            for row in rows
        ]

    def describe(self) -> str:
        return f"VALUES ({len(self.rows)} rows)"

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        partitions = [[] for _ in range(ctx.num_partitions)]
        for i, record in enumerate(self.rows):
            partitions[i % ctx.num_partitions].append(record)
        ctx.metrics.operator_invocations += len(self.rows)
        stage = ctx.metrics.stage(self.stage_name)
        stage.records_in = stage.records_out = len(self.rows)
        return OperatorResult(partitions, self.schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        rows_per_worker = [[] for _ in range(ctx.num_partitions)]
        for i, record in enumerate(self.rows):
            rows_per_worker[i % ctx.num_partitions].append(record.values)
        worker_batches = [
            batches_from_rows(ctx, self.schema, rows)
            for rows in rows_per_worker
        ]
        ctx.metrics.operator_invocations += sum(
            len(batches) for batches in worker_batches
        )
        stage = ctx.metrics.stage(self.stage_name)
        stage.records_in = stage.records_out = len(self.rows)
        return BatchResult(worker_batches, self.schema)


def _normalize(partitions: list, target: int) -> list:
    """Redistribute partition lists to exactly ``target`` partitions."""
    if len(partitions) == target:
        return partitions
    out = [[] for _ in range(target)]
    for i, partition in enumerate(partitions):
        out[i % target].extend(partition)
    return out
