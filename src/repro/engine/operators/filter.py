"""Tuple-at-a-time operators — filter, project, map, limit, distinct —
each with a vectorized ``run_batches`` twin charging identically."""

from __future__ import annotations

from repro.engine import kernels
from repro.engine.batch import BatchResult, as_worker_batches
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.engine.record import Record, Schema


class Filter(PhysicalOperator):
    """Keep records for which ``predicate(record)`` is truthy.

    ``cost_units`` is the work charged per evaluation; the planner sets it
    to the cost model's ``comparison`` for cheap predicates and
    ``expensive_predicate`` for heavy UDFs such as ``ST_Contains``.
    """

    label = "filter"

    def __init__(self, child: PhysicalOperator, predicate,
                 cost_units: float = None, description: str = "") -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate
        self.cost_units = cost_units
        self.description = description

    def describe(self) -> str:
        return f"FILTER {self.description}".rstrip()

    def children(self) -> list:
        return [self.child]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        source = self.child.execute(ctx)
        stage = ctx.metrics.stage(self.stage_name)
        cost = self.cost_units if self.cost_units is not None else ctx.cost_model.comparison
        out = []
        for worker, partition in enumerate(source.partitions):
            ctx.metrics.operator_invocations += len(partition)
            kept = [r for r in partition if self.predicate(r)]
            stage.charge(worker, len(partition) * cost)
            ctx.metrics.comparisons += len(partition)
            out.append(kept)
        stage.records_in = len(source)
        stage.records_out = sum(len(p) for p in out)
        return OperatorResult(out, source.schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        source = self.child.execute(ctx)
        batches = as_worker_batches(source, ctx)
        stage = ctx.metrics.stage(self.stage_name)
        cost = (self.cost_units if self.cost_units is not None
                else ctx.cost_model.comparison)
        cursor = kernels.make_cursor(source.schema)
        out = []
        records_out = 0
        for worker, worker_batches in enumerate(batches):
            kept_batches = []
            rows = 0
            for batch in worker_batches:
                ctx.metrics.operator_invocations += 1
                kept = kernels.filter_batch(batch, self.predicate, cursor)
                rows += batch.num_rows
                if kept.num_rows:
                    ctx.metrics.note_batch(kept.num_rows)
                    kept_batches.append(kept)
                    records_out += kept.num_rows
            stage.charge(worker, rows * cost)
            ctx.metrics.comparisons += rows
            out.append(kept_batches)
        stage.records_in = len(source)
        stage.records_out = records_out
        return BatchResult(out, source.schema)


class Project(PhysicalOperator):
    """Keep only the named fields (pure column pruning)."""

    label = "project"

    def __init__(self, child: PhysicalOperator, field_names) -> None:
        super().__init__()
        self.child = child
        self.field_names = tuple(field_names)

    def describe(self) -> str:
        return f"PROJECT {', '.join(self.field_names)}"

    def children(self) -> list:
        return [self.child]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        source = self.child.execute(ctx)
        schema = Schema(self.field_names)
        indexes = [source.schema.index_of(name) for name in self.field_names]
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        out = []
        for worker, partition in enumerate(source.partitions):
            ctx.metrics.operator_invocations += len(partition)
            projected = [
                Record(schema, (r.values[i] for i in indexes)) for r in partition
            ]
            stage.charge(worker, len(partition) * model.record_touch)
            out.append(projected)
        stage.records_in = stage.records_out = len(source)
        return OperatorResult(out, schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        source = self.child.execute(ctx)
        batches = as_worker_batches(source, ctx)
        schema = Schema(self.field_names)
        indexes = [source.schema.index_of(name) for name in self.field_names]
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        out = []
        for worker, worker_batches in enumerate(batches):
            projected = []
            rows = 0
            for batch in worker_batches:
                ctx.metrics.operator_invocations += 1
                pruned = kernels.project_batch(batch, indexes, schema)
                ctx.metrics.note_batch(pruned.num_rows)
                projected.append(pruned)
                rows += batch.num_rows
            stage.charge(worker, rows * model.record_touch)
            out.append(projected)
        stage.records_in = stage.records_out = len(source)
        return BatchResult(out, schema)


class MapColumns(PhysicalOperator):
    """Compute output columns as functions of the input record.

    ``columns`` is a list of ``(name, fn, cost_units)``; each ``fn`` takes
    the input :class:`Record` and returns an already-boxed or plain value.
    """

    label = "map"

    def __init__(self, child: PhysicalOperator, columns) -> None:
        super().__init__()
        self.child = child
        self.columns = list(columns)

    def describe(self) -> str:
        return f"MAP {', '.join(name for name, _, _ in self.columns)}"

    def children(self) -> list:
        return [self.child]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        from repro.serde.values import box

        source = self.child.execute(ctx)
        schema = Schema(name for name, _, _ in self.columns)
        stage = ctx.metrics.stage(self.stage_name)
        row_cost = sum(cost for _, _, cost in self.columns)
        out = []
        for worker, partition in enumerate(source.partitions):
            ctx.metrics.operator_invocations += len(partition)
            mapped = [
                Record(schema, (box(fn(r)) for _, fn, _ in self.columns))
                for r in partition
            ]
            stage.charge(worker, len(partition) * row_cost)
            out.append(mapped)
        stage.records_in = stage.records_out = len(source)
        return OperatorResult(out, schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        source = self.child.execute(ctx)
        batches = as_worker_batches(source, ctx)
        schema = Schema(name for name, _, _ in self.columns)
        stage = ctx.metrics.stage(self.stage_name)
        row_cost = sum(cost for _, _, cost in self.columns)
        cursor = kernels.make_cursor(source.schema)
        out = []
        for worker, worker_batches in enumerate(batches):
            mapped = []
            rows = 0
            for batch in worker_batches:
                ctx.metrics.operator_invocations += 1
                computed = kernels.map_batch(batch, self.columns, schema,
                                             cursor)
                ctx.metrics.note_batch(computed.num_rows)
                mapped.append(computed)
                rows += batch.num_rows
            stage.charge(worker, rows * row_cost)
            out.append(mapped)
        stage.records_in = stage.records_out = len(source)
        return BatchResult(out, schema)


class Limit(PhysicalOperator):
    """Global LIMIT [OFFSET]: results are gathered to the coordinator,
    ``offset`` rows skipped, then ``count`` rows kept."""

    label = "limit"

    def __init__(self, child: PhysicalOperator, count: int,
                 offset: int = 0) -> None:
        super().__init__()
        if count < 0:
            raise ValueError(f"LIMIT must be non-negative, got {count}")
        if offset < 0:
            raise ValueError(f"OFFSET must be non-negative, got {offset}")
        self.child = child
        self.count = count
        self.offset = offset

    def describe(self) -> str:
        text = f"LIMIT {self.count}"
        if self.offset:
            text += f" OFFSET {self.offset}"
        return text

    def children(self) -> list:
        return [self.child]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        source = self.child.execute(ctx)
        stage = ctx.metrics.stage(self.stage_name)
        taken = []
        skipped = 0
        for partition in source.partitions:
            for record in partition:
                if skipped < self.offset:
                    skipped += 1
                    continue
                if len(taken) == self.count:
                    break
                taken.append(record)
        stage.records_in = len(source)
        stage.records_out = len(taken)
        partitions = [[] for _ in range(ctx.num_partitions)]
        partitions[0] = taken
        return OperatorResult(partitions, source.schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        source = self.child.execute(ctx)
        batches = as_worker_batches(source, ctx)
        stage = ctx.metrics.stage(self.stage_name)
        gathered = []
        to_skip = self.offset
        taken = 0
        for worker_batches in batches:
            for batch in worker_batches:
                rows = batch.num_rows
                if to_skip >= rows:
                    to_skip -= rows
                    continue
                start = to_skip
                to_skip = 0
                take = min(self.count - taken, rows - start)
                if take <= 0:
                    continue
                piece = batch.take(range(start, start + take))
                ctx.metrics.note_batch(piece.num_rows)
                gathered.append(piece)
                taken += take
        stage.records_in = len(source)
        stage.records_out = taken
        out = [[] for _ in range(ctx.num_partitions)]
        out[0] = gathered
        return BatchResult(out, source.schema)


class Distinct(PhysicalOperator):
    """Global DISTINCT: rows are shuffled by their full value so equal
    rows co-locate, then deduplicated per worker."""

    label = "distinct"

    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__()
        self.child = child

    def describe(self) -> str:
        return "DISTINCT"

    def children(self) -> list:
        return [self.child]

    def run(self, ctx: ExecutionContext) -> OperatorResult:
        from repro.engine.exchange import hash_exchange

        source = self.child.execute(ctx)
        shuffled = hash_exchange(
            source.partitions, lambda record: record.values, ctx,
            f"{self.stage_name}/shuffle",
        )
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        out = []
        for worker, partition in enumerate(shuffled):
            ctx.metrics.operator_invocations += len(partition)
            seen = set()
            rows = []
            for record in partition:
                if record.values in seen:
                    continue
                seen.add(record.values)
                rows.append(record)
            stage.charge(worker, len(partition) * model.hash_op)
            out.append(rows)
        stage.records_in = len(source)
        stage.records_out = sum(len(p) for p in out)
        return OperatorResult(out, source.schema)

    def run_batches(self, ctx: ExecutionContext) -> BatchResult:
        from repro.engine.exchange import hash_exchange_batches

        source = self.child.execute(ctx)
        # Row mode keys the shuffle on ``record.values`` — the same value
        # tuple a batch row *is* — so routing matches bit-for-bit.
        shuffled = hash_exchange_batches(
            as_worker_batches(source, ctx), lambda row: row, ctx,
            f"{self.stage_name}/shuffle", source.schema,
        )
        stage = ctx.metrics.stage(self.stage_name)
        model = ctx.cost_model
        out = []
        records_out = 0
        for worker, worker_batches in enumerate(shuffled):
            seen = set()
            deduped = []
            rows = 0
            for batch in worker_batches:
                ctx.metrics.operator_invocations += 1
                unique = kernels.distinct_batch(batch, seen)
                rows += batch.num_rows
                if unique.num_rows:
                    ctx.metrics.note_batch(unique.num_rows)
                    deduped.append(unique)
                    records_out += unique.num_rows
            stage.charge(worker, rows * model.hash_op)
            out.append(deduped)
        stage.records_in = len(source)
        stage.records_out = records_out
        return BatchResult(out, source.schema)
