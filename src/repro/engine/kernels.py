"""Vectorized kernels over :class:`~repro.engine.batch.RecordBatch`.

Each kernel processes one batch per call — one engine dispatch instead
of one per record — and leaves cost charging to its caller, which
accumulates integer row counts and charges once per worker with the
row-mode cost expression (the byte-parity rule; see
``docs/batched_execution.md``).

The kernel contract for per-row callbacks (predicates, map functions,
group-key extractors, aggregate folds):

* Callbacks receive a **cursor record** — a single reusable
  :class:`~repro.engine.record.Record` whose ``values`` tuple is swapped
  for every row.  They may read fields and keep any *values* they
  extract (boxed values are immutable), but must not retain the cursor
  object itself across rows.
* Exchange key functions receive the raw value **tuple** instead (row
  mode keys on ``record.values``, so the hashes match by construction).
* Kernels never mutate column lists in place; filtered and projected
  batches are views sharing their parent's columns.
"""

from __future__ import annotations

from repro.engine.batch import RecordBatch
from repro.engine.record import Record, Schema
from repro.serde.values import NULL, box


def make_cursor(schema: Schema) -> Record:
    """A reusable row cursor for running row-level callbacks over a
    batch without allocating one record per row."""
    return Record(schema, (NULL,) * len(schema))


def filter_batch(batch: RecordBatch, predicate, cursor: Record) -> RecordBatch:
    """Selection-vector filter: keep live rows passing ``predicate``.

    Returns a zero-copy view over the input batch's columns.
    """
    kept = []
    position = 0
    for row in batch.iter_rows():
        cursor.values = row
        if predicate(cursor):
            kept.append(position)
        position += 1
    return batch.take(kept)


def project_batch(batch: RecordBatch, indexes, out_schema: Schema) -> RecordBatch:
    """Column pruning: reorder/drop columns without touching row data."""
    columns = batch.columns
    return RecordBatch(out_schema, [columns[i] for i in indexes],
                       selection=batch.selection, rows=batch.num_rows)


def map_batch(batch: RecordBatch, column_specs, out_schema: Schema,
              cursor: Record) -> RecordBatch:
    """Evaluate ``(name, fn, cost)`` column specs over every live row."""
    out_columns = [[] for _ in column_specs]
    for row in batch.iter_rows():
        cursor.values = row
        for j, (_, fn, _) in enumerate(column_specs):
            out_columns[j].append(box(fn(cursor)))
    return RecordBatch(out_schema, out_columns, rows=batch.num_rows)


def distinct_batch(batch: RecordBatch, seen: set) -> RecordBatch:
    """Keep the first occurrence of each row value tuple, folding into
    the caller's cross-batch ``seen`` set."""
    kept = []
    position = 0
    for row in batch.iter_rows():
        if row not in seen:
            seen.add(row)
            kept.append(position)
        position += 1
    return batch.take(kept)


def scatter_batch(batch: RecordBatch, key_fn, num_partitions: int,
                  worker: int, out_rows, moved) -> None:
    """Hash-partition one batch's rows into per-target row lists.

    ``key_fn`` takes the raw value tuple.  Rows leaving ``worker`` are
    also appended to ``moved`` (the exchange's network accounting input,
    in send order — the sampled-size estimator depends on that order).
    """
    for row in batch.iter_rows():
        target = hash(key_fn(row)) % num_partitions
        out_rows[target].append(row)
        if target != worker:
            moved.append(row)


def fold_groups(batch: RecordBatch, keys, aggregates, table: dict,
                cursor: Record) -> None:
    """Phase-1 GROUP BY fold of one batch into a per-worker hash table.

    Mirrors the row loop exactly: dict insertion order (and so partial
    emission order) matches the row engine's.
    """
    for row in batch.iter_rows():
        cursor.values = row
        key = tuple(key_fn(cursor) for _, key_fn in keys)
        states = table.get(key)
        if states is None:
            states = [agg.init() for agg in aggregates]
            table[key] = states
        for i, agg in enumerate(aggregates):
            states[i] = agg.add(states[i], cursor)


def fold_scalar(batch: RecordBatch, aggregates, states: list,
                cursor: Record) -> None:
    """Fold one batch into scalar-aggregate partial states."""
    for row in batch.iter_rows():
        cursor.values = row
        for i, agg in enumerate(aggregates):
            states[i] = agg.add(states[i], cursor)
