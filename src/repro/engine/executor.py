"""Physical plan execution entry point."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.cluster import Cluster
from repro.engine.context import ExecutionContext
from repro.engine.metrics import QueryMetrics
from repro.engine.operators.base import OperatorResult, PhysicalOperator


@dataclass
class QueryResult:
    """What a query returns: rows (as plain dicts) plus metrics.

    ``rows`` are materialized in result order (sorted plans put their
    output on worker 0 first).
    """

    rows: list
    schema: tuple
    metrics: QueryMetrics

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        """All values of one output column."""
        return [row[name] for row in self.rows]


def execute_plan(plan: PhysicalOperator, cluster: Cluster,
                 measure_bytes: bool = True) -> QueryResult:
    """Execute a physical plan on a cluster and collect rows + metrics."""
    ctx = ExecutionContext(cluster, measure_bytes=measure_bytes)
    started = time.perf_counter()
    result: OperatorResult = plan.execute(ctx)
    ctx.metrics.wall_seconds = time.perf_counter() - started
    metrics = ctx.finish()
    metrics.output_records = len(result)
    rows = [record.to_dict() for record in result.all_records()]
    return QueryResult(rows, result.schema.fields, metrics)
