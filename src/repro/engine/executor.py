"""Physical plan execution entry point."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.cluster import Cluster
from repro.engine.context import ExecutionContext
from repro.engine.faults import FaultPlan
from repro.engine.metrics import QueryMetrics
from repro.engine.operators.base import OperatorResult, PhysicalOperator
from repro.engine.tracing import Trace


@dataclass
class QueryResult:
    """What a query returns: rows (as plain dicts) plus metrics.

    ``rows`` are materialized in result order (sorted plans put their
    output on worker 0 first).  ``trace`` is the structured span trace
    (:class:`~repro.engine.tracing.Trace`) when the query ran with
    tracing enabled, else None.
    """

    rows: list
    schema: tuple
    metrics: QueryMetrics
    trace: Trace = None
    #: Core count of the cluster the query ran on — the default for
    #: per-core views like ``to_dict(cores=...)`` and the shell's timing
    #: line, so the recorded simulated seconds reflect the cluster that
    #: actually executed the plan.
    cores: int = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        """All values of one output column."""
        return [row[name] for row in self.rows]

    def to_dict(self, cores: int = None) -> dict:
        """A JSON-ready summary: row count, schema, and the stable
        metrics dict (:meth:`QueryMetrics.to_dict
        <repro.engine.metrics.QueryMetrics.to_dict>`) — the same field
        list telemetry records, so callers never pluck metrics fields
        ad hoc.  ``cores`` defaults to the executing cluster's core
        count, so ``simulated_seconds`` is present (and meaningful)
        without every caller re-plumbing the cluster config."""
        if cores is None:
            cores = self.cores
        return {
            "rows": len(self.rows),
            "schema": list(self.schema),
            "metrics": self.metrics.to_dict(cores),
        }


def execute_plan(plan: PhysicalOperator, cluster: Cluster,
                 measure_bytes: bool = True, fault_plan: FaultPlan = None,
                 on_error: str = "fail",
                 timeout_seconds: float = None,
                 trace: bool = False,
                 resources=None,
                 breaker=None,
                 pool=None,
                 execution: str = "row",
                 batch_rows: int = None,
                 events=None,
                 cancel=None) -> QueryResult:
    """Execute a physical plan on a cluster and collect rows + metrics.

    Args:
        plan: the physical plan to run.
        cluster: the simulated cluster holding the datasets.
        measure_bytes: exact (True) vs sampled shuffle byte accounting.
        fault_plan: optional seeded fault injection + recovery schedule.
        on_error: degraded-mode policy for per-record FUDJ callbacks
            (``fail`` / ``skip`` / ``quarantine``).
        timeout_seconds: per-query wall-clock budget; exceeding it raises
            :class:`~repro.errors.QueryTimeoutError` at the next
            cancellation point.
        trace: record a structured span trace (phase/callback tree, skew
            diagnostics) on :attr:`QueryResult.trace`.  Adds zero charged
            cost — the simulated makespan is identical either way.
        resources: per-query memory accountant
            (:class:`~repro.engine.resources.QueryResources`); created in
            pure-pricing mode when not given.
        breaker: shared FUDJ callback circuit breaker
            (:class:`~repro.engine.resources.CircuitBreaker`), or None.
        pool: process-pool backend — a
            :class:`~repro.engine.workers.WorkerPool` or a lazy provider
            of one; None (the default) runs the query serially.
        execution: ``"row"`` (default) or ``"batch"`` — vectorized
            operators run over columnar record batches; rows and
            deterministic metrics are byte-identical either way.
        batch_rows: rows per batch under batched execution (None keeps
            :data:`~repro.engine.batch.DEFAULT_BATCH_ROWS`).
        events: a bound event emitter
            (:meth:`~repro.engine.events.EventLog.scoped`); None keeps
            the inert null emitter.
        cancel: optional cooperative
            :class:`~repro.engine.cancel.CancellationToken`; cancelling
            it from any thread aborts the query with
            :class:`~repro.errors.QueryCancelledError` at the next
            engine checkpoint, with the same clean unwind as a timeout
            (spill files dropped, pool leases abandoned).
    """
    ctx = ExecutionContext(
        cluster, measure_bytes=measure_bytes, fault_plan=fault_plan,
        on_error=on_error, timeout_seconds=timeout_seconds, trace=trace,
        resources=resources, breaker=breaker, pool=pool,
        execution=execution, batch_rows=batch_rows, events=events,
        cancel=cancel,
    )
    started = time.perf_counter()
    try:
        result: OperatorResult = plan.execute(ctx)
    except BaseException:
        # Failed queries must not leak spill files, and an aborted pool
        # query must not leave its workers' stale results queued.
        ctx.resources.close()
        active = ctx._pool
        if active is not None:
            active.cancel_active()
        raise
    metrics = ctx.finish()
    metrics.output_records = len(result)
    rows = [record.to_dict() for record in result.all_records()]
    # Stamp the wall clock only after row materialization — building the
    # result dicts is part of what the caller waits for.  The root trace
    # span covers the same window, so it stays >= the sum of its children.
    metrics.wall_seconds = time.perf_counter() - started
    query_trace = ctx.tracer.finish(wall_seconds=metrics.wall_seconds)
    return QueryResult(rows, result.schema.fields, metrics, query_trace,
                       cores=cluster.cores)
