"""Partitioned datasets stored across the simulated cluster."""

from __future__ import annotations

from repro.engine.record import Record, Schema
from repro.errors import ExecutionError


class PartitionedDataset:
    """A dataset split into ``num_partitions`` lists of records.

    Storage partitioning is by hash of the primary key (like AsterixDB's
    hash-partitioned storage), so scans are evenly spread and equality
    predicates on the key could be routed — the engine only relies on the
    even spread.
    """

    __slots__ = ("name", "schema", "partitions", "primary_key",
                 "_bytes_cache")

    def __init__(self, name: str, schema: Schema, num_partitions: int,
                 primary_key: str = None) -> None:
        if num_partitions < 1:
            raise ExecutionError(f"need >= 1 partition, got {num_partitions}")
        self.name = name
        self.schema = schema
        self.partitions = [[] for _ in range(num_partitions)]
        self.primary_key = primary_key
        self._bytes_cache = None

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def __repr__(self) -> str:
        return (
            f"PartitionedDataset({self.name!r}, {len(self)} records, "
            f"{self.num_partitions} partitions)"
        )

    def insert(self, mapping) -> None:
        """Insert one row (a plain mapping); routed by primary-key hash."""
        record = Record.from_dict(self.schema, mapping)
        self._place(record)

    def insert_record(self, record: Record) -> None:
        """Insert an already-built record."""
        if record.schema != self.schema:
            raise ExecutionError(
                f"record schema {record.schema} does not match dataset "
                f"schema {self.schema}"
            )
        self._place(record)

    def _place(self, record: Record) -> None:
        if self.primary_key is not None:
            key = record[self.primary_key]
            index = hash(key) % self.num_partitions
        else:
            index = len(self) % self.num_partitions
        self.partitions[index].append(record)
        self._bytes_cache = None

    def bulk_load(self, rows) -> int:
        """Insert an iterable of mappings; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def total_bytes(self) -> int:
        """Wire size of the whole dataset — the catalog statistic the
        admission controller uses to estimate a query's reservation.
        Cached until the next insert (bulk loads invalidate per row but
        the sum is only computed on demand)."""
        if self._bytes_cache is None:
            self._bytes_cache = sum(
                record.serialized_size() for record in self.scan()
            )
        return self._bytes_cache

    def scan(self):
        """Yield every record (all partitions, in partition order)."""
        for partition in self.partitions:
            yield from partition

    def clone_partitions(self) -> list:
        """Shallow-copied partition lists, safe for operators to consume."""
        return [list(p) for p in self.partitions]
