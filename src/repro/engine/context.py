"""Execution context shared by every physical operator in one query."""

from __future__ import annotations

from repro.engine.cluster import Cluster
from repro.engine.metrics import QueryMetrics
from repro.serde.translator import Translator


class ExecutionContext:
    """Everything an operator needs at runtime.

    Attributes:
        cluster: the simulated cluster (datasets + cost model).
        metrics: cost accounting sink for this query.
        translator: the FUDJ boundary translator (shared so that the
            per-query conversion count is meaningful).
        measure_bytes: when False, exchanges estimate record sizes from a
            sample instead of serializing every record — a speed knob for
            large benchmark sweeps; accuracy tests keep it True.
    """

    def __init__(self, cluster: Cluster, metrics: QueryMetrics = None,
                 measure_bytes: bool = True) -> None:
        self.cluster = cluster
        self.metrics = metrics or QueryMetrics(cluster.cost_model)
        self.translator = Translator()
        self.measure_bytes = measure_bytes

    @property
    def num_partitions(self) -> int:
        return self.cluster.num_partitions

    @property
    def cost_model(self):
        return self.cluster.cost_model

    def finish(self) -> QueryMetrics:
        """Fold translator counters into the metrics and return them."""
        self.metrics.translation_conversions = self.translator.total_conversions
        return self.metrics
