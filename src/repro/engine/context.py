"""Execution context shared by every physical operator in one query."""

from __future__ import annotations

import time

from repro.engine.cluster import Cluster
from repro.engine.events import NULL_EVENTS
from repro.engine.faults import FaultPlan, stage_key
from repro.engine.metrics import QueryMetrics
from repro.engine.tracing import Tracer
from repro.errors import ExecutionError, QueryTimeoutError, TaskFailedError
from repro.serde.translator import Translator

#: Degraded-mode policies for per-record FUDJ callbacks.
ERROR_POLICIES = ("fail", "skip", "quarantine")


class ExecutionContext:
    """Everything an operator needs at runtime.

    Attributes:
        cluster: the simulated cluster (datasets + cost model).
        metrics: cost accounting sink for this query.
        translator: the FUDJ boundary translator (shared so that the
            per-query conversion count is meaningful).
        measure_bytes: when False, exchanges estimate record sizes from a
            sample instead of serializing every record — a speed knob for
            large benchmark sweeps; accuracy tests keep it True.
        fault_plan: optional :class:`~repro.engine.faults.FaultPlan`;
            when set, per-worker tasks and exchange sends suffer seeded
            crashes/stragglers/transient failures and exchanges
            checkpoint their outputs.
        on_error: what to do when a per-record FUDJ callback raises —
            ``"fail"`` aborts the query (the classic behaviour),
            ``"skip"`` drops the poison record, ``"quarantine"`` drops
            it and keeps a per-phase error report in the metrics.
        timeout_seconds: wall-clock budget; checked at stage boundaries
            and task attempts, so cancellation is clean.
        cancel: optional
            :class:`~repro.engine.cancel.CancellationToken`; another
            thread cancelling it aborts the query with
            :class:`~repro.errors.QueryCancelledError` at the next
            checkpoint (the same points the timeout is checked, plus
            every guarded FUDJ callback).
        trace: record a structured span trace of the execution (see
            :mod:`repro.engine.tracing`); the :attr:`tracer` is always
            present but inert unless this is True.
        resources: the per-query memory accountant
            (:class:`~repro.engine.resources.QueryResources`); one is
            created in pure-pricing mode when not given, so operators can
            always route their resident state through :meth:`admit`.
        breaker: optional shared
            :class:`~repro.engine.resources.CircuitBreaker` tracking
            consecutive FUDJ callback failures across queries.
        pool: optional process-pool backend — a
            :class:`~repro.engine.workers.WorkerPool`, or a zero-argument
            provider returning one (resolved lazily on the first combine
            stage, so the serial backend never forks).  None keeps the
            query on the serial backend.
        execution: ``"row"`` (the default record-at-a-time loops) or
            ``"batch"`` — operators with a vectorized path run their
            ``run_batches`` hook over columnar
            :class:`~repro.engine.batch.RecordBatch` data instead.
            Rows and deterministic metrics are byte-identical either way.
        batch_rows: rows per batch under batched execution (defaults to
            :data:`~repro.engine.batch.DEFAULT_BATCH_ROWS`).
    """

    def __init__(self, cluster: Cluster, metrics: QueryMetrics = None,
                 measure_bytes: bool = True, fault_plan: FaultPlan = None,
                 on_error: str = "fail",
                 timeout_seconds: float = None,
                 trace: bool = False,
                 resources=None,
                 breaker=None,
                 pool=None,
                 execution: str = "row",
                 batch_rows: int = None,
                 events=None,
                 cancel=None) -> None:
        from repro.engine.batch import DEFAULT_BATCH_ROWS, EXECUTION_MODES

        if on_error not in ERROR_POLICIES:
            raise ExecutionError(
                f"unknown error policy {on_error!r}; use fail/skip/quarantine"
            )
        if execution not in EXECUTION_MODES:
            raise ExecutionError(
                f"unknown execution mode {execution!r}; "
                f"use {'/'.join(EXECUTION_MODES)}"
            )
        self.execution = execution
        self.batch_rows = (DEFAULT_BATCH_ROWS if batch_rows is None
                           else max(1, int(batch_rows)))
        self.cluster = cluster
        self.metrics = metrics or QueryMetrics(cluster.cost_model)
        self.translator = Translator()
        self.measure_bytes = measure_bytes
        self.fault_plan = fault_plan
        self.on_error = on_error
        self.timeout_seconds = timeout_seconds
        if resources is None:
            from repro.engine.resources import QueryResources

            resources = QueryResources(cluster.cost_model)
        self.resources = resources
        self.events = NULL_EVENTS if events is None else events
        self.cancel = cancel
        self.breaker = breaker
        self._breaker_ok = set()
        self._pool_source = pool
        self._pool = pool if (pool is None or hasattr(pool, "run_tasks")) \
            else None
        self.tracer = Tracer(enabled=trace)
        self._deadline = (
            None if timeout_seconds is None
            else time.perf_counter() + timeout_seconds
        )
        # Every new stage is a cancellation point; with tracing on, every
        # new stage also mirrors its charges into the open span.
        self.metrics.stage_observer = self._observe_stage

    def _observe_stage(self, stage) -> None:
        self.check_timeout()
        if self.tracer.enabled:
            stage.on_charge = self.tracer.record_units

    @property
    def num_partitions(self) -> int:
        return self.cluster.num_partitions

    @property
    def cost_model(self):
        return self.cluster.cost_model

    @property
    def checkpointing(self) -> bool:
        """Whether exchanges spool their outputs to the checkpoint store."""
        return self.fault_plan is not None and self.fault_plan.checkpoint

    # -- process-pool backend --------------------------------------------------

    def active_pool(self):
        """The live :class:`~repro.engine.workers.WorkerPool` for this
        query, or None (serial backend, a provider that failed, or a pool
        that went unhealthy mid-query and degraded to serial)."""
        if self._pool is None and self._pool_source is not None:
            source = self._pool_source
            self._pool_source = None  # resolve the provider at most once
            try:
                self._pool = source()
            except Exception:
                self._pool = None
        pool = self._pool
        if pool is None or not getattr(pool, "healthy", False):
            return None
        return pool

    def pool_tick(self) -> None:
        """Between-stage pool upkeep (exchanges call this): recycle
        workers that died while idle, drain stale results.  No-op on the
        serial backend; never resolves a provider early."""
        pool = self._pool
        if pool is not None and getattr(pool, "healthy", False):
            pool.tick()

    # -- memory accounting -----------------------------------------------------

    def admit(self, stage, worker: int, items: list, codec,
              price: bool = True) -> list:
        """Route one worker's resident collection through the memory
        accountant; see :meth:`QueryResources.admit
        <repro.engine.resources.QueryResources.admit>`.  Returns the list
        the operator must use (spilled items come back as replayed
        clones in their original positions)."""
        return self.resources.admit(self, stage, worker, items, codec,
                                    price=price)

    # -- cancellation ----------------------------------------------------------

    def check_timeout(self) -> None:
        """Raise :class:`QueryTimeoutError` once the deadline has passed,
        or :class:`~repro.errors.QueryCancelledError` once the query's
        cancellation token is cancelled.  Every timeout checkpoint is a
        cancellation checkpoint: the two halves of request robustness
        share one set of engine boundaries."""
        if self.cancel is not None:
            self.cancel.check()
        if self._deadline is None:
            return
        now = time.perf_counter()
        if now > self._deadline:
            elapsed = self.timeout_seconds + (now - self._deadline)
            raise QueryTimeoutError(elapsed, self.timeout_seconds)

    #: Alias making call sites self-documenting where the asynchronous
    #: (token) half is the point — operator/batch/exchange boundaries.
    check_cancel = check_timeout

    # -- task-level fault injection and recovery -------------------------------

    def run_task(self, stage, worker: int, fn, input_bytes: float = 0.0):
        """Run one per-worker task with crash/straggler injection.

        ``fn`` computes the task result, charging its work to ``stage``
        for ``worker`` as usual; it must be free of other side effects so
        a replay is safe.  On an injected crash the attempt's output is
        lost *after* the work was done: the wasted units stay charged,
        result-visible counters (comparisons, quarantines) are rolled
        back, and the task is replayed after a capped exponential
        backoff plus a checkpoint restore of ``input_bytes``.  A
        straggling task is cut short by a speculative copy once it
        overruns detection.  Every recovery charge lands in the normal
        stage accounting, so the simulated makespan reflects it.
        """
        self.metrics.operator_invocations += 1
        plan = self.fault_plan
        if (plan is None or not plan.any_faults()
                or not plan.active_for(stage.name)):
            self.check_timeout()  # every task attempt is a cancellation point
            return fn()
        model = self.cost_model
        metrics = self.metrics
        key = stage_key(stage.name)
        attempt = 0
        while True:
            self.check_timeout()
            units_before = stage.worker_units.get(worker, 0.0)
            comparisons = metrics.comparisons
            quarantined = metrics.records_quarantined
            log_length = len(metrics.quarantine_log)
            result = fn()
            units = stage.worker_units.get(worker, 0.0) - units_before
            if not plan.crashes(key, worker, attempt):
                break
            # The attempt's output is lost: keep the wasted work charged,
            # roll back the logical counters, and replay from the stage's
            # checkpointed input — not from the start of the plan.
            metrics.comparisons = comparisons
            metrics.records_quarantined = quarantined
            del metrics.quarantine_log[log_length:]
            attempt += 1
            if attempt > plan.max_task_retries:
                raise TaskFailedError(stage.name, worker, attempt)
            backoff = plan.backoff_seconds(attempt)
            restore = model.checkpoint_restore_units(input_bytes)
            penalty = backoff * model.core_ops_per_second + restore
            stage.charge(worker, penalty)
            metrics.tasks_retried += 1
            metrics.recovery_seconds += model.cpu_seconds(units + penalty)
            self.events.emit("fault.retry", stage=stage.name, worker=worker,
                             attempt=attempt, backoff_seconds=backoff)
        if plan.straggles(key, worker) and units > 0.0:
            # Left alone the task runs ``slowdown`` times slower; the
            # speculative copy kicks in at detection and replays from the
            # checkpoint, whichever finishes first wins.
            crawl = units * (plan.straggler_slowdown - 1.0)
            speculate = (units * plan.straggler_detect_factor
                         + model.checkpoint_restore_units(input_bytes))
            extra = min(crawl, speculate)
            stage.charge(worker, extra)
            metrics.stragglers_detected += 1
            metrics.recovery_seconds += model.cpu_seconds(extra)
            self.events.emit("fault.straggler", stage=stage.name,
                             worker=worker, extra_units=round(extra, 6))
        return result

    def guard_record(self, join_name: str, phase: str, fn, *args,
                     detail=None):
        """Invoke a per-record FUDJ callback under the error policy.

        Returns ``(ok, value)``: on success ``(True, result)``; when the
        callback raises and the policy is ``skip`` or ``quarantine`` the
        record is dropped and ``(False, None)`` comes back.  ``fail``
        re-raises as :class:`~repro.errors.FudjCallbackError`.  ``detail``
        is the poison record (or key pair) — rendered into the quarantine
        report only when an error actually fires.

        With tracing enabled, every invocation (including failed ones) is
        folded into the aggregated callback span named ``phase`` under
        the currently open span.
        """
        from repro.errors import FudjCallbackError

        # Checked before the try so a cancel can never be swallowed by a
        # skip/quarantine policy: slow user callbacks abort record by
        # record, not phase by phase.
        if self.cancel is not None:
            self.cancel.check()
        tracer = self.tracer
        timed = tracer.enabled
        started = time.perf_counter() if timed else 0.0
        try:
            result = fn(*args)
        except Exception as exc:
            if timed:
                tracer.record_call(
                    phase, time.perf_counter() - started, ok=False
                )
            if self.breaker is not None and not isinstance(
                    exc, QueryTimeoutError):
                self.breaker.record_failure(join_name)
            if self.on_error == "fail" or isinstance(exc, QueryTimeoutError):
                if isinstance(exc, FudjCallbackError):
                    raise
                raise FudjCallbackError(join_name, phase, exc) from exc
            if self.on_error == "quarantine":
                self.metrics.note_quarantine(
                    phase, join_name, exc,
                    None if detail is None else repr(detail),
                )
            else:  # skip: count the drop, keep no report
                self.metrics.records_quarantined += 1
            return False, None
        if timed:
            tracer.record_call(phase, time.perf_counter() - started)
        self.note_breaker_success(join_name)
        return True, result

    def note_breaker_success(self, join_name: str) -> None:
        """Remember a healthy callback; the breaker streak only resets
        when the whole query completes (see :meth:`finish`), so a failing
        query cannot launder its streak through its own earlier
        successes."""
        if self.breaker is not None:
            self._breaker_ok.add(join_name)

    def finish(self) -> QueryMetrics:
        """Fold translator + resource counters into the metrics, drop any
        spill files, and return the metrics."""
        self.metrics.translation_conversions = self.translator.total_conversions
        self.resources.fold_into(self.metrics)
        self.resources.close()
        if self.breaker is not None:
            for join_name in sorted(self._breaker_ok):
                self.breaker.record_success(join_name)
        return self.metrics
