"""Structured span tracing: where time goes *inside* a query.

:class:`QueryMetrics` answers "how much work did each stage charge";
this module answers "where inside a phase did it go" — the paper's
Fig. 9 breakdown (user callbacks vs. engine shuffle vs. verification)
at query granularity.  A :class:`Tracer` records a tree of
:class:`Span` objects:

- the root ``query`` span covers the whole execution (including result
  materialization, mirroring ``QueryMetrics.wall_seconds``);
- every physical operator opens an ``operator`` span (the span tree is
  therefore shaped exactly like the physical plan);
- :class:`~repro.engine.operators.fudj_join.FudjJoin` opens nested
  ``phase`` spans (SUMMARIZE / PARTITION / COMBINE) with ``stage`` and
  ``exchange`` spans below them;
- every user callback (``local_aggregate``, ``global_aggregate``,
  ``divide``, ``assign``, ``match``, ``verify``, ``dedup``,
  ``local_join``) aggregates into one ``callback`` span per enclosing
  stage, carrying call counts, error counts, charged units, and wall
  time.

Accounting invariants (tested in ``tests/test_tracing.py``):

- **No double counting.** ``Span.units`` is *exclusive* (own work only);
  charges mirrored from :meth:`StageMetrics.charge` land on the span
  open at charge time, and :meth:`Tracer.attribute` *moves* units from a
  stage span to one of its callback children.  Hence
  ``trace.total_units() == QueryMetrics.total_cpu_units()`` always.
- **Monotonic wall time.** Span wall clocks come from
  ``time.perf_counter`` and spans nest strictly, so the summed wall time
  of a span's children never exceeds the parent's
  (:meth:`Trace.validate_wall`).
- **Determinism.** :meth:`Trace.to_dict` and the Chrome-trace exporter
  (with the default ``clock="units"``) contain only charged units and
  counters — no wall clocks — so repeated runs of the same query (same
  data, same fault plan) serialize byte-identically.

Tracing is strictly opt-in: a disabled tracer short-circuits every hot
path (one attribute load + branch), and it never charges work to the
cost model, so the simulated makespan is identical with tracing on or
off (asserted by ``benchmarks/bench_observability.py``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

#: Span kinds, outermost to innermost.  ``worker`` spans are emitted by
#: the process backend under a ``stage`` span, one per pool task; their
#: wall time lives in ``meta`` (tasks overlap, so summing them against
#: the parent's wall clock would be meaningless).
SPAN_KINDS = ("query", "operator", "phase", "stage", "exchange", "callback",
              "worker")


class Span:
    """One node of the trace tree.

    Attributes:
        name: display name (operator stage name, phase, callback name).
        kind: one of :data:`SPAN_KINDS`.
        units: work units charged *directly* to this span (exclusive —
            children hold their own; see :meth:`total_units`).
        wall_seconds: measured wall time.  Inclusive (open→close) for
            context-manager spans; accumulated across calls for
            ``callback`` spans.
        calls: invocation count (callback spans).
        errors: failed invocations (callback spans, degraded-mode drops).
        records_in / records_out: row counts copied from the matching
            metrics stage where one exists.
        network_bytes: bytes moved (exchange spans).
        meta: extra diagnostics, e.g. ``imbalance`` (max/mean per-worker
            units of the matching stage).
    """

    __slots__ = ("name", "kind", "units", "wall_seconds", "calls", "errors",
                 "records_in", "records_out", "network_bytes", "meta",
                 "children", "_callback_index")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.units = 0.0
        self.wall_seconds = 0.0
        self.calls = 0
        self.errors = 0
        self.records_in = 0
        self.records_out = 0
        self.network_bytes = 0.0
        self.meta = {}
        self.children = []
        self._callback_index = None

    def child(self, name: str, kind: str) -> "Span":
        span = Span(name, kind)
        self.children.append(span)
        return span

    def callback_child(self, name: str) -> "Span":
        """The aggregated callback span named ``name`` (created once)."""
        if self._callback_index is None:
            self._callback_index = {}
        span = self._callback_index.get(name)
        if span is None:
            span = self.child(name, "callback")
            self._callback_index[name] = span
        return span

    def copy_stage(self, stage) -> None:
        """Pull row/byte counters and worker imbalance off a metrics stage."""
        self.records_in = stage.records_in
        self.records_out = stage.records_out
        self.network_bytes = stage.network_bytes + stage.fabric_bytes
        workers = stage.worker_units
        if len(workers) > 1:
            mean = sum(workers.values()) / len(workers)
            if mean > 0:
                self.meta["imbalance"] = max(workers.values()) / mean

    # -- aggregate views ----------------------------------------------------

    def total_units(self) -> float:
        """Units charged in this span's whole subtree."""
        return self.units + sum(c.total_units() for c in self.children)

    def walk(self):
        """Yield every span in the subtree, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span":
        """First span in the subtree with this name (None if absent)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self, wall: bool = False) -> dict:
        """A JSON-ready dict.  ``wall=False`` (the default) omits wall
        clocks so the result is deterministic across runs."""
        out = {
            "name": self.name,
            "kind": self.kind,
            "units": round(self.units, 6),
            "calls": self.calls,
            "errors": self.errors,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "network_bytes": round(self.network_bytes, 6),
        }
        if self.meta:
            out["meta"] = {k: round(v, 6) if isinstance(v, float) else v
                           for k, v in sorted(self.meta.items())}
        if wall:
            out["wall_ms"] = self.wall_seconds * 1000.0
        if self.children:
            out["children"] = [c.to_dict(wall=wall) for c in self.children]
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, kind={self.kind}, "
                f"units={self.total_units():.0f}, "
                f"children={len(self.children)})")


class BucketSkew:
    """Skew diagnostics for one PARTITION (``assign``) stage.

    Built from the full per-bucket record histogram, so every standard
    skew question is answerable: replication factor, heaviest buckets,
    bucket imbalance.
    """

    __slots__ = ("name", "records_in", "histogram")

    def __init__(self, name: str, records_in: int, histogram: dict) -> None:
        self.name = name
        self.records_in = records_in
        self.histogram = dict(histogram)

    @property
    def assignments(self) -> int:
        """Total ``(bucket, record)`` pairs emitted by ``assign``."""
        return sum(self.histogram.values())

    @property
    def num_buckets(self) -> int:
        return len(self.histogram)

    @property
    def is_empty(self) -> bool:
        """True for a zero-bucket stage (empty join input) — every ratio
        below is degenerate, so reports render it as a plain note."""
        return not self.histogram or not self.records_in

    def replication_factor(self) -> float:
        """Assignments per input record (1.0 = single-assign, no skew
        from duplication; >1 means multi-assign replication)."""
        if not self.records_in:
            return 0.0
        return self.assignments / self.records_in

    def top_buckets(self, k: int = 5) -> list:
        """The ``k`` heaviest ``(bucket_id, count)`` pairs, heaviest
        first (ties broken by bucket id for determinism)."""
        ranked = sorted(self.histogram.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def imbalance(self) -> float:
        """Heaviest bucket over the mean bucket (1.0 = perfectly even)."""
        if not self.histogram:
            return 0.0
        mean = self.assignments / len(self.histogram)
        return max(self.histogram.values()) / mean if mean else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "records_in": self.records_in,
            "assignments": self.assignments,
            "num_buckets": self.num_buckets,
            "replication_factor": round(self.replication_factor(), 6),
            "imbalance": round(self.imbalance(), 6),
            "histogram": sorted(self.histogram.items()),
        }


class Trace:
    """The finished product: the span tree plus skew diagnostics.

    Exposed as :attr:`QueryResult.trace <repro.engine.executor.QueryResult>`
    when a query runs with tracing enabled.
    """

    __slots__ = ("root", "skew")

    def __init__(self, root: Span, skew: dict = None) -> None:
        self.root = root
        self.skew = skew or {}

    def walk(self):
        return self.root.walk()

    def find(self, name: str) -> Span:
        return self.root.find(name)

    def total_units(self) -> float:
        return self.root.total_units()

    def callback_rows(self) -> list:
        """Aggregated per-callback totals, one row per distinct
        ``(callback, parent-span)`` pair, sorted for determinism.

        This is what flows into the telemetry registry and the
        ``sys.callbacks`` table at query end.
        """
        totals = {}

        def visit(span: Span) -> None:
            for child in span.children:
                if child.kind == "callback":
                    row = totals.setdefault(
                        (child.name, span.name),
                        {"calls": 0, "errors": 0, "units": 0.0},
                    )
                    row["calls"] += child.calls
                    row["errors"] += child.errors
                    row["units"] += child.units
                visit(child)

        visit(self.root)
        return [
            {"callback": callback, "parent": parent, **row}
            for (callback, parent), row in sorted(totals.items())
        ]

    def to_dict(self, wall: bool = False) -> dict:
        return {
            "spans": self.root.to_dict(wall=wall),
            "skew": {name: s.to_dict()
                     for name, s in sorted(self.skew.items())},
        }

    def render(self) -> str:
        """The aligned text tree (EXPLAIN ANALYZE / shell rendering)."""
        from repro.query.printer import render_trace

        return render_trace(self)

    def skew_report(self, top_k: int = 5) -> str:
        """Bucket skew + worker imbalance, one diagnostic block."""
        lines = []
        for name in sorted(self.skew):
            skew = self.skew[name]
            if skew.is_empty:
                lines.append(f"skew {name}: empty input "
                             f"({skew.records_in} records, no buckets)")
                continue
            lines.append(
                f"skew {name}: {skew.records_in} records -> "
                f"{skew.assignments} assignments over {skew.num_buckets} "
                f"buckets, replication {skew.replication_factor():.2f}x, "
                f"bucket imbalance {skew.imbalance():.2f}x"
            )
            top = skew.top_buckets(top_k)
            if top:
                rendered = ", ".join(f"{b}:{n}" for b, n in top)
                lines.append(f"  heaviest buckets: {rendered}")
        imbalances = [
            (span.name, span.meta["imbalance"])
            for span in self.walk() if "imbalance" in span.meta
        ]
        if imbalances:
            worst = sorted(imbalances, key=lambda kv: -kv[1])[:top_k]
            rendered = ", ".join(f"{name} {ratio:.2f}x" for name, ratio in worst)
            lines.append(f"worker imbalance (max/mean units): {rendered}")
        return "\n".join(lines)

    def validate_wall(self, epsilon: float = 1e-6) -> None:
        """Assert the monotonic-wall invariant: the summed wall time of a
        span's children never exceeds the parent's own wall time."""
        for span in self.walk():
            if not span.children:
                continue
            child_wall = sum(c.wall_seconds for c in span.children)
            if child_wall > span.wall_seconds + epsilon:
                raise AssertionError(
                    f"span {span.name!r}: children wall {child_wall:.6f}s "
                    f"exceeds parent wall {span.wall_seconds:.6f}s"
                )

    # -- Chrome trace export -------------------------------------------------

    def to_chrome_trace(self, path: str, clock: str = "units") -> None:
        """Write a ``chrome://tracing`` / Perfetto JSON file.

        ``clock="units"`` (default) lays spans out on the deterministic
        charged-units timeline (1 unit = 1 µs of trace time) — the same
        query always produces the same file.  ``clock="wall"`` uses the
        measured wall clocks instead.
        """
        if clock not in ("units", "wall"):
            raise ValueError(f"clock must be 'units' or 'wall', got {clock!r}")
        events = []

        def duration(span: Span) -> float:
            if clock == "wall":
                return span.wall_seconds * 1e6
            return span.total_units()

        def emit(span: Span, ts: float) -> None:
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": round(ts, 3),
                "dur": round(duration(span), 3),
                "args": {
                    "units": round(span.total_units(), 3),
                    "own_units": round(span.units, 3),
                    "calls": span.calls,
                    "errors": span.errors,
                    "records_in": span.records_in,
                    "records_out": span.records_out,
                    "network_bytes": round(span.network_bytes, 3),
                },
            })
            cursor = ts
            for child in span.children:
                emit(child, cursor)
                cursor += duration(child)

        emit(self.root, 0.0)
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")


class Tracer:
    """The recording side: a span stack fed by the execution context.

    A disabled tracer (the default) is inert — every entry point checks
    :attr:`enabled` first, so the per-record cost of ``--trace off`` is a
    single attribute load and branch.
    """

    __slots__ = ("enabled", "root", "skew", "_stack")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.root = Span("query", "query") if self.enabled else None
        self.skew = {}
        self._stack = [self.root] if self.enabled else []

    @property
    def current(self) -> Span:
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, kind: str = "stage", stage=None):
        """Open a child span of the current span for the ``with`` body.

        When ``stage`` (a :class:`StageMetrics`) is given, its row/byte
        counters are copied onto the span at close time.
        """
        if not self.enabled:
            yield None
            return
        span = self.current.child(name, kind)
        self._stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_seconds += time.perf_counter() - started
            self._stack.pop()
            if stage is not None:
                span.copy_stage(stage)

    def record_units(self, units: float) -> None:
        """Mirror of :meth:`StageMetrics.charge` — installed as the
        stage's ``on_charge`` hook while tracing is enabled."""
        self._stack[-1].units += units

    def record_call(self, name: str, wall_seconds: float,
                    ok: bool = True) -> None:
        """Fold one callback invocation into the aggregated callback span
        under the current span."""
        span = self.current.callback_child(name)
        span.calls += 1
        span.wall_seconds += wall_seconds
        if not ok:
            span.errors += 1

    def record_calls(self, name: str, calls: int, wall_seconds: float,
                     errors: int = 0) -> None:
        """Bulk form of :meth:`record_call` — replays a batch of callback
        invocations measured elsewhere (the process backend aggregates
        per-callback counts worker-side and folds them in here)."""
        if not calls:
            return
        span = self.current.callback_child(name)
        span.calls += calls
        span.wall_seconds += wall_seconds
        span.errors += errors

    def worker_span(self, worker: int, meta: dict) -> None:
        """Attach a ``worker`` span under the current span for one pool
        task.  Carries diagnostics only (pid, attempts, wall time in
        ``meta``) — zero units and zero wall, so every accounting
        invariant is untouched."""
        span = self.current.child(f"worker-{worker}", "worker")
        span.meta.update(meta)

    def attribute(self, name: str, units: float, calls: int = 0) -> None:
        """Move ``units`` of already-charged work from the current span
        to its ``name`` callback child (keeps totals intact — the whole
        point is *no double counting*)."""
        span = self.current.callback_child(name)
        span.units += units
        self.current.units -= units
        span.calls += calls

    def note_skew(self, name: str, records_in: int, histogram: dict) -> None:
        """Record the per-bucket histogram of one ``assign`` stage."""
        self.skew[name] = BucketSkew(name, records_in, histogram)

    def finish(self, wall_seconds: float = None) -> Trace:
        """Seal the root span and hand back the immutable trace."""
        if not self.enabled:
            return None
        if wall_seconds is not None:
            # The root covers everything the caller waited for, incl.
            # result materialization (same window as metrics.wall_seconds).
            self.root.wall_seconds = max(
                wall_seconds,
                sum(c.wall_seconds for c in self.root.children),
            )
        return Trace(self.root, self.skew)
