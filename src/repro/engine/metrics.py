"""Query metrics: per-stage, per-worker cost accounting.

Each physical operator opens a *stage*; the work each simulated worker
performs in that stage is charged in work units, and each exchange charges
the bytes it moved.  :meth:`QueryMetrics.simulated_seconds` replays the
recorded schedule over an arbitrary virtual core count — stages run one
after another (exchanges are pipeline barriers), and within a stage the
per-worker costs are LPT-scheduled onto the cores.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.engine.costs import CostModel, DEFAULT_COST_MODEL


@dataclass
class StageMetrics:
    """Charges accumulated by one pipeline stage."""

    name: str
    worker_units: dict = field(default_factory=dict)
    network_bytes: float = 0.0
    #: Broadcast/all-to-all bytes, charged against the shared fabric.
    fabric_bytes: float = 0.0
    records_in: int = 0
    records_out: int = 0
    #: Optional mirror hook — the tracer installs one so every charge is
    #: also attributed to the currently open span (None when tracing is
    #: off; the check costs one branch).
    on_charge: object = None

    def charge(self, worker: int, units: float) -> None:
        self.worker_units[worker] = self.worker_units.get(worker, 0.0) + units
        if self.on_charge is not None:
            self.on_charge(units)

    def total_units(self) -> float:
        return sum(self.worker_units.values())

    def makespan_units(self, cores: int) -> float:
        """LPT schedule of the per-worker costs onto ``cores`` cores."""
        if not self.worker_units:
            return 0.0
        loads = [0.0] * max(1, min(cores, len(self.worker_units)))
        heapq.heapify(loads)
        for units in sorted(self.worker_units.values(), reverse=True):
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + units)
        return max(loads)


class QueryMetrics:
    """All charges for one query execution plus wall-clock bookkeeping."""

    #: Quarantine reports are capped so a wholly poisoned input cannot
    #: balloon the metrics object; the counter keeps the true total.
    MAX_QUARANTINE_REPORT = 50

    def __init__(self, cost_model: CostModel = None) -> None:
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.stages = []
        self._stage_index = {}
        self.wall_seconds = 0.0
        self.translation_conversions = 0
        self.comparisons = 0
        self.output_records = 0
        # -- batched execution ---------------------------------------------------
        #: Engine kernel dispatches: one per record pushed through a
        #: row-loop operator or exchange send in row mode, one per batch
        #: in batch mode, and one per worker task either way.  The
        #: batch/row ratio of this counter is the amortization bound the
        #: CI perf gate enforces.
        self.operator_invocations = 0
        #: Record batches produced (0 under row execution).
        self.batches = 0
        #: Histogram feed: rows-per-batch -> number of batches of that
        #: size.  Not part of :meth:`to_dict`; telemetry folds it into
        #: the ``fudj_batch_rows`` registry histogram.
        self.batch_row_counts = {}
        # -- fault tolerance ---------------------------------------------------
        #: Compute task attempts that were lost and replayed.
        self.tasks_retried = 0
        #: Transient shuffle sends that had to be re-transmitted.
        self.exchange_retries = 0
        #: Tasks that straggled and were cut short by a speculative copy.
        self.stragglers_detected = 0
        #: Poison records dropped by the ``skip``/``quarantine`` policies.
        self.records_quarantined = 0
        #: Simulated seconds of pure fault-tolerance overhead (wasted
        #: work, backoff, checkpoint restores, re-sent bytes).  Already
        #: included in :meth:`simulated_seconds` via the stage charges;
        #: surfaced separately so ablations can subtract it.
        self.recovery_seconds = 0.0
        #: Bytes spooled to the checkpoint store at exchanges.
        self.checkpoint_bytes = 0.0
        #: Per-phase details of quarantined records (quarantine policy
        #: only; capped at MAX_QUARANTINE_REPORT entries).
        self.quarantine_log = []
        # -- process backend ----------------------------------------------------
        #: Worker *processes* that died (planned kills and unplanned
        #: crashes alike) and were respawned while running this query.
        #: Always 0 under the serial backend.
        self.worker_restarts = 0
        #: Heartbeat deadlines a live worker process missed while holding
        #: a task lease (a real straggler signal, not a simulated one).
        self.heartbeat_misses = 0
        # -- resource governance -----------------------------------------------
        #: High-water mark of bytes concurrently admitted by the memory
        #: accountant across all (stage, worker) grants.
        self.peak_reserved_bytes = 0.0
        #: Bytes actually written to spill files (0 unless a
        #: ``memory_budget`` was enforced and exceeded).
        self.spill_bytes = 0.0
        #: Spill files written (each over-budget admit writes one).
        self.spill_files = 0
        #: Wall-clock seconds spent waiting in the admission queue.
        self.queue_seconds = 0.0
        #: Invoked with each newly created stage — the execution context
        #: uses it as a cancellation point for query timeouts.
        self.stage_observer = None

    def stage(self, name: str) -> StageMetrics:
        """Return (creating if needed) the stage named ``name``."""
        if name not in self._stage_index:
            stage = StageMetrics(name)
            self._stage_index[name] = stage
            self.stages.append(stage)
            if self.stage_observer is not None:
                self.stage_observer(stage)
        return self._stage_index[name]

    def find_stage(self, name: str):
        """The stage named ``name``, or None — unlike :meth:`stage` this
        never creates one (used by trace rendering)."""
        return self._stage_index.get(name)

    def note_batch(self, rows: int) -> None:
        """Count one produced record batch of ``rows`` live rows."""
        self.batches += 1
        self.batch_row_counts[rows] = self.batch_row_counts.get(rows, 0) + 1

    def note_quarantine(self, phase: str, join_name: str, error: Exception,
                        detail: str = None) -> None:
        """Record one poison record dropped by a degraded-mode policy."""
        self.records_quarantined += 1
        if len(self.quarantine_log) < self.MAX_QUARANTINE_REPORT:
            self.quarantine_log.append({
                "phase": phase,
                "join": join_name,
                "error": f"{type(error).__name__}: {error}",
                "record": detail,
            })

    def quarantine_report(self) -> dict:
        """Quarantined-record counts and sample errors grouped by phase."""
        report = {}
        for entry in self.quarantine_log:
            bucket = report.setdefault(
                entry["phase"], {"count": 0, "errors": []}
            )
            bucket["count"] += 1
            if len(bucket["errors"]) < 5:
                bucket["errors"].append(entry["error"])
        return report

    # -- aggregate views ------------------------------------------------------

    def total_cpu_units(self) -> float:
        return sum(s.total_units() for s in self.stages)

    def total_network_bytes(self) -> float:
        return sum(s.network_bytes + s.fabric_bytes for s in self.stages)

    def simulated_seconds(self, cores: int) -> float:
        """Simulated end-to-end time on a cluster with ``cores`` cores.

        CPU: per-stage LPT makespan over the cores.  Network: the cost
        model's bandwidth is per node, so a stage's bytes drain through
        ``min(cores, participating workers)`` NICs in parallel — a hash
        shuffle therefore speeds up with the cluster while a broadcast
        (whose total bytes grow with the cluster) does not.
        """
        if cores < 1:
            raise ValueError(f"need >= 1 core, got {cores}")
        model = self.cost_model
        total = 0.0
        for stage in self.stages:
            total += model.cpu_seconds(stage.makespan_units(cores))
            nics = min(cores, len(stage.worker_units)) or cores
            total += model.network_seconds(stage.network_bytes) / nics
            total += model.fabric_seconds(stage.fabric_bytes)
        return total

    def profile(self, cores: int = None) -> str:
        """Per-stage accounting rendered as an aligned text table.

        With ``cores`` given, a simulated-seconds column is included.
        """
        lines = []
        header = f"{'stage':<44} {'cpu units':>12} {'net bytes':>12} {'out':>8}"
        if cores is not None:
            header += f" {'sim ms':>9}"
        lines.append(header)
        lines.append("-" * len(header))
        model = self.cost_model
        for stage in self.stages:
            if not (stage.total_units() or stage.network_bytes
                    or stage.fabric_bytes):
                continue
            row = (
                f"{stage.name:<44} {stage.total_units():>12.0f} "
                f"{stage.network_bytes + stage.fabric_bytes:>12.0f} "
                f"{stage.records_out:>8}"
            )
            if cores is not None:
                nics = min(cores, len(stage.worker_units)) or cores
                seconds = (
                    model.cpu_seconds(stage.makespan_units(cores))
                    + model.network_seconds(stage.network_bytes) / nics
                    + model.fabric_seconds(stage.fabric_bytes)
                )
                row += f" {seconds * 1000:>9.3f}"
            lines.append(row)
        fault_line = self.fault_summary_line()
        if fault_line:
            lines.append(fault_line)
        resource_line = self.resource_summary_line()
        if resource_line:
            lines.append(resource_line)
        return "\n".join(lines)

    def fault_summary_line(self) -> str:
        """One-line fault-tolerance accounting, empty when nothing fired."""
        if not (self.tasks_retried or self.exchange_retries
                or self.stragglers_detected or self.records_quarantined):
            return ""
        return (
            f"fault tolerance: {self.tasks_retried} task retries, "
            f"{self.exchange_retries} exchange retries, "
            f"{self.stragglers_detected} stragglers, "
            f"{self.records_quarantined} quarantined, "
            f"recovery {self.recovery_seconds * 1000:.2f} ms"
        )

    def resource_summary_line(self) -> str:
        """One-line resource-governance accounting; empty unless a spill
        actually happened or the query waited for admission, so existing
        profile output is unchanged for un-governed runs."""
        if not (self.spill_files or self.queue_seconds):
            return ""
        return (
            f"resources: peak {self.peak_reserved_bytes:.0f} reserved bytes, "
            f"{self.spill_files} spill files ({self.spill_bytes:.0f} bytes), "
            f"queue wait {self.queue_seconds * 1000:.2f} ms"
        )

    def to_dict(self, cores: int = None) -> dict:
        """The stable flat-dict view of the metrics.

        This is the one canonical field list — telemetry
        (:mod:`repro.engine.telemetry`), :meth:`QueryResult.to_dict
        <repro.engine.executor.QueryResult.to_dict>`, and the shell's
        timing line all consume it, so adding a counter here surfaces
        it everywhere at once.  With ``cores`` given, a
        ``simulated_seconds`` entry is included.
        """
        out = {
            "wall_seconds": self.wall_seconds,
            "cpu_units": self.total_cpu_units(),
            "network_bytes": self.total_network_bytes(),
            "comparisons": self.comparisons,
            "translation_conversions": self.translation_conversions,
            "output_records": self.output_records,
            "stages": len(self.stages),
            "tasks_retried": self.tasks_retried,
            "exchange_retries": self.exchange_retries,
            "stragglers_detected": self.stragglers_detected,
            "records_quarantined": self.records_quarantined,
            "recovery_seconds": self.recovery_seconds,
            "checkpoint_bytes": self.checkpoint_bytes,
            "worker_restarts": self.worker_restarts,
            "heartbeat_misses": self.heartbeat_misses,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "spill_bytes": self.spill_bytes,
            "spill_files": self.spill_files,
            "queue_seconds": self.queue_seconds,
            "operator_invocations": self.operator_invocations,
            "batches": self.batches,
        }
        if cores is not None:
            out["simulated_seconds"] = self.simulated_seconds(cores)
        return out

    def summary(self) -> dict:
        """Alias of :meth:`to_dict`, kept for bench-table call sites."""
        return self.to_dict()

    def __repr__(self) -> str:
        return (
            f"QueryMetrics(wall={self.wall_seconds:.3f}s, "
            f"cpu_units={self.total_cpu_units():.0f}, "
            f"net_bytes={self.total_network_bytes():.0f}, "
            f"stages={len(self.stages)})"
        )
