"""Query metrics: per-stage, per-worker cost accounting.

Each physical operator opens a *stage*; the work each simulated worker
performs in that stage is charged in work units, and each exchange charges
the bytes it moved.  :meth:`QueryMetrics.simulated_seconds` replays the
recorded schedule over an arbitrary virtual core count — stages run one
after another (exchanges are pipeline barriers), and within a stage the
per-worker costs are LPT-scheduled onto the cores.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.engine.costs import CostModel, DEFAULT_COST_MODEL


@dataclass
class StageMetrics:
    """Charges accumulated by one pipeline stage."""

    name: str
    worker_units: dict = field(default_factory=dict)
    network_bytes: float = 0.0
    #: Broadcast/all-to-all bytes, charged against the shared fabric.
    fabric_bytes: float = 0.0
    records_in: int = 0
    records_out: int = 0

    def charge(self, worker: int, units: float) -> None:
        self.worker_units[worker] = self.worker_units.get(worker, 0.0) + units

    def total_units(self) -> float:
        return sum(self.worker_units.values())

    def makespan_units(self, cores: int) -> float:
        """LPT schedule of the per-worker costs onto ``cores`` cores."""
        if not self.worker_units:
            return 0.0
        loads = [0.0] * max(1, min(cores, len(self.worker_units)))
        heapq.heapify(loads)
        for units in sorted(self.worker_units.values(), reverse=True):
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + units)
        return max(loads)


class QueryMetrics:
    """All charges for one query execution plus wall-clock bookkeeping."""

    def __init__(self, cost_model: CostModel = None) -> None:
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.stages = []
        self._stage_index = {}
        self.wall_seconds = 0.0
        self.translation_conversions = 0
        self.comparisons = 0
        self.output_records = 0

    def stage(self, name: str) -> StageMetrics:
        """Return (creating if needed) the stage named ``name``."""
        if name not in self._stage_index:
            stage = StageMetrics(name)
            self._stage_index[name] = stage
            self.stages.append(stage)
        return self._stage_index[name]

    # -- aggregate views ------------------------------------------------------

    def total_cpu_units(self) -> float:
        return sum(s.total_units() for s in self.stages)

    def total_network_bytes(self) -> float:
        return sum(s.network_bytes + s.fabric_bytes for s in self.stages)

    def simulated_seconds(self, cores: int) -> float:
        """Simulated end-to-end time on a cluster with ``cores`` cores.

        CPU: per-stage LPT makespan over the cores.  Network: the cost
        model's bandwidth is per node, so a stage's bytes drain through
        ``min(cores, participating workers)`` NICs in parallel — a hash
        shuffle therefore speeds up with the cluster while a broadcast
        (whose total bytes grow with the cluster) does not.
        """
        if cores < 1:
            raise ValueError(f"need >= 1 core, got {cores}")
        model = self.cost_model
        total = 0.0
        for stage in self.stages:
            total += model.cpu_seconds(stage.makespan_units(cores))
            nics = min(cores, len(stage.worker_units)) or cores
            total += model.network_seconds(stage.network_bytes) / nics
            total += model.fabric_seconds(stage.fabric_bytes)
        return total

    def profile(self, cores: int = None) -> str:
        """Per-stage accounting rendered as an aligned text table.

        With ``cores`` given, a simulated-seconds column is included.
        """
        lines = []
        header = f"{'stage':<44} {'cpu units':>12} {'net bytes':>12} {'out':>8}"
        if cores is not None:
            header += f" {'sim ms':>9}"
        lines.append(header)
        lines.append("-" * len(header))
        model = self.cost_model
        for stage in self.stages:
            if not (stage.total_units() or stage.network_bytes
                    or stage.fabric_bytes):
                continue
            row = (
                f"{stage.name:<44} {stage.total_units():>12.0f} "
                f"{stage.network_bytes + stage.fabric_bytes:>12.0f} "
                f"{stage.records_out:>8}"
            )
            if cores is not None:
                nics = min(cores, len(stage.worker_units)) or cores
                seconds = (
                    model.cpu_seconds(stage.makespan_units(cores))
                    + model.network_seconds(stage.network_bytes) / nics
                    + model.fabric_seconds(stage.fabric_bytes)
                )
                row += f" {seconds * 1000:>9.3f}"
            lines.append(row)
        return "\n".join(lines)

    def summary(self) -> dict:
        """A flat dict of headline numbers, handy for bench tables."""
        return {
            "wall_seconds": self.wall_seconds,
            "cpu_units": self.total_cpu_units(),
            "network_bytes": self.total_network_bytes(),
            "comparisons": self.comparisons,
            "translation_conversions": self.translation_conversions,
            "output_records": self.output_records,
            "stages": len(self.stages),
        }

    def __repr__(self) -> str:
        return (
            f"QueryMetrics(wall={self.wall_seconds:.3f}s, "
            f"cpu_units={self.total_cpu_units():.0f}, "
            f"net_bytes={self.total_network_bytes():.0f}, "
            f"stages={len(self.stages)})"
        )
