"""The simulated shared-nothing cluster."""

from __future__ import annotations

from repro.engine.costs import CostModel, DEFAULT_COST_MODEL
from repro.engine.dataset import PartitionedDataset
from repro.engine.record import Schema
from repro.errors import ExecutionError


class Cluster:
    """A fixed set of simulated worker partitions plus a core budget.

    ``num_partitions`` is the data-parallelism degree (one partition per
    worker slot, like AsterixDB's one-partition-per-iodevice layout);
    ``cores`` is the compute budget used when converting charged work into
    simulated time.  Queries always execute correctly regardless of either
    number — only the simulated timings change.
    """

    def __init__(self, num_partitions: int = 12, cores: int = 12,
                 cost_model: CostModel = None) -> None:
        if num_partitions < 1:
            raise ExecutionError(f"need >= 1 partition, got {num_partitions}")
        if cores < 1:
            raise ExecutionError(f"need >= 1 core, got {cores}")
        self.num_partitions = num_partitions
        self.cores = cores
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        #: Which execution backend queries on this cluster use:
        #: ``"serial"`` (simulated workers, the deterministic default) or
        #: ``"process"`` (a supervised pool of real worker processes).
        #: The database owning the cluster keeps this in sync.
        self.backend = "serial"
        self._datasets = {}
        self._virtual = {}

    def __repr__(self) -> str:
        return (
            f"Cluster({self.num_partitions} partitions, {self.cores} cores, "
            f"{self.backend} backend, {len(self._datasets)} datasets)"
        )

    # -- dataset storage -------------------------------------------------------

    def create_dataset(self, name: str, schema: Schema,
                       primary_key: str = None) -> PartitionedDataset:
        """Create and register an empty partitioned dataset."""
        if name in self._datasets:
            raise ExecutionError(f"dataset already exists: {name}")
        dataset = PartitionedDataset(name, schema, self.num_partitions, primary_key)
        self._datasets[name] = dataset
        return dataset

    def dataset(self, name: str) -> PartitionedDataset:
        """Look up a dataset by name (materializing virtual tables)."""
        stored = self._datasets.get(name)
        if stored is not None:
            return stored
        virtual = self._virtual.get(name)
        if virtual is not None:
            return self._materialize_virtual(name, *virtual)
        raise ExecutionError(f"no such dataset: {name}")

    def drop_dataset(self, name: str) -> None:
        """Remove a dataset (raises when absent)."""
        if name not in self._datasets:
            raise ExecutionError(f"no such dataset: {name}")
        del self._datasets[name]

    def has_dataset(self, name: str) -> bool:
        return name in self._datasets or name in self._virtual

    def dataset_names(self) -> list:
        return sorted(self._datasets)

    # -- virtual datasets -------------------------------------------------------

    def register_virtual_dataset(self, name: str, schema: Schema,
                                 provider) -> None:
        """Register a provider-backed relation (the ``sys.*`` tables).

        ``provider()`` returns the current rows as plain mappings; a
        fresh snapshot is materialized on every :meth:`dataset` lookup,
        so scans always see the current engine state.
        """
        if name in self._datasets or name in self._virtual:
            raise ExecutionError(f"dataset already exists: {name}")
        self._virtual[name] = (schema, provider)

    def _materialize_virtual(self, name: str, schema: Schema,
                             provider) -> PartitionedDataset:
        # No primary key: rows round-robin across partitions, which is
        # deterministic (hash-partitioning on string keys is not, under
        # per-process hash randomization).
        dataset = PartitionedDataset(name, schema, self.num_partitions)
        dataset.bulk_load(provider())
        return dataset
