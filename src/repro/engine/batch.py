"""Columnar record batches for vectorized execution.

The row engine moves one :class:`~repro.engine.record.Record` at a time
through Python-level operator loops — ROADMAP item 1 names that the
dominant cost at any scale.  This module is the batched alternative: a
:class:`RecordBatch` holds one Python list per schema field (columnar
layout) plus an optional *selection vector*, and a :class:`BatchResult`
carries per-worker lists of batches between operators in place of
per-worker record lists.

Design rules that make batch mode byte-identical to row mode:

* **Same values.** Columns hold the same boxed engine values
  (:mod:`repro.serde.values`) a row-mode ``Record`` would hold; boxed
  values hash and compare by value, so hash-partitioning a batch routes
  every row to exactly the worker row mode would pick.
* **Same order.** Batches preserve row order per worker, and every
  batched operator emits rows in the order its row twin would.
* **Same charges.** Kernels accumulate integer row counts and issue one
  ``stage.charge(worker, n * cost)`` using the identical cost expression
  as the row operator, so the floats match bit-for-bit (see
  ``docs/batched_execution.md`` for why the single-multiply form is
  load-bearing).
* **Duck typing.** :class:`BatchResult` exposes ``schema``, ``len()``,
  ``all_records()``, and a lazily materialized ``partitions`` property,
  so row-only operators (joins, FUDJ, sort) consume a batched child
  without changes — they just pay one materialization.

Selection vectors make filters zero-copy: a filtered batch shares its
parent's column lists and only records the surviving row positions.
Kernels treat column lists as immutable; they are shared freely and
never mutated in place.
"""

from __future__ import annotations

from repro.engine.record import Record, Schema

#: Execution modes accepted by ``Database(execution=...)`` and the
#: ``FUDJ_EXEC`` environment override.
EXECUTION_MODES = ("row", "batch")

#: Rows per batch produced by batched operators and exchanges.
DEFAULT_BATCH_ROWS = 1024


class RecordBatch:
    """A columnar slice of rows: one value list per field, shared schema,
    optional selection vector.

    ``columns[j][i]`` is field ``j`` of physical row ``i``.  When
    ``selection`` is set, only the listed physical row indices are live,
    in selection order; otherwise every physical row is live.  Column
    lists are immutable by convention and may be shared between batches
    (projection and filtering are zero-copy views).
    """

    __slots__ = ("schema", "columns", "selection", "_rows")

    def __init__(self, schema: Schema, columns, selection=None,
                 rows: int = None) -> None:
        self.schema = schema
        self.columns = columns
        self.selection = selection
        if selection is not None:
            self._rows = len(selection)
        elif rows is not None:
            self._rows = rows
        else:
            self._rows = len(columns[0]) if columns else 0

    @property
    def num_rows(self) -> int:
        return self._rows

    def __len__(self) -> int:
        return self._rows

    def __repr__(self) -> str:
        return (f"RecordBatch({self._rows} rows x "
                f"{len(self.schema)} cols"
                + (", selected" if self.selection is not None else "") + ")")

    @staticmethod
    def from_rows(schema: Schema, rows) -> "RecordBatch":
        """Build a compact batch from value tuples (one per row)."""
        if rows:
            columns = [list(column) for column in zip(*rows)]
        else:
            columns = [[] for _ in schema.fields]
        return RecordBatch(schema, columns, rows=len(rows))

    def iter_rows(self):
        """Yield live rows as value tuples, in order."""
        if not self.columns:
            for _ in range(self._rows):
                yield ()
        elif self.selection is None:
            yield from zip(*self.columns)
        else:
            columns = self.columns
            for i in self.selection:
                yield tuple(column[i] for column in columns)

    def rows(self) -> list:
        """Live rows as a list of value tuples."""
        return list(self.iter_rows())

    def to_records(self) -> list:
        """Materialize live rows as :class:`Record` objects."""
        schema = self.schema
        return [Record(schema, row) for row in self.iter_rows()]

    def take(self, positions) -> "RecordBatch":
        """A view keeping the live rows at the given positions.

        ``positions`` index the batch's *live* rows (0..num_rows-1), so
        filters compose with an existing selection vector.
        """
        if self.selection is None:
            return RecordBatch(self.schema, self.columns, list(positions))
        base = self.selection
        return RecordBatch(self.schema, self.columns,
                           [base[i] for i in positions])

    def compact(self) -> "RecordBatch":
        """Drop the selection vector by copying the live rows out."""
        if self.selection is None:
            return self
        return RecordBatch.from_rows(self.schema, self.rows())


class BatchResult:
    """Output of a batched operator: per-worker batch lists plus schema.

    Duck-compatible with
    :class:`~repro.engine.operators.base.OperatorResult`: row-only
    consumers (joins, FUDJ phases, sort, the executor) read ``schema``,
    ``len()``, ``all_records()``, and ``partitions`` — the latter
    materializes records lazily, once, so object identities stay stable
    for pair-dedup within a query.
    """

    def __init__(self, batches, schema: Schema) -> None:
        self.batches = batches
        self.schema = schema
        self._num_records = sum(
            batch.num_rows for worker in batches for batch in worker
        )
        self._partitions = None

    def __len__(self) -> int:
        return self._num_records

    @property
    def num_batches(self) -> int:
        return sum(len(worker) for worker in self.batches)

    @property
    def partitions(self) -> list:
        if self._partitions is None:
            schema = self.schema
            self._partitions = [
                [Record(schema, row)
                 for batch in worker for row in batch.iter_rows()]
                for worker in self.batches
            ]
        return self._partitions

    def all_records(self):
        for partition in self.partitions:
            yield from partition


def batches_from_rows(ctx, schema: Schema, rows) -> list:
    """Chunk value-tuple rows into batches of ``ctx.batch_rows``.

    Every produced batch ticks the per-query batch counters
    (``metrics.batches`` / rows-per-batch histogram feed).
    """
    size = ctx.batch_rows
    out = []
    # Every batch built is a cancellation point (test harnesses pass
    # minimal ctx stubs without the checkpoint, hence the getattr).
    check_cancel = getattr(ctx, "check_cancel", None)
    for start in range(0, len(rows), size):
        if check_cancel is not None:
            check_cancel()
        batch = RecordBatch.from_rows(schema, rows[start:start + size])
        ctx.metrics.note_batch(batch.num_rows)
        out.append(batch)
    return out


def as_worker_batches(result, ctx) -> list:
    """Per-worker batch lists for an upstream operator result.

    A :class:`BatchResult` child passes its batches through untouched; a
    row-mode child (a join, FUDJ, or sort below a batched operator) is
    restructured column-wise.  The restructure is free of cost-model
    charges — it changes representation, not work, so row/batch charge
    parity holds.
    """
    if isinstance(result, BatchResult):
        return result.batches
    schema = result.schema
    return [
        batches_from_rows(ctx, schema,
                          [record.values for record in partition])
        for partition in result.partitions
    ]
