"""System-wide telemetry: metrics registry, query history, ``sys.*`` tables.

Three tiers on top of the per-query observability layer
(:mod:`repro.engine.metrics` and :mod:`repro.engine.tracing`):

1. A process-wide **metrics registry** of labeled counters, gauges, and
   fixed-bucket histograms.  Every ``Database.execute`` folds its
   :class:`~repro.engine.metrics.QueryMetrics` (and, when tracing ran,
   the per-callback aggregates of the trace) into the registry.  The
   registry renders as Prometheus text exposition or canonical JSON;
   both are **deterministic** — they contain only charged units,
   simulated seconds, and counters, never wall clocks — so two
   identical sessions produce byte-identical snapshots (tested in
   ``tests/test_telemetry.py``).

2. A bounded **query history log**: one structured record per executed
   statement (sql, status, per-phase units, retry/skew summaries, error
   class).  Retention is capped — the oldest record is evicted first —
   so history memory is bounded no matter how long a session runs.

3. **Queryable introspection**: the history and the registry are
   registered as *virtual tables* (``sys.queries``, ``sys.stages``,
   ``sys.callbacks``, ``sys.metrics``) in the catalog and the cluster,
   so plain SQL reaches them through the normal binder → planner →
   scan-operator path::

       SELECT status, COUNT(1) AS n FROM sys.queries GROUP BY status;

Telemetry never charges the simulated cost model: recording a query,
taking a snapshot, or resetting the registry costs 0 work units (the
acceptance test pins this down).  Scanning a ``sys.*`` table *is* a
query and pays the ordinary scan cost like any other dataset.
"""

from __future__ import annotations

import json
import threading
import time

from repro.engine.events import DEFAULT_EVENT_LIMIT, EventLog
from repro.engine.record import Schema
from repro.errors import ReproError

#: Histogram bucket upper bounds for per-query simulated seconds.
SIM_SECONDS_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0)
#: Histogram bucket upper bounds for per-query result row counts.
ROW_COUNT_BUCKETS = (1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0)
#: Histogram bucket upper bounds for rows per record batch (batch mode).
BATCH_ROWS_BUCKETS = (1.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0)

#: Default bound on retained history records (oldest evicted first).
DEFAULT_HISTORY_LIMIT = 256


class TelemetryError(ReproError):
    """Misuse of the metrics registry (name/kind/label conflicts)."""


def _format_number(value) -> str:
    """Canonical text form of a sample value (Prometheus lines)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _label_key(labelnames, labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise TelemetryError(
            f"labels {sorted(labels)} do not match declared label names "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(labelnames, key: tuple, extra=()) -> str:
    pairs = list(zip(labelnames, key)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    __slots__ = ("name", "help", "labelnames", "_values")

    def __init__(self, name: str, help_text: str, labelnames=()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._values = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease")
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(self.labelnames, labels), 0.0)

    def reset(self) -> None:
        self._values.clear()

    def samples(self):
        """Sorted ``(label_key, value)`` pairs — the deterministic view."""
        return sorted(self._values.items())


class Gauge(Counter):
    """A value that can go up or down (set, not accumulated)."""

    kind = "gauge"

    __slots__ = ()

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(self.labelnames, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0.0) + amount


class Histogram:
    """A fixed-bucket histogram (cumulative, Prometheus-style)."""

    kind = "histogram"

    __slots__ = ("name", "help", "labelnames", "buckets", "_series")

    def __init__(self, name: str, help_text: str, buckets,
                 labelnames=()) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise TelemetryError(
                f"histogram {name} needs strictly increasing buckets"
            )
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.buckets = bounds
        self._series = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            series = {"counts": [0] * len(self.buckets), "sum": 0.0,
                      "count": 0}
            self._series[key] = series
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series["counts"][i] += 1
        series["sum"] += float(value)
        series["count"] += 1

    def observe_many(self, value: float, count: int = 1, **labels) -> None:
        """Fold ``count`` identical observations of ``value`` in one call
        (how batch-mode rows-per-batch tallies land in the registry)."""
        if count < 0:
            raise TelemetryError(
                f"histogram {self.name} cannot observe a negative count"
            )
        if count == 0:
            return
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            series = {"counts": [0] * len(self.buckets), "sum": 0.0,
                      "count": 0}
            self._series[key] = series
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series["counts"][i] += count
        series["sum"] += float(value) * count
        series["count"] += count

    def reset(self) -> None:
        self._series.clear()

    def samples(self):
        return sorted(self._series.items())


class MetricsRegistry:
    """A named collection of metric families with a deterministic
    snapshot API.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    them twice with the same name returns the same family (a name reused
    with a different kind raises :class:`TelemetryError`).
    """

    def __init__(self) -> None:
        self._families = {}

    def _register(self, family):
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family):
                raise TelemetryError(
                    f"metric {family.name} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help_text: str = "", labelnames=()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(self, name: str, help_text: str = "", labelnames=()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(self, name: str, help_text: str = "", buckets=(),
                  labelnames=()) -> Histogram:
        return self._register(Histogram(name, help_text, buckets, labelnames))

    def families(self):
        """All metric families, sorted by name (deterministic)."""
        return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Zero every family (the families themselves stay registered)."""
        for family in self._families.values():
            family.reset()

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A canonical, JSON-ready view of every family.

        Contains only deterministic quantities; samples sort by label
        value, families by name, so the same sequence of recordings
        always produces the same object.
        """
        out = []
        for family in self.families():
            entry = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.labelnames),
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
                entry["samples"] = [
                    {
                        "labels": dict(zip(family.labelnames, key)),
                        "counts": list(series["counts"]),
                        "sum": series["sum"],
                        "count": series["count"],
                    }
                    for key, series in family.samples()
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(zip(family.labelnames, key)),
                     "value": value}
                    for key, value in family.samples()
                ]
            out.append(entry)
        return {"format": "fudj-metrics", "version": 1, "families": out}

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — byte-stable."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if family.kind == "histogram":
                for key, series in family.samples():
                    cumulative = 0
                    for bound, count in zip(family.buckets,
                                            series["counts"]):
                        cumulative = count
                        labels = _render_labels(
                            family.labelnames, key,
                            extra=[("le", _format_number(bound))],
                        )
                        lines.append(
                            f"{family.name}_bucket{labels} {cumulative}"
                        )
                    labels = _render_labels(family.labelnames, key,
                                            extra=[("le", "+Inf")])
                    lines.append(
                        f"{family.name}_bucket{labels} {series['count']}"
                    )
                    plain = _render_labels(family.labelnames, key)
                    lines.append(f"{family.name}_sum{plain} "
                                 f"{_format_number(series['sum'])}")
                    lines.append(f"{family.name}_count{plain} "
                                 f"{series['count']}")
            else:
                for key, value in family.samples():
                    labels = _render_labels(family.labelnames, key)
                    lines.append(
                        f"{family.name}{labels} {_format_number(value)}"
                    )
        return "\n".join(lines) + "\n"


class QueryHistory:
    """A bounded, append-only log of executed statements.

    Retention is ``limit`` records; appending past it evicts the oldest
    record, so memory stays capped no matter how long the session runs.
    """

    def __init__(self, limit: int = DEFAULT_HISTORY_LIMIT) -> None:
        if limit < 1:
            raise TelemetryError(f"history limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries = []
        self.total_recorded = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def evicted(self) -> int:
        return self.total_recorded - len(self._entries)

    def append(self, entry: dict) -> None:
        self._entries.append(entry)
        self.total_recorded += 1
        if len(self._entries) > self.limit:
            del self._entries[: len(self._entries) - self.limit]

    def entries(self) -> list:
        """Records oldest to newest (a copy, safe to hold)."""
        return list(self._entries)

    def set_limit(self, limit: int) -> None:
        """Change retention; trims immediately when shrinking."""
        if limit < 1:
            raise TelemetryError(f"history limit must be >= 1, got {limit}")
        self.limit = limit
        if len(self._entries) > limit:
            del self._entries[: len(self._entries) - limit]

    def clear(self) -> None:
        self._entries.clear()
        self.total_recorded = 0


# -- stage/phase classification ------------------------------------------------


def stage_op(stage_name: str) -> str:
    """The stable operator label of a metrics stage name.

    ``scan#1`` → ``scan``; ``fudj-join#5/assign-left`` → ``assign-left``.
    Instance ids are stripped so the label is identical across sessions
    (operator ids come from a process-global counter).
    """
    if "/" in stage_name:
        return stage_name.rsplit("/", 1)[1]
    return stage_name.split("#", 1)[0]


#: FUDJ phase of a stage op (paper Fig 8/9 grouping).
def phase_of(op: str) -> str:
    if op.startswith("summarize") or op.startswith("pplan"):
        return "summarize"
    if op.startswith("assign"):
        return "partition"
    if op.startswith(("xleft", "xright", "combine", "dedup", "spread",
                      "broadcast", "route")):
        return "combine"
    return "other"


# -- sys.* table schemas -------------------------------------------------------

SYS_QUERIES_FIELDS = (
    ("id", "int"), ("sql", "string"), ("kind", "string"),
    ("mode", "string"), ("status", "string"), ("error_type", "string"),
    ("error", "string"), ("rows", "int"), ("wall_seconds", "double"),
    ("sim_seconds", "double"), ("cpu_units", "double"),
    ("net_bytes", "double"), ("comparisons", "int"),
    ("conversions", "int"), ("stage_count", "int"),
    ("tasks_retried", "int"), ("exchange_retries", "int"),
    ("stragglers", "int"), ("quarantined", "int"),
    ("recovery_seconds", "double"), ("checkpoint_bytes", "double"),
    ("worker_restarts", "int"), ("heartbeat_misses", "int"),
    ("peak_reserved_bytes", "double"), ("spill_bytes", "double"),
    ("spill_files", "int"), ("queue_seconds", "double"),
    ("summarize_units", "double"), ("partition_units", "double"),
    ("combine_units", "double"), ("other_units", "double"),
    ("max_bucket_imbalance", "double"), ("max_replication", "double"),
    ("traced", "boolean"),
)

SYS_STAGES_FIELDS = (
    ("query_id", "int"), ("seq", "int"), ("stage", "string"),
    ("op", "string"), ("phase", "string"), ("cpu_units", "double"),
    ("net_bytes", "double"), ("records_in", "int"),
    ("records_out", "int"), ("workers", "int"), ("imbalance", "double"),
)

SYS_CALLBACKS_FIELDS = (
    ("query_id", "int"), ("callback", "string"), ("parent", "string"),
    ("calls", "int"), ("errors", "int"), ("cpu_units", "double"),
)

SYS_METRICS_FIELDS = (
    ("metric", "string"), ("kind", "string"), ("labels", "string"),
    ("value", "double"),
)

SYS_RESOURCES_FIELDS = (
    ("component", "string"), ("name", "string"), ("value", "double"),
    ("detail", "string"),
)

SYS_WORKERS_FIELDS = (
    ("slot", "int"), ("pid", "int"), ("alive", "boolean"),
    ("busy", "boolean"), ("tasks_ok", "int"), ("tasks_failed", "int"),
    ("restarts", "int"), ("heartbeats", "int"), ("spill_dir", "string"),
)

SYS_PLANS_FIELDS = (
    ("query_id", "int"), ("seq", "int"), ("optimizer", "string"),
    ("stage", "string"), ("operator", "string"), ("detail", "string"),
    ("est_rows", "double"), ("actual_rows", "int"),
)

SYS_EVENTS_FIELDS = (
    ("seq", "int"), ("query_id", "int"), ("kind", "string"),
    ("level", "string"), ("phase", "string"), ("stage", "string"),
    ("worker", "int"), ("runtime", "boolean"), ("detail", "string"),
)

SYS_SESSIONS_FIELDS = (
    ("session", "int"), ("tenant", "string"), ("state", "string"),
    ("requests", "int"), ("active_query", "int"), ("cancelled", "int"),
    ("lane_depth", "int"),
)

#: Every registered ``sys.*`` table: name → field schema.  The docs
#: linter checks each name here is documented in ``docs/``.
SYS_TABLES = {
    "sys.queries": SYS_QUERIES_FIELDS,
    "sys.stages": SYS_STAGES_FIELDS,
    "sys.callbacks": SYS_CALLBACKS_FIELDS,
    "sys.metrics": SYS_METRICS_FIELDS,
    "sys.resources": SYS_RESOURCES_FIELDS,
    "sys.workers": SYS_WORKERS_FIELDS,
    "sys.plans": SYS_PLANS_FIELDS,
    "sys.events": SYS_EVENTS_FIELDS,
    "sys.sessions": SYS_SESSIONS_FIELDS,
}


class Telemetry:
    """The per-database telemetry hub: registry + history + sys rows.

    One instance lives on each :class:`~repro.database.Database`; its
    :meth:`record_statement` is called by ``Database.execute`` for every
    statement — success or failure — after execution finishes.
    """

    def __init__(self, history_limit: int = DEFAULT_HISTORY_LIMIT,
                 event_limit: int = DEFAULT_EVENT_LIMIT) -> None:
        self.registry = MetricsRegistry()
        self.history = QueryHistory(history_limit)
        #: Structured event log (:mod:`repro.engine.events`), exposed as
        #: ``sys.events`` and the monitor's ``/events`` endpoint.
        self.events = EventLog(event_limit)
        self._started_monotonic = time.monotonic()
        #: Concurrent sessions record from their own threads; history
        #: appends and registry folds share this lock so counters never
        #: lose increments and entries never interleave.
        self._lock = threading.RLock()
        self._id_lock = threading.Lock()
        self._assigned_ids = 0
        r = self.registry
        self._statements = r.counter(
            "fudj_statements_total",
            "Statements executed, by statement kind.", ("kind",))
        self._queries = r.counter(
            "fudj_queries_total",
            "SELECT/EXPLAIN executions, by final status.", ("status",))
        self._rows = r.counter(
            "fudj_rows_returned_total", "Result rows returned to callers.")
        self._cpu_units = r.counter(
            "fudj_cpu_units_total", "Work units charged to the cost model.")
        self._net_bytes = r.counter(
            "fudj_network_bytes_total", "Bytes moved by exchanges.")
        self._comparisons = r.counter(
            "fudj_comparisons_total", "Join predicate evaluations.")
        self._conversions = r.counter(
            "fudj_translation_conversions_total",
            "FUDJ boundary translations.")
        self._tasks_retried = r.counter(
            "fudj_task_retries_total", "Compute task attempts replayed.")
        self._exchange_retries = r.counter(
            "fudj_exchange_retries_total", "Shuffle sends re-transmitted.")
        self._stragglers = r.counter(
            "fudj_stragglers_total", "Tasks cut short by speculation.")
        self._quarantined = r.counter(
            "fudj_records_quarantined_total",
            "Poison records dropped by degraded-mode policies.")
        self._recovery_seconds = r.counter(
            "fudj_recovery_seconds_total",
            "Simulated seconds of fault-recovery overhead.")
        self._checkpoint_bytes = r.counter(
            "fudj_checkpoint_bytes_total",
            "Bytes spooled to the checkpoint store.")
        self._spill_bytes = r.counter(
            "fudj_spill_bytes_total",
            "Bytes written to memory-budget spill files.")
        self._spill_files = r.counter(
            "fudj_spill_files_total", "Memory-budget spill files written.")
        self._operator_invocations = r.counter(
            "fudj_operator_invocations_total",
            "Operator kernel/record invocations (one per record in row "
            "mode, one per batch in batch mode).")
        self._batches = r.counter(
            "fudj_batches_total",
            "Record batches produced by batch-mode operators.")
        self._batch_rows = r.histogram(
            "fudj_batch_rows", "Rows per record batch (batch mode).",
            BATCH_ROWS_BUCKETS)
        self._admission = r.counter(
            "fudj_admission_total",
            "Admission controller decisions, by outcome.", ("outcome",))
        self._breaker_trips = r.counter(
            "fudj_breaker_trips_total", "FUDJ circuit breaker trips.")
        self._breaker_rejections = r.counter(
            "fudj_breaker_rejections_total",
            "Queries failed fast by an open circuit breaker.")
        self._breaker_seen = {"trips": 0, "rejections": 0}
        self._worker_restarts = r.counter(
            "fudj_worker_restarts_total",
            "Worker processes that died mid-query and were respawned.")
        self._heartbeat_misses = r.counter(
            "fudj_worker_heartbeat_misses_total",
            "Heartbeat deadlines missed by live workers holding a lease.")
        self._speculations = r.counter(
            "fudj_worker_speculations_total",
            "Speculative task copies launched against real stragglers.")
        self._degradations = r.counter(
            "fudj_backend_degraded_total",
            "Queries degraded from the process backend to serial.")
        self._pool_seen = {"speculations": 0, "degradations": 0}
        self._stage_units = r.counter(
            "fudj_stage_units_total",
            "Work units charged, by stage operator label.", ("op",))
        self._phase_units = r.counter(
            "fudj_phase_units_total",
            "Work units charged, by FUDJ phase.", ("phase",))
        self._callback_calls = r.counter(
            "fudj_callback_calls_total",
            "User callback invocations (traced queries only).",
            ("callback",))
        self._callback_errors = r.counter(
            "fudj_callback_errors_total",
            "Failed user callback invocations (traced queries only).",
            ("callback",))
        self._callback_units = r.counter(
            "fudj_callback_units_total",
            "Work units attributed to user callbacks (traced queries "
            "only).", ("callback",))
        self._sim_seconds = r.histogram(
            "fudj_query_sim_seconds",
            "Per-query simulated seconds on the session's core count.",
            SIM_SECONDS_BUCKETS)
        self._row_hist = r.histogram(
            "fudj_query_rows", "Per-query result row counts.",
            ROW_COUNT_BUCKETS)
        self._history_entries = r.gauge(
            "fudj_history_entries", "Query history records retained.")
        self._history_evicted = r.gauge(
            "fudj_history_evicted", "Query history records evicted.")
        self._events_emitted = r.gauge(
            "fudj_events_total", "Structured engine events emitted.")
        #: Session-server families.  They sample only once a server
        #: runs, so sessions that never serve keep the byte-identical
        #: snapshot contract untouched (``fudj_drain_seconds`` is a
        #: wall clock, sanctioned the same way as uptime).
        self._sessions_total = r.counter(
            "fudj_sessions_total",
            "Client sessions accepted by the session server.")
        self._sessions_open = r.gauge(
            "fudj_sessions_open",
            "Client sessions currently connected.")
        self._session_requests = r.counter(
            "fudj_session_requests_total",
            "Session-server requests, by op and outcome.",
            ("op", "outcome"))
        self._cancelled = r.counter(
            "fudj_cancelled_total",
            "Queries aborted by cooperative cancellation, by reason.",
            ("reason",))
        self._drain_seconds = r.gauge(
            "fudj_drain_seconds",
            "Wall seconds the session server's last graceful drain "
            "took.")
        #: Scrape self-description.  ``fudj_build_info`` is the
        #: conventional constant-1 info gauge (version/backend/execution
        #: labels, stamped by :meth:`set_build_info`).
        #: ``fudj_uptime_seconds`` is the one sanctioned wall-clock in
        #: the registry: it has *no sample* until :meth:`touch_uptime`
        #: stamps it at monitor scrape time, so un-scraped sessions keep
        #: the byte-identical determinism contract untouched.
        self._build_info = r.gauge(
            "fudj_build_info",
            "Constant 1; version/backend/execution identify the build.",
            ("version", "backend", "execution"))
        self._uptime = r.gauge(
            "fudj_uptime_seconds",
            "Seconds since this session started (stamped at scrape "
            "time).")

    # -- scrape self-description ----------------------------------------------

    def set_build_info(self, backend: str, execution: str) -> None:
        """Stamp the ``fudj_build_info`` gauge (value 1 by convention).
        Re-stamping replaces the previous label set, so a backend or
        execution switch never leaves a stale series behind."""
        from repro import __version__

        self._build_info._values.clear()
        self._build_info.set(1, version=__version__, backend=backend,
                             execution=execution)

    def touch_uptime(self) -> float:
        """Stamp ``fudj_uptime_seconds`` with the session age and return
        it.  Called by the monitor before rendering ``/metrics``; the
        stamped value persists, so a ``metrics_snapshot()`` taken right
        after a scrape renders byte-identically to the scrape."""
        uptime = round(time.monotonic() - self._started_monotonic, 3)
        self._uptime.set(uptime)
        return uptime

    # -- recording ------------------------------------------------------------

    def next_query_id(self) -> int:
        """Reserve the history id the next statement will record under.

        Serial callers get exactly the ids they always did
        (``total_recorded + 1``); concurrent sessions each reserve a
        distinct id up front, so the events a query emits while running
        join to the history entry it eventually records, whatever order
        the statements finish in.
        """
        with self._id_lock:
            self._assigned_ids = max(self._assigned_ids,
                                     self.history.total_recorded) + 1
            return self._assigned_ids

    def record_statement(self, sql: str, kind: str, mode: str, status: str,
                         metrics=None, rows: int = 0, error=None,
                         trace=None, cores: int = 1,
                         wall_seconds: float = 0.0,
                         plan_rows: list = None,
                         query_id: int = None) -> dict:
        """Fold one finished ``execute()`` into history + registry.

        ``metrics`` is the query's :class:`QueryMetrics` (None for
        statements that never reached execution, e.g. parse errors);
        ``trace`` the optional :class:`~repro.engine.tracing.Trace`;
        ``plan_rows`` the planned-operator rows from the optimizer
        (surfaced through ``sys.plans`` with per-stage actuals joined
        in); ``query_id`` the id reserved via :meth:`next_query_id`
        (None keeps the serial default, ``total_recorded + 1``).
        Returns the appended history entry.
        """
        with self._lock:
            return self._record_locked(sql, kind, mode, status, metrics,
                                       rows, error, trace, cores,
                                       wall_seconds, plan_rows, query_id)

    def _record_locked(self, sql, kind, mode, status, metrics, rows,
                       error, trace, cores, wall_seconds, plan_rows,
                       query_id) -> dict:
        entry = self._build_entry(sql, kind, mode, status, metrics, rows,
                                  error, trace, cores, wall_seconds,
                                  plan_rows, query_id)
        self.history.append(entry)
        self._statements.inc(kind=kind)
        executed = metrics is not None and kind in ("select", "explain")
        if executed:
            self._queries.inc(status=status)
            self._rows.inc(rows)
            self._sim_seconds.observe(entry["sim_seconds"])
            self._row_hist.observe(rows)
        if metrics is not None:
            m = metrics.to_dict()
            self._cpu_units.inc(m["cpu_units"])
            self._net_bytes.inc(m["network_bytes"])
            self._comparisons.inc(m["comparisons"])
            self._conversions.inc(m["translation_conversions"])
            self._tasks_retried.inc(m["tasks_retried"])
            self._exchange_retries.inc(m["exchange_retries"])
            self._stragglers.inc(m["stragglers_detected"])
            self._quarantined.inc(m["records_quarantined"])
            self._recovery_seconds.inc(m["recovery_seconds"])
            self._checkpoint_bytes.inc(m["checkpoint_bytes"])
            self._worker_restarts.inc(m["worker_restarts"])
            self._heartbeat_misses.inc(m["heartbeat_misses"])
            self._spill_bytes.inc(m["spill_bytes"])
            self._spill_files.inc(m["spill_files"])
            self._operator_invocations.inc(m["operator_invocations"])
            self._batches.inc(m["batches"])
            for rows_per_batch, count in sorted(
                    metrics.batch_row_counts.items()):
                self._batch_rows.observe_many(rows_per_batch, count)
            for stage_row in entry["stages"]:
                self._stage_units.inc(stage_row["cpu_units"],
                                      op=stage_row["op"])
                self._phase_units.inc(stage_row["cpu_units"],
                                      phase=stage_row["phase"])
        for cb in entry["callbacks"]:
            self._callback_calls.inc(cb["calls"], callback=cb["callback"])
            if cb["errors"]:
                self._callback_errors.inc(cb["errors"],
                                          callback=cb["callback"])
            self._callback_units.inc(cb["cpu_units"],
                                     callback=cb["callback"])
        self._history_entries.set(len(self.history))
        self._history_evicted.set(self.history.evicted)
        self._emit_statement_events(entry, metrics, error)
        self._events_emitted.set(self.events.total_emitted)
        return entry

    def _emit_statement_events(self, entry: dict, metrics, error) -> None:
        """Completion-time events for one statement: the per-stage
        timeline, degraded-mode and estimate summaries, then the
        terminal ``query.finish`` / ``query.error``.  Everything here is
        derived from deterministic entry fields (never ``wall_seconds``
        or ``queue_seconds``), so the stream stays byte-stable."""
        ev = self.events
        qid = entry["id"]
        if metrics is not None:
            for stage_row in entry["stages"]:
                ev.emit("stage.finish", query_id=qid,
                        stage=stage_row["stage"], phase=stage_row["phase"],
                        cpu_units=stage_row["cpu_units"],
                        records_in=stage_row["records_in"],
                        records_out=stage_row["records_out"],
                        workers=stage_row["workers"])
            if entry["quarantined"]:
                ev.emit("fault.quarantine", query_id=qid,
                        records=entry["quarantined"])
        for plan_row in entry["plans"]:
            if plan_row["est_rows"] >= 0 and plan_row["actual_rows"] >= 0:
                ev.emit("plan.actuals", query_id=qid,
                        stage=plan_row["stage"],
                        est_rows=plan_row["est_rows"],
                        actual_rows=plan_row["actual_rows"])
        if error is None:
            ev.emit("query.finish", query_id=qid, status=entry["status"],
                    rows=entry["rows"], cpu_units=entry["cpu_units"],
                    sim_seconds=entry["sim_seconds"])
            return
        if entry["status"] == "shed":
            ev.emit("admission.shed", query_id=qid,
                    reason=getattr(error, "reason", ""))
        elif entry["status"] == "rejected":
            ev.emit("breaker.reject", query_id=qid,
                    error_type=entry["error_type"])
        elif entry["status"] == "cancelled":
            # Runtime kind: cancellation is client/wall-clock driven, so
            # it never lands in the deterministic stream.
            ev.emit("cancel.complete", query_id=qid,
                    reason=getattr(error, "reason", ""))
        ev.emit("query.error", query_id=qid, status=entry["status"],
                error_type=entry["error_type"])

    def _build_entry(self, sql, kind, mode, status, metrics, rows, error,
                     trace, cores, wall_seconds, plan_rows=None,
                     query_id=None) -> dict:
        entry = {
            "id": (int(query_id) if query_id
                   else self.history.total_recorded + 1),
            "sql": sql.strip(),
            "kind": kind,
            "mode": mode,
            "status": status,
            "error_type": type(error).__name__ if error is not None else "",
            "error": str(error) if error is not None else "",
            "rows": int(rows),
            "wall_seconds": float(wall_seconds),
            "sim_seconds": 0.0,
            "cpu_units": 0.0,
            "net_bytes": 0.0,
            "comparisons": 0,
            "conversions": 0,
            "stage_count": 0,
            "tasks_retried": 0,
            "exchange_retries": 0,
            "stragglers": 0,
            "quarantined": 0,
            "recovery_seconds": 0.0,
            "checkpoint_bytes": 0.0,
            "worker_restarts": 0,
            "heartbeat_misses": 0,
            "peak_reserved_bytes": 0.0,
            "spill_bytes": 0.0,
            "spill_files": 0,
            "queue_seconds": 0.0,
            "summarize_units": 0.0,
            "partition_units": 0.0,
            "combine_units": 0.0,
            "other_units": 0.0,
            "max_bucket_imbalance": 0.0,
            "max_replication": 0.0,
            "traced": trace is not None,
            "stages": [],
            "callbacks": [],
            "plans": [],
        }
        if metrics is not None:
            m = metrics.to_dict()
            entry["sim_seconds"] = metrics.simulated_seconds(max(1, cores))
            entry["cpu_units"] = m["cpu_units"]
            entry["net_bytes"] = m["network_bytes"]
            entry["comparisons"] = m["comparisons"]
            entry["conversions"] = m["translation_conversions"]
            entry["stage_count"] = m["stages"]
            entry["tasks_retried"] = m["tasks_retried"]
            entry["exchange_retries"] = m["exchange_retries"]
            entry["stragglers"] = m["stragglers_detected"]
            entry["quarantined"] = m["records_quarantined"]
            entry["recovery_seconds"] = m["recovery_seconds"]
            entry["checkpoint_bytes"] = m["checkpoint_bytes"]
            entry["worker_restarts"] = m["worker_restarts"]
            entry["heartbeat_misses"] = m["heartbeat_misses"]
            entry["peak_reserved_bytes"] = m["peak_reserved_bytes"]
            entry["spill_bytes"] = m["spill_bytes"]
            entry["spill_files"] = m["spill_files"]
            entry["queue_seconds"] = m["queue_seconds"]
            for seq, stage in enumerate(metrics.stages):
                op = stage_op(stage.name)
                units = stage.total_units()
                workers = stage.worker_units
                mean = (sum(workers.values()) / len(workers)
                        if workers else 0.0)
                imbalance = (max(workers.values()) / mean
                             if len(workers) > 1 and mean > 0 else 1.0)
                phase = phase_of(op)
                entry["stages"].append({
                    "query_id": entry["id"],
                    "seq": seq,
                    "stage": stage.name,
                    "op": op,
                    "phase": phase,
                    "cpu_units": units,
                    "net_bytes": stage.network_bytes + stage.fabric_bytes,
                    "records_in": stage.records_in,
                    "records_out": stage.records_out,
                    "workers": len(workers),
                    "imbalance": imbalance,
                })
                entry[f"{phase}_units"] += units
        if plan_rows:
            actuals = {}
            if metrics is not None:
                actuals = {stage.name: stage.records_out
                           for stage in metrics.stages}
            for plan_row in plan_rows:
                entry["plans"].append({
                    "query_id": entry["id"],
                    "seq": plan_row["seq"],
                    "optimizer": plan_row["optimizer"],
                    "stage": plan_row["stage"],
                    "operator": plan_row["operator"],
                    "detail": plan_row["detail"],
                    "est_rows": float(plan_row["est_rows"]),
                    "actual_rows": int(actuals.get(plan_row["stage"], -1)),
                })
        if trace is not None:
            for cb in trace.callback_rows():
                entry["callbacks"].append({
                    "query_id": entry["id"],
                    "callback": cb["callback"],
                    "parent": cb["parent"],
                    "calls": cb["calls"],
                    "errors": cb["errors"],
                    "cpu_units": cb["units"],
                })
            for skew in trace.skew.values():
                entry["max_bucket_imbalance"] = max(
                    entry["max_bucket_imbalance"], skew.imbalance())
                entry["max_replication"] = max(
                    entry["max_replication"], skew.replication_factor())
        return entry

    def note_admission(self, outcome: str) -> None:
        """Count one admission decision (``admitted`` / ``queue-full`` /
        ``lane-full`` / ``timeout``)."""
        with self._lock:
            self._admission.inc(outcome=outcome)

    def note_session(self, delta: int) -> None:
        """Track one session opening (+1) or closing (-1)."""
        with self._lock:
            if delta > 0:
                self._sessions_total.inc(delta)
            self._sessions_open.inc(delta)

    def note_request(self, op: str, outcome: str) -> None:
        """Count one finished session-server request."""
        with self._lock:
            self._session_requests.inc(op=op, outcome=outcome)

    def note_cancel(self, reason: str) -> None:
        """Count one cooperative cancellation, by reason."""
        with self._lock:
            self._cancelled.inc(reason=reason)

    def note_drain(self, seconds: float) -> None:
        """Stamp how long the last graceful drain took."""
        with self._lock:
            self._drain_seconds.set(round(float(seconds), 3))

    def sync_breaker(self, breaker, query_id: int = 0) -> None:
        """Fold a circuit breaker's lifetime trip/rejection counts into
        the registry (idempotent — only deltas are added).  A fresh trip
        also lands in the event log, attributed to ``query_id``."""
        if breaker is None:
            return
        with self._lock:
            trips = breaker.trips - self._breaker_seen["trips"]
            if trips > 0:
                self._breaker_trips.inc(trips)
                self.events.emit("breaker.trip", query_id=query_id,
                                 trips=trips)
            rejections = breaker.rejections - self._breaker_seen["rejections"]
            if rejections > 0:
                self._breaker_rejections.inc(rejections)
            self._breaker_seen["trips"] = breaker.trips
            self._breaker_seen["rejections"] = breaker.rejections

    def sync_pool(self, pool) -> None:
        """Fold a worker pool's lifetime speculation/degradation counts
        into the registry (idempotent — only deltas are added; restart
        and heartbeat-miss counters come from the per-query metrics fold
        instead, so they attribute to the query that suffered them)."""
        if pool is None:
            return
        counters = pool.counters()
        with self._lock:
            speculations = (counters["speculations"]
                            - self._pool_seen["speculations"])
            if speculations > 0:
                self._speculations.inc(speculations)
            degradations = (counters["degradations"]
                            - self._pool_seen["degradations"])
            if degradations > 0:
                self._degradations.inc(degradations)
            self._pool_seen["speculations"] = counters["speculations"]
            self._pool_seen["degradations"] = counters["degradations"]

    # -- snapshots ------------------------------------------------------------

    def snapshot(self, fmt: str = "json") -> str:
        """The registry in ``"json"`` (canonical) or ``"prometheus"``
        (text exposition) form."""
        if fmt == "json":
            return self.registry.to_json()
        if fmt == "prometheus":
            return self.registry.to_prometheus()
        raise TelemetryError(
            f"unknown snapshot format {fmt!r}; use json or prometheus"
        )

    def reset(self) -> None:
        """Zero the registry, drop the history, and clear the event
        log (an attached event sink stays attached)."""
        with self._lock:
            self.registry.reset()
            self.history.clear()
            self.events.clear()
            with self._id_lock:
                self._assigned_ids = 0

    # -- sys.* row providers --------------------------------------------------

    def queries_rows(self) -> list:
        keys = [name for name, _ in SYS_QUERIES_FIELDS]
        return [{key: entry[key] for key in keys}
                for entry in self.history.entries()]

    def stages_rows(self) -> list:
        rows = []
        for entry in self.history.entries():
            rows.extend(entry["stages"])
        return rows

    def callbacks_rows(self) -> list:
        rows = []
        for entry in self.history.entries():
            rows.extend(entry["callbacks"])
        return rows

    def plans_rows(self) -> list:
        """Planned operators (with estimates and joined actuals) of every
        retained query — the ``sys.plans`` provider."""
        rows = []
        for entry in self.history.entries():
            rows.extend(entry.get("plans", []))
        return rows

    def events_rows(self) -> list:
        """Retained engine events — the ``sys.events`` provider."""
        return self.events.rows()

    def metrics_rows(self) -> list:
        """The registry flattened to one row per sample (histograms
        expand to ``_bucket`` / ``_sum`` / ``_count`` rows)."""
        rows = []

        def labels_text(labelnames, key, extra=()):
            pairs = list(zip(labelnames, key)) + list(extra)
            return ",".join(f"{n}={v}" for n, v in pairs)

        for family in self.registry.families():
            if family.kind == "histogram":
                for key, series in family.samples():
                    for bound, count in zip(family.buckets,
                                            series["counts"]):
                        rows.append({
                            "metric": f"{family.name}_bucket",
                            "kind": family.kind,
                            "labels": labels_text(
                                family.labelnames, key,
                                [("le", _format_number(bound))]),
                            "value": float(count),
                        })
                    rows.append({
                        "metric": f"{family.name}_bucket",
                        "kind": family.kind,
                        "labels": labels_text(family.labelnames, key,
                                              [("le", "+Inf")]),
                        "value": float(series["count"]),
                    })
                    rows.append({
                        "metric": f"{family.name}_sum", "kind": family.kind,
                        "labels": labels_text(family.labelnames, key),
                        "value": float(series["sum"]),
                    })
                    rows.append({
                        "metric": f"{family.name}_count",
                        "kind": family.kind,
                        "labels": labels_text(family.labelnames, key),
                        "value": float(series["count"]),
                    })
            else:
                for key, value in family.samples():
                    rows.append({
                        "metric": family.name, "kind": family.kind,
                        "labels": labels_text(family.labelnames, key),
                        "value": float(value),
                    })
        return rows


def resources_rows(db) -> list:
    """Current resource-governance state as ``sys.resources`` rows."""
    rows = []

    def add(component, name, value, detail=""):
        rows.append({"component": component, "name": name,
                     "value": float(value), "detail": detail})

    budget = getattr(db, "memory_budget", None)
    add("budget", "memory_budget_bytes", budget or 0.0,
        "off" if budget is None else "on")
    add("budget", "worker_memory_bytes",
        db.cluster.cost_model.worker_memory_bytes)
    admission = getattr(db, "admission", None)
    if admission is not None:
        for name, value in sorted(admission.snapshot().items()):
            add("admission", name, value)
    breaker = getattr(db, "breaker", None)
    if breaker is not None:
        snap = breaker.snapshot()
        add("breaker", "threshold", snap["threshold"])
        add("breaker", "trips", snap["trips"])
        add("breaker", "rejections", snap["rejections"])
        add("breaker", "open_libraries", len(snap["open"]),
            ",".join(snap["open"]))
        for join_name, failures in snap["failures"].items():
            add("breaker", "consecutive_failures", failures, join_name)
    return rows


def workers_rows(db) -> list:
    """Current worker-pool seats as ``sys.workers`` rows (empty on the
    serial backend, or before the pool's first process-backend query)."""
    pool = getattr(db, "worker_pool", None)
    if pool is None:
        return []
    return pool.snapshot_rows()


def sessions_rows(db) -> list:
    """Live session-server sessions as ``sys.sessions`` rows (empty
    when no session server is running)."""
    server = getattr(db, "server", None)
    if server is None:
        return []
    return server.sessions_rows()


def register_sys_tables(db) -> None:
    """Register every ``sys.*`` virtual table on a database's catalog
    and cluster, backed by its :class:`Telemetry` instance."""
    telemetry = db.telemetry
    providers = {
        "sys.queries": telemetry.queries_rows,
        "sys.stages": telemetry.stages_rows,
        "sys.callbacks": telemetry.callbacks_rows,
        "sys.metrics": telemetry.metrics_rows,
        "sys.resources": lambda: resources_rows(db),
        "sys.workers": lambda: workers_rows(db),
        "sys.plans": telemetry.plans_rows,
        "sys.events": telemetry.events_rows,
        "sys.sessions": lambda: sessions_rows(db),
    }
    for name, fields in SYS_TABLES.items():
        db.catalog.register_virtual_table(name, fields)
        db.cluster.register_virtual_dataset(
            name, Schema(field_name for field_name, _ in fields),
            providers[name],
        )
