"""Resource governance: memory accounting, real spill-to-disk, admission
control, and callback circuit breakers.

FUDJ §III promises "memory budget-aware operators that can spill"; this
module is the enforcement half of that promise (``engine/costs.py`` is
the pricing half).  Three cooperating pieces:

* :class:`QueryResources` — a per-query **memory accountant**.  Every
  memory-hungry site (hash-join build sides, FUDJ COMBINE state,
  aggregation tables, exchange receive buffers) routes its resident data
  through :meth:`QueryResources.admit`.  Without a budget the accountant
  only *prices* the would-be spill through the existing cost model, so
  charged numbers are bit-identical to the pre-governance engine.  With
  ``Database(memory_budget=...)`` set, the overflow is **actually
  serialized** to temp files through the serde layer and replayed, and
  the very same :meth:`CostModel.spill_units` term is charged — model
  prediction and observed charge agree by construction.

* :class:`AdmissionController` — a bounded FIFO queue in front of the
  database.  Each query reserves memory estimated from catalog stats;
  when the cluster-wide capacity is exhausted the query waits, and when
  the queue itself is full (or the wait exceeds ``queue_timeout``) the
  query is shed with a typed :class:`~repro.errors.AdmissionError`
  instead of degrading everyone.  :func:`simulate_admission` replays the
  same policy over a synthetic arrival schedule deterministically, for
  seeded burst tests and benchmarks.

* :class:`CircuitBreaker` — per-FUDJ-library consecutive-failure
  tracking.  After ``threshold`` consecutive callback failures the
  library trips open and later queries fail fast with
  :class:`~repro.errors.BreakerOpenError` until an operator resets it.

Everything here is deterministic under seeds: spill decisions depend only
on record sizes and the budget, the simulator is pure, and the breaker is
a counter.
"""

from __future__ import annotations

import heapq
import itertools
import os
import tempfile
import threading

from repro.engine.costs import CostModel
from repro.engine.record import Record, Schema, serialized_values_size
from repro.errors import AdmissionError, BreakerOpenError, SerdeError
from repro.serde.serializer import (
    _I64,
    _U32,
    deserialize_value,
    serialize_value,
)

#: Process-global source of spill-stable record identities.  Negative so
#: they can never collide with CPython ``id()`` values (always >= 0),
#: which pair-dedup uses for records that were never spilled.
_RID_COUNTER = itertools.count(-1, -1)


def _rid_of(record: Record) -> int:
    """The record's spill-stable identity, assigning one on first use."""
    rid = record.rid
    if rid is None:
        rid = next(_RID_COUNTER)
        record.rid = rid
    return rid


def parse_bytes(text) -> float:
    """Parse a human byte amount (``"64mb"``, ``"1.5gb"``, ``"65536"``).

    ``"off"``/``"none"``/empty return None (no budget).  Raises
    ``ValueError`` on garbage — callers translate to their own error
    type.
    """
    if text is None:
        return None
    if isinstance(text, (int, float)):
        return float(text)
    cleaned = text.strip().lower().replace("_", "")
    if cleaned in ("", "off", "none", "unlimited"):
        return None
    for suffix, factor in (("kb", 2 ** 10), ("mb", 2 ** 20),
                           ("gb", 2 ** 30), ("b", 1)):
        if cleaned.endswith(suffix):
            return float(cleaned[: -len(suffix)]) * factor
    return float(cleaned)


def format_bytes(amount) -> str:
    """Render a byte amount the way ``.budget`` prints it."""
    if amount is None:
        return "off"
    amount = float(amount)
    for factor, suffix in ((2 ** 30, "gb"), (2 ** 20, "mb"), (2 ** 10, "kb")):
        if amount >= factor and amount % factor == 0:
            return f"{amount / factor:.0f}{suffix}"
    return f"{amount:.0f}b"


# -- spill codecs --------------------------------------------------------------


class RecordSpillCodec:
    """(De)serializes plain :class:`Record` items for spill files.

    Payload: ``_I64(rid)`` then each boxed value through the serde layer.
    Items that are not records, carry a different schema than the first
    record seen, or hold unserializable values (opaque partial-aggregate
    states) are *pinned*: :meth:`encode` returns None and the accountant
    keeps them resident.
    """

    def __init__(self, schema: Schema = None) -> None:
        self.schema = schema

    def size(self, item) -> int:
        return item.serialized_size()

    def encode(self, item):
        if not isinstance(item, Record):
            return None
        if self.schema is None:
            self.schema = item.schema
        elif item.schema != self.schema:
            return None
        buf = bytearray(_I64.pack(_rid_of(item)))
        try:
            for value in item.values:
                serialize_value(value, buf)
        except SerdeError:
            return None
        return bytes(buf)

    def decode(self, payload: bytes):
        rid = _I64.unpack_from(payload, 0)[0]
        offset = _I64.size
        values = []
        while offset < len(payload):
            value, offset = deserialize_value(payload, offset)
            values.append(value)
        record = Record(self.schema, values)
        record.rid = rid
        return record


class RowSpillCodec:
    """(De)serializes raw value-tuple rows (the batched execution path).

    Batched operators and exchanges hold rows as plain value tuples, not
    :class:`Record` objects.  Frames are byte-compatible with
    :class:`RecordSpillCodec`'s — an ``_I64`` identity prefix (drawn
    from the same spill-stable counter) followed by each value through
    the serde layer — and :meth:`size` prices exactly what
    ``Record.serialized_size`` would, so spill files, spill bytes, and
    peak reservations match row mode bit-for-bit.  Rows holding
    unserializable values (opaque partial-aggregate states) are pinned,
    just as row mode pins the records carrying them.
    """

    def size(self, item) -> int:
        return serialized_values_size(item)

    def encode(self, item):
        if not isinstance(item, tuple):
            return None
        buf = bytearray(_I64.pack(next(_RID_COUNTER)))
        try:
            for value in item:
                serialize_value(value, buf)
        except SerdeError:
            return None
        return bytes(buf)

    def decode(self, payload: bytes):
        offset = _I64.size
        values = []
        while offset < len(payload):
            value, offset = deserialize_value(payload, offset)
            values.append(value)
        return tuple(values)


class EntrySpillCodec:
    """(De)serializes FUDJ COMBINE entries ``(bucket_id, key, record)``.

    Keys are *not* serialized: boxing a key would change its Python type
    on replay (a ``set`` key round-trips as a list), which user callbacks
    could observe.  Instead ``rekey(record)`` recomputes the key from the
    replayed record — key extraction is deterministic, so the entry is
    reconstructed exactly.  Payload: ``_I64(rid) _I64(bucket)`` + values.
    """

    def __init__(self, rekey, schema: Schema = None) -> None:
        self.rekey = rekey
        self.schema = schema

    def size(self, item) -> int:
        # Matches the COMBINE build-side pricing convention: 9 wire bytes
        # for the bucket id (a boxed int64) plus the record.
        return 9 + item[2].serialized_size()

    def encode(self, item):
        bucket, _key, record = item
        if not isinstance(bucket, int) or not isinstance(record, Record):
            return None
        if self.schema is None:
            self.schema = record.schema
        elif record.schema != self.schema:
            return None
        buf = bytearray(_I64.pack(_rid_of(record)))
        buf += _I64.pack(bucket)
        try:
            for value in record.values:
                serialize_value(value, buf)
        except SerdeError:
            return None
        return bytes(buf)

    def decode(self, payload: bytes):
        rid = _I64.unpack_from(payload, 0)[0]
        bucket = _I64.unpack_from(payload, _I64.size)[0]
        offset = 2 * _I64.size
        values = []
        while offset < len(payload):
            value, offset = deserialize_value(payload, offset)
            values.append(value)
        record = Record(self.schema, values)
        record.rid = rid
        return bucket, self.rekey(record), record


class KeyedEntrySpillCodec(EntrySpillCodec):
    """:class:`EntrySpillCodec` for worker processes, which cannot re-run
    key extraction (the key function closes over coordinator state that
    never ships).  Keys are instead cached up front by record identity;
    :meth:`EntrySpillCodec.decode` restores ``record.rid`` *before*
    calling ``rekey``, so the lookup always hits.  The wire frames are
    identical to the parent codec's, keeping worker spill accounting
    byte-compatible with the serial backend's.
    """

    def __init__(self, entries, schema: Schema = None) -> None:
        keys = {entry[2].rid: entry[1] for entry in entries}
        super().__init__(lambda record: keys[record.rid], schema)


# -- the per-query memory accountant -------------------------------------------


class QueryResources:
    """Per-query memory accountant with real spill-to-disk.

    ``enforce=False`` (the default for un-budgeted databases) keeps the
    accountant as a pure observer: it tracks peak reserved bytes and
    charges :meth:`CostModel.spill_units` exactly where the operators
    always charged it, so existing cost predictions are unchanged.  With
    ``enforce=True`` the per-worker budget (``cost_model.
    worker_memory_bytes`` — ``Database(memory_budget=...)`` rewrites it)
    is a hard grant: admitted data beyond it is serialized to a temp
    spill file and immediately replayed, clones taking the originals'
    positions so downstream results are byte-identical.
    """

    def __init__(self, cost_model: CostModel, enforce: bool = False,
                 spill_dir: str = None) -> None:
        self.cost_model = cost_model
        self.enforce = enforce
        #: When set (process-backend workers), spill files go to this
        #: pre-created per-worker directory instead of a fresh tempdir;
        #: the pool owns its lifetime, so :meth:`close` leaves it alone.
        self.spill_dir = spill_dir
        self.peak_reserved_bytes = 0.0
        self.spill_bytes = 0.0
        self.spill_files = 0
        self.spill_units = 0.0
        self.spilled_items = 0
        self.pinned_items = 0
        self.queue_seconds = 0.0
        self._reserved = {}
        self._tempdir = None
        self._file_seq = itertools.count(1)

    # Worker grants are keyed per (stage, worker): each simulated worker
    # holds one operator state per stage at a time.
    def _note_reservation(self, stage_name: str, worker: int,
                          num_bytes: float) -> None:
        self._reserved[(stage_name, worker)] = num_bytes
        self.peak_reserved_bytes = max(
            self.peak_reserved_bytes, sum(self._reserved.values())
        )

    def _spill_path(self) -> str:
        if self.spill_dir is not None:
            return os.path.join(
                self.spill_dir, f"spill-{next(self._file_seq):05d}.bin"
            )
        if self._tempdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="fudj-spill-")
        return os.path.join(
            self._tempdir.name, f"spill-{next(self._file_seq):05d}.bin"
        )

    def admit(self, ctx, stage, worker: int, items: list, codec,
              price: bool = True) -> list:
        """Account a worker's resident collection; spill past the budget.

        Returns the (possibly replayed) list the operator should use in
        place of ``items``.  ``price=True`` marks the sites that have
        always charged :meth:`CostModel.spill_units` (join build sides,
        COMBINE state); enforcement-only sites (exchange buffers,
        pre-aggregation inputs) pass ``price=False`` so un-budgeted runs
        charge exactly what they did before governance existed.
        """
        total = 0.0
        for item in items:
            total += codec.size(item)
        self._note_reservation(stage.name, worker, total)
        units = self.cost_model.spill_units(total) if price else 0.0
        budget = self.cost_model.worker_memory_bytes
        if not self.enforce or total <= budget:
            if units:
                self.spill_units += units
                stage.charge(worker, units)
                if ctx.tracer.enabled:
                    ctx.tracer.attribute("spill", units)
            return items
        # Over budget with enforcement on: keep a resident prefix, spill
        # the rest through the serde layer, and replay immediately so the
        # operator sees the same rows in the same order.
        resident_bytes = 0.0
        frames = []
        spilled_at = []
        out = list(items)
        for index, item in enumerate(items):
            size = codec.size(item)
            if resident_bytes + size <= budget:
                resident_bytes += size
                continue
            payload = codec.encode(item)
            if payload is None:
                # Unserializable (opaque state) — pinned in memory.
                self.pinned_items += 1
                resident_bytes += size
                continue
            frames.append(payload)
            spilled_at.append(index)
        if frames:
            path = self._spill_path()
            with open(path, "wb") as fh:
                for payload in frames:
                    fh.write(_U32.pack(len(payload)))
                    fh.write(payload)
            file_bytes = os.path.getsize(path)
            self.spill_files += 1
            self.spill_bytes += file_bytes
            self.spilled_items += len(frames)
            events = getattr(ctx, "events", None)
            if events is not None:
                events.emit("resource.spill", stage=stage.name,
                            worker=worker, spilled_items=len(frames),
                            spill_bytes=file_bytes)
            with open(path, "rb") as fh:
                data = fh.read()
            offset = 0
            for index in spilled_at:
                (length,) = _U32.unpack_from(data, offset)
                offset += _U32.size
                out[index] = codec.decode(data[offset:offset + length])
                offset += length
            os.remove(path)
        if not price:
            # Enforcement-only site: un-governed runs charge nothing here
            # (historical pricing parity), but once this branch is reached
            # a real spill happened, so the budgeted run pays for it.
            units = self.cost_model.spill_units(total)
        if units:
            self.spill_units += units
            stage.charge(worker, units)
            if ctx.tracer.enabled:
                ctx.tracer.attribute("spill", units, calls=self.spill_files)
        return out

    def absorb(self, stage_name: str, worker: int, stats: dict) -> None:
        """Fold one pool task's worker-side accounting into this (the
        coordinator's) accountant.  Reservations replay through
        :meth:`_note_reservation` in their original order so the peak
        high-water mark lands exactly where the serial backend puts it;
        spill totals add up directly."""
        for total in stats["reservations"]:
            self._note_reservation(stage_name, worker, total)
        spill = stats["spill"]
        self.spill_bytes += spill["bytes"]
        self.spill_files += spill["files"]
        self.spill_units += spill["units"]
        self.spilled_items += spill["spilled"]
        self.pinned_items += spill["pinned"]

    def fold_into(self, metrics) -> None:
        """Copy the accountant's lifetime stats onto the query metrics."""
        metrics.peak_reserved_bytes = self.peak_reserved_bytes
        metrics.spill_bytes = self.spill_bytes
        metrics.spill_files = self.spill_files
        metrics.queue_seconds = self.queue_seconds

    def close(self) -> None:
        """Drop the spill directory (idempotent)."""
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None


# -- admission control ---------------------------------------------------------


class AdmissionTicket:
    """One admitted query's reservation (hand back via ``release``)."""

    __slots__ = ("reserved_bytes", "queue_seconds")

    def __init__(self, reserved_bytes: float, queue_seconds: float) -> None:
        self.reserved_bytes = reserved_bytes
        self.queue_seconds = queue_seconds


class AdmissionController:
    """Bounded FIFO admission queue over a memory capacity.

    A query reserves ``min(estimate, capacity)`` bytes — a query larger
    than the whole cluster still runs, alone, relying on the per-worker
    spill path.  Arrivals past ``queue_limit`` waiters are shed
    immediately; a waiter that exceeds ``queue_timeout`` seconds is shed
    with reason ``"timeout"``.  FIFO is strict: no waiter overtakes an
    earlier one even if it would fit.
    """

    def __init__(self, capacity_bytes: float, max_concurrent: int = None,
                 queue_limit: int = 16,
                 queue_timeout: float = None) -> None:
        self.capacity_bytes = float(capacity_bytes)
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self.reserved_bytes = 0.0
        self.running = 0
        self.admitted_total = 0
        self.shed_total = 0
        self.timeout_total = 0
        self.peak_reserved_bytes = 0.0
        self.peak_queue_depth = 0
        self._cond = threading.Condition()
        self._queue_seq = itertools.count(1)
        self._waiting = []

    def _fits(self, reserved: float) -> bool:
        if self.max_concurrent is not None and self.running >= self.max_concurrent:
            return False
        return self.reserved_bytes + reserved <= self.capacity_bytes

    def acquire(self, estimate_bytes: float, clock=None) -> AdmissionTicket:
        """Block until the reservation fits; shed on queue-full/timeout."""
        import time as _time

        clock = clock or _time.monotonic
        reserved = min(float(estimate_bytes), self.capacity_bytes)
        started = clock()
        with self._cond:
            # Queue-full sheds anyone who would have to wait; a query that
            # fits right now with nobody ahead runs even at queue_limit=0
            # (the simulator's arrival rule, kept in lock-step).
            if (len(self._waiting) >= self.queue_limit
                    and not (not self._waiting and self._fits(reserved))):
                self.shed_total += 1
                raise AdmissionError("queue-full", estimate_bytes,
                                     f"{len(self._waiting)} queries waiting")
            my_turn = next(self._queue_seq)
            self._waiting.append(my_turn)
            self.peak_queue_depth = max(self.peak_queue_depth,
                                        len(self._waiting))
            try:
                while self._waiting[0] != my_turn or not self._fits(reserved):
                    remaining = None
                    if self.queue_timeout is not None:
                        remaining = self.queue_timeout - (clock() - started)
                        if remaining <= 0:
                            self.timeout_total += 1
                            self.shed_total += 1
                            raise AdmissionError(
                                "timeout", estimate_bytes,
                                f"waited {self.queue_timeout:.3f}s"
                            )
                    self._cond.wait(timeout=remaining)
            finally:
                self._waiting.remove(my_turn)
                self._cond.notify_all()
            self.reserved_bytes += reserved
            self.running += 1
            self.admitted_total += 1
            self.peak_reserved_bytes = max(self.peak_reserved_bytes,
                                           self.reserved_bytes)
            return AdmissionTicket(reserved, clock() - started)

    def release(self, ticket: AdmissionTicket) -> None:
        with self._cond:
            self.reserved_bytes -= ticket.reserved_bytes
            self.running -= 1
            self._cond.notify_all()

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "capacity_bytes": self.capacity_bytes,
                "reserved_bytes": self.reserved_bytes,
                "running": self.running,
                "waiting": len(self._waiting),
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "timeout_total": self.timeout_total,
                "peak_reserved_bytes": self.peak_reserved_bytes,
                "peak_queue_depth": self.peak_queue_depth,
            }


def simulate_admission(arrivals, capacity_bytes: float,
                       max_concurrent: int = None, queue_limit: int = 16,
                       queue_timeout: float = None) -> dict:
    """Pure, deterministic replay of the admission policy.

    ``arrivals`` is a list of ``(arrival_time, estimate_bytes,
    duration)`` tuples.  Returns per-query outcomes (in arrival order)
    plus aggregate stats.  Tie-breaking at equal timestamps is fixed:
    completions free capacity first, then waiters time out, then new
    arrivals are considered — so seeded burst tests get one well-defined
    answer.
    """
    capacity = float(capacity_bytes)
    outcomes = [None] * len(arrivals)
    events = []  # (time, kind, seq) — kind: 0 completion, 1 timeout, 2 arrival
    for i, (t, _est, _dur) in enumerate(arrivals):
        heapq.heappush(events, (float(t), 2, i))
    waiting = []  # FIFO of query indices
    reserved = {}
    reserved_total = 0.0
    running = 0
    stats = {
        "admitted": 0, "shed": 0, "timeouts": 0,
        "peak_reserved_bytes": 0.0, "peak_queue_depth": 0,
        "max_queue_seconds": 0.0,
    }

    def fits(amount: float) -> bool:
        if max_concurrent is not None and running >= max_concurrent:
            return False
        return reserved_total + amount <= capacity

    def start(i: int, now: float) -> None:
        nonlocal reserved_total, running
        t, est, dur = arrivals[i]
        amount = min(float(est), capacity)
        reserved[i] = amount
        reserved_total += amount
        running += 1
        stats["admitted"] += 1
        stats["peak_reserved_bytes"] = max(stats["peak_reserved_bytes"],
                                           reserved_total)
        wait = now - float(t)
        stats["max_queue_seconds"] = max(stats["max_queue_seconds"], wait)
        outcomes[i] = {"outcome": "admitted", "queue_seconds": wait,
                       "start": now, "finish": now + float(dur)}
        heapq.heappush(events, (now + float(dur), 0, i))

    def drain(now: float) -> None:
        while waiting and fits(min(float(arrivals[waiting[0]][1]), capacity)):
            start(waiting.pop(0), now)

    while events:
        now, kind, i = heapq.heappop(events)
        if kind == 0:  # completion
            reserved_total -= reserved.pop(i)
            running -= 1
            drain(now)
        elif kind == 1:  # timeout check
            if i in waiting:
                waiting.remove(i)
                stats["timeouts"] += 1
                stats["shed"] += 1
                outcomes[i] = {"outcome": "timeout",
                               "queue_seconds": now - float(arrivals[i][0])}
                drain(now)
        else:  # arrival
            if not waiting and fits(min(float(arrivals[i][1]), capacity)):
                start(i, now)
            elif len(waiting) >= queue_limit:
                stats["shed"] += 1
                outcomes[i] = {"outcome": "queue-full", "queue_seconds": 0.0}
            else:
                waiting.append(i)
                stats["peak_queue_depth"] = max(stats["peak_queue_depth"],
                                                len(waiting))
                if queue_timeout is not None:
                    heapq.heappush(events,
                                   (now + float(queue_timeout), 1, i))
    return {"outcomes": outcomes, **stats}


# -- per-tenant lanes ----------------------------------------------------------


class TenantLanes:
    """Per-tenant backpressure in front of the admission queue.

    Each tenant gets a *lane* with a bounded in-flight depth (requests
    queued or running on its behalf).  A request past the bound is shed
    immediately with a typed :class:`~repro.errors.AdmissionError`
    (reason ``"lane-full"``) instead of entering the shared admission
    queue — one chatty tenant cannot occupy every queue slot and starve
    the rest.  The session server wraps each query request in
    :meth:`enter` / :meth:`leave`; the shared
    :class:`AdmissionController` behind it still owns memory capacity
    and global queueing.
    """

    def __init__(self, depth: int = 4) -> None:
        if depth < 1:
            raise ValueError(f"lane depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self.admitted_total = 0
        self.shed_total = 0
        self._inflight = {}
        self._lock = threading.Lock()

    def enter(self, tenant: str) -> None:
        """Take one in-flight slot in ``tenant``'s lane or shed."""
        tenant = str(tenant)
        with self._lock:
            depth = self._inflight.get(tenant, 0)
            if depth >= self.depth:
                self.shed_total += 1
                raise AdmissionError(
                    "lane-full", 0.0,
                    f"tenant {tenant!r} already has {depth} requests "
                    f"in flight (lane depth {self.depth})",
                )
            self._inflight[tenant] = depth + 1
            self.admitted_total += 1

    def leave(self, tenant: str) -> None:
        """Return ``tenant``'s slot (pairs with a successful enter)."""
        tenant = str(tenant)
        with self._lock:
            depth = self._inflight.get(tenant, 0) - 1
            if depth > 0:
                self._inflight[tenant] = depth
            else:
                self._inflight.pop(tenant, None)

    def depth_of(self, tenant: str) -> int:
        """Current in-flight depth of one tenant's lane."""
        with self._lock:
            return self._inflight.get(str(tenant), 0)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "depth": self.depth,
                "tenants": dict(sorted(self._inflight.items())),
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
            }


# -- circuit breaker -----------------------------------------------------------


class CircuitBreaker:
    """Trips a FUDJ callback library after N consecutive failures.

    ``threshold=None`` disables the breaker entirely (every method is a
    cheap no-op), which is the default for un-governed databases.  State
    is per join-library name: every failing callback counts immediately
    (so a quarantined query full of poison records can trip mid-query),
    while the streak only resets when a whole query completes for the
    library — a failing query cannot launder its streak through its own
    earlier successful callbacks.  A tripped library stays open —
    failing fast with :class:`~repro.errors.BreakerOpenError` — until
    :meth:`reset`.
    """

    def __init__(self, threshold: int = None) -> None:
        self.threshold = threshold
        self.failures = {}
        self.open = set()
        self.trips = 0
        self.rejections = 0

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def check(self, join_name: str) -> None:
        """Raise when the library's breaker is open (query entry point)."""
        if join_name in self.open:
            self.rejections += 1
            raise BreakerOpenError(join_name,
                                   self.failures.get(join_name, 0),
                                   self.threshold)

    def record_failure(self, join_name: str) -> None:
        if not self.enabled:
            return
        count = self.failures.get(join_name, 0) + 1
        self.failures[join_name] = count
        if count >= self.threshold and join_name not in self.open:
            self.open.add(join_name)
            self.trips += 1

    def record_success(self, join_name: str) -> None:
        if not self.enabled or join_name in self.open:
            return
        self.failures[join_name] = 0

    def reset(self, join_name: str = None) -> None:
        """Close the breaker (one library, or all when name is None)."""
        if join_name is None:
            self.failures.clear()
            self.open.clear()
        else:
            self.failures.pop(join_name, None)
            self.open.discard(join_name)

    def snapshot(self) -> dict:
        return {
            "threshold": self.threshold,
            "open": sorted(self.open),
            "failures": dict(sorted(self.failures.items())),
            "trips": self.trips,
            "rejections": self.rejections,
        }
