"""Records and schemas.

A :class:`Record` is an immutable row: a tuple of boxed engine values plus
a shared :class:`Schema` mapping field names to positions.  After a join,
field names are qualified with the dataset alias (``p.id``, ``w.location``)
so expressions can reference either side unambiguously.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.serde.serializer import serialize_value
from repro.serde.values import AValue, box


class Schema:
    """An ordered, immutable list of field names with O(1) lookup."""

    __slots__ = ("fields", "_index")

    def __init__(self, fields) -> None:
        self.fields = tuple(fields)
        if len(set(self.fields)) != len(self.fields):
            raise ExecutionError(f"duplicate field names in schema: {self.fields}")
        self._index = {name: i for i, name in enumerate(self.fields)}

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        return f"Schema({', '.join(self.fields)})"

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of ``name``; raises ExecutionError when absent."""
        try:
            return self._index[name]
        except KeyError:
            raise ExecutionError(
                f"no field {name!r} in schema {self.fields}"
            ) from None

    def qualify(self, alias: str) -> "Schema":
        """Return a schema with every field prefixed by ``alias.``."""
        return Schema(f"{alias}.{name}" for name in self.fields)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation of two records (join output)."""
        return Schema(self.fields + other.fields)


class Record:
    """An immutable row of boxed values conforming to a schema."""

    __slots__ = ("schema", "values", "rid")

    def __init__(self, schema: Schema, values) -> None:
        self.schema = schema
        # Stable identity carried across spill round-trips: operators that
        # need object identity (pair dedup) use ``rid`` when set, so a
        # record replayed from a spill file still counts as "the same row".
        self.rid = None
        self.values = tuple(values)
        if len(self.values) != len(schema):
            raise ExecutionError(
                f"record arity {len(self.values)} != schema arity {len(schema)}"
            )

    @staticmethod
    def from_dict(schema: Schema, mapping) -> "Record":
        """Build a record from a plain mapping, boxing each value."""
        return Record(schema, (box(mapping[name]) for name in schema.fields))

    def __getitem__(self, name: str) -> AValue:
        return self.values[self.schema.index_of(name)]

    def get(self, name: str, default=None):
        """Value of ``name`` or ``default`` when the field is absent."""
        if name in self.schema:
            return self.values[self.schema.index_of(name)]
        return default

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Record)
            and self.schema == other.schema
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value!r}" for name, value in zip(self.schema.fields, self.values)
        )
        return f"Record({pairs})"

    def to_dict(self) -> dict:
        """Plain-Python dict view (unboxes every field)."""
        from repro.serde.values import unbox

        return {
            name: unbox(value)
            for name, value in zip(self.schema.fields, self.values)
        }

    def concat(self, other: "Record", schema: Schema = None) -> "Record":
        """Concatenate two records (join output).  ``schema`` may be passed
        to avoid rebuilding it per pair in tight join loops."""
        if schema is None:
            schema = self.schema.concat(other.schema)
        return Record(schema, self.values + other.values)

    def serialized_size(self) -> int:
        """Wire size of this record in bytes (see
        :func:`serialized_values_size`)."""
        return serialized_values_size(self.values)


def serialized_values_size(values) -> int:
    """Wire size of one row's values in bytes.

    Shared by :meth:`Record.serialized_size` and the batched execution
    path (which sizes raw value tuples), so row and batch byte
    accounting agree by construction.  Opaque intra-engine values
    (partial aggregate states, PPlan handles) are not wire-serializable;
    they are counted as a fixed 16-byte blob, which only affects the
    simulated network charge of the (small) partial-state shuffles.
    """
    from repro.errors import SerdeError

    buf = bytearray()
    opaque = 0
    for value in values:
        try:
            serialize_value(value, buf)
        except SerdeError:
            opaque += 1
    return len(buf) + 16 * opaque
