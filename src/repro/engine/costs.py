"""The engine cost model.

Operators charge abstract *work units* per record touched, per comparison,
and per FUDJ boundary conversion; exchanges charge bytes moved.  The model
then converts charged work into simulated seconds for any virtual core
count.  Constants are calibrated so that relative magnitudes mirror the
paper's cluster (a record-touch is cheap, a serialized network byte is
cheaper per unit but shuffles move many of them).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the simulated cluster.

    Attributes:
        core_ops_per_second: work units one core retires per second.
        network_bytes_per_second: cluster bisection bandwidth.
        record_touch: work units to read/emit one record in an operator.
        comparison: work units for one predicate/verify evaluation.
        expensive_predicate: work units for a heavy UDF predicate such as
            ``ST_Contains`` on polygons (the on-top NLJ pays this per pair).
        hash_op: work units for hashing a key.
        translation: work units for one FUDJ boundary conversion
            (box/unbox, Figure 7).
        serde_byte: work units to (de)serialize one byte at an exchange.
    """

    core_ops_per_second: float = 5.0e6
    network_bytes_per_second: float = 120.0e6
    #: Shared switch-fabric bandwidth.  Point-to-point shuffle traffic
    #: drains through per-node NICs in parallel; broadcast replication is
    #: all-to-all and saturates the shared fabric instead, so its total
    #: bytes (which grow with the cluster size) are charged against this
    #: fixed capacity.
    fabric_bytes_per_second: float = 1.2e9
    record_touch: float = 1.0
    comparison: float = 2.0
    expensive_predicate: float = 40.0
    hash_op: float = 1.5
    translation: float = 0.4
    serde_byte: float = 0.1
    #: One theta bucket-match check inside the NLJ that multi-joins fall
    #: back to (a compiled integer-range test, far cheaper than a full
    #: predicate).
    match_op: float = 0.1
    #: Per-worker memory budget for join build sides.  Build inputs beyond
    #: it spill: the overflow is written to disk and read back once (the
    #: §III "memory budget-aware operators that can spill" behaviour).
    worker_memory_bytes: float = 64.0e6
    #: Local disk bandwidth used for spills.
    disk_bytes_per_second: float = 200.0e6
    #: Real predicate implementations short-circuit on rejects (an MBR
    #: test fails before the exact geometry test runs), so a non-matching
    #: evaluation costs this fraction of the full predicate.
    reject_discount: float = 0.15
    #: Work units per byte spooled to the local checkpoint store at an
    #: exchange.  Checkpoint writes are asynchronous write-behind (the
    #: stage does not wait for the disk), so the charge is a fraction of
    #: a serde unit — calibrated so checkpointing costs <= ~5% of a
    #: query's simulated makespan when no faults fire.
    checkpoint_byte: float = 0.015

    def predicate_units(self, full_cost: float, matched: bool) -> float:
        """Work units one predicate evaluation costs, given its outcome."""
        return full_cost if matched else full_cost * self.reject_discount

    def cpu_seconds(self, units: float) -> float:
        """Simulated seconds one core needs for ``units`` of work."""
        return units / self.core_ops_per_second

    def network_seconds(self, num_bytes: float) -> float:
        """Simulated seconds one NIC needs for ``num_bytes``."""
        return num_bytes / self.network_bytes_per_second

    def fabric_seconds(self, num_bytes: float) -> float:
        """Simulated seconds the shared fabric needs for ``num_bytes``."""
        return num_bytes / self.fabric_bytes_per_second

    def spill_units(self, build_bytes: float) -> float:
        """Extra work units when a build side of ``build_bytes`` exceeds
        the per-worker memory budget: the overflow is written and read
        back once through the disk, expressed in core-equivalent units so
        it enters the worker's makespan."""
        overflow = max(0.0, build_bytes - self.worker_memory_bytes)
        if overflow == 0.0:
            return 0.0
        seconds = 2.0 * overflow / self.disk_bytes_per_second
        return seconds * self.core_ops_per_second

    def checkpoint_write_units(self, num_bytes: float) -> float:
        """Work units to spool exchange output to the checkpoint store."""
        return num_bytes * self.checkpoint_byte

    def checkpoint_restore_units(self, num_bytes: float) -> float:
        """Work units for a recovering task to read its input back:
        the checkpoint is scanned from local disk and deserialized."""
        disk_seconds = num_bytes / self.disk_bytes_per_second
        return (disk_seconds * self.core_ops_per_second
                + num_bytes * self.serde_byte)


DEFAULT_COST_MODEL = CostModel()
