"""Cooperative cancellation: one token per query, checked at engine
boundaries.

A :class:`CancellationToken` is a thread-safe latch a *controller* (the
session server, a client disconnect monitor, an operator at a shell)
flips exactly once, and a *worker* (the query executing on the engine
thread) polls at its natural checkpoints:

* every new plan stage (:meth:`ExecutionContext.check_cancel
  <repro.engine.context.ExecutionContext.check_cancel>` runs on the
  stage observer),
* every operator boundary (:meth:`PhysicalOperator.execute
  <repro.engine.operators.base.PhysicalOperator.execute>`),
* every exchange and every record batch built,
* every per-worker task attempt (``ExecutionContext.run_task``) and the
  process-pool lease loop (``WorkerPool.run_tasks(check_cancel=...)``),
* every guarded FUDJ callback invocation, so a slow user ``summarize``
  or ``combine`` phase aborts record-by-record, not phase-by-phase.

Cancellation is *cooperative*: nothing is killed.  The checkpoint
raises :class:`~repro.errors.QueryCancelledError`, the normal error
unwind frees reservations and spill files (``executor.execute_plan``
closes the accountant and abandons pool leases on any error), and the
engine is immediately reusable — re-running the same query afterwards
returns byte-identical rows, which ``tests/test_server.py`` pins down.

The deadline half of request robustness rides the existing
``query_timeout`` machinery (PR 1); the token is the asynchronous half
— disconnects and explicit CANCELs — and both fire through the same
:meth:`ExecutionContext.check_cancel` checkpoints.
"""

from __future__ import annotations

import threading

from repro.errors import QueryCancelledError

__all__ = ["CancellationToken"]


class CancellationToken:
    """A one-shot, thread-safe cancellation latch.

    ``cancel(reason)`` may be called from any thread, any number of
    times — the first call wins and records its reason.  ``check()``
    raises :class:`~repro.errors.QueryCancelledError` once the token is
    cancelled and is cheap enough for per-record polling (one attribute
    read on the fast path).
    """

    __slots__ = ("_cancelled", "_reason", "_lock")

    def __init__(self) -> None:
        self._cancelled = False
        self._reason = ""
        self._lock = threading.Lock()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def reason(self) -> str:
        """The first cancel's reason (empty while uncancelled)."""
        return self._reason

    def cancel(self, reason: str = "cancelled") -> bool:
        """Flip the latch; returns True only for the winning call."""
        with self._lock:
            if self._cancelled:
                return False
            self._reason = str(reason) or "cancelled"
            self._cancelled = True
            return True

    def check(self) -> None:
        """Raise :class:`QueryCancelledError` if cancelled (else no-op)."""
        if self._cancelled:
            raise QueryCancelledError(self._reason)

    def __repr__(self) -> str:
        state = f"cancelled: {self._reason!r}" if self._cancelled else "live"
        return f"CancellationToken({state})"
