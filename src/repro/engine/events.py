"""Deterministic structured event log: the engine's decision timeline.

Metrics (:mod:`repro.engine.telemetry`) answer *how much*; traces
(:mod:`repro.engine.tracing`) answer *where the time went* inside one
query.  The event log answers *what the engine decided and when*:
retries, stragglers, spills, admission decisions, breaker trips, worker
supervision, optimizer choices — one typed :class:`Event` per discrete
decision, appended in execution order.

Two event classes share one log:

* **Deterministic events** are emitted by seed-deterministic code paths
  (the serial retry loop, the coordinator-side ledger replay of the
  process backend, admission, spill, breaker, optimizer, and query
  lifecycle).  They carry only charged units, simulated seconds,
  counters, and stable identifiers — never wall clocks, PIDs, or temp
  paths — so two identical seeded runs produce a **byte-identical**
  canonical JSONL stream (:meth:`EventLog.to_jsonl`), and the serial
  and process backends produce the *same* deterministic stream for the
  same query (worker-side events ride the process backend's ledger
  replay, not the workers themselves).

* **Runtime events** (the ``worker.*`` kinds) describe physical pool
  supervision — leases, real crashes, heartbeat misses, speculation,
  degradation — which depends on OS scheduling.  They are retained and
  queryable (``sys.events``, the ``/events`` monitor endpoint) but are
  excluded from the canonical JSONL stream and carry negative sequence
  numbers, so they can never perturb the deterministic timeline.

Every emitted ``kind`` must be registered in :data:`EVENT_KINDS`; the
docs linter (``tools/lint_docs.py`` check #9) holds
``docs/observability.md`` to that registry.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Operator-instance ids inside stage names (``hash-join#5/xleft``) come
#: from a process-global counter, so they differ across sessions in one
#: process; the event log strips them (``hash-join/xleft``) to keep the
#: stream byte-identical across identical seeded runs.
_INSTANCE_ID = re.compile(r"#\d+")

#: Default bound on retained events (oldest evicted first).
DEFAULT_EVENT_LIMIT = 4096

#: Severity levels an event may carry.
EVENT_LEVELS = ("debug", "info", "warn", "error")

#: Every event kind the engine may emit: name -> (default level, help).
#: The docs linter requires each kind to appear in
#: ``docs/observability.md``; :meth:`EventLog.emit` rejects unregistered
#: kinds, so the registry and the code cannot drift apart.
EVENT_KINDS = {
    # query lifecycle (Database.execute / Telemetry.record_statement)
    "query.start": ("info", "A statement was parsed and began executing."),
    "query.finish": ("info", "A statement finished successfully."),
    "query.error": ("error", "A statement failed; detail has the class."),
    "stage.finish": ("debug", "One plan stage completed (per-phase "
                              "timeline: units, records, workers)."),
    # cost optimizer (Database._cost_optimize + record_statement)
    "plan.order": ("info", "The cost optimizer chose a join order."),
    "plan.operator": ("info", "The cost optimizer picked a physical "
                              "operator for one join."),
    "plan.actuals": ("debug", "Estimated vs. actual rows for one "
                              "annotated stage, on completion."),
    # resource governance (resources.py / database.py)
    "admission.admit": ("debug", "The admission controller admitted a "
                                 "query."),
    "admission.shed": ("warn", "The admission controller shed a query "
                               "(queue full or wait timeout)."),
    "resource.spill": ("warn", "Over-budget operator state was spilled "
                               "to disk and replayed."),
    "breaker.trip": ("error", "A join library's circuit breaker "
                              "tripped open."),
    "breaker.reject": ("warn", "A query failed fast against an open "
                               "circuit breaker."),
    # fault/retry path (context.run_task, faults.py, workers replay)
    "fault.retry": ("warn", "A task attempt's output was lost; the "
                            "task replayed from its checkpoint."),
    "fault.straggler": ("warn", "A straggling task was cut short by a "
                                "speculative copy."),
    "fault.exchange_retry": ("warn", "A shuffle send failed in transit "
                                     "and was re-sent."),
    "fault.quarantine": ("warn", "Poison records were dropped by a "
                                 "degraded-mode callback policy."),
    # process-backend supervision (runtime: physical, not deterministic)
    "worker.lease": ("debug", "A task was leased to a pool worker."),
    "worker.crash": ("warn", "A pool worker died holding a lease."),
    "worker.redispatch": ("info", "A dead worker's task was re-dispatched "
                                  "to a fresh process."),
    "worker.heartbeat_miss": ("warn", "A live worker missed a heartbeat "
                                      "deadline."),
    "worker.speculate": ("info", "A speculative copy was launched "
                                 "against a real straggler."),
    "worker.degrade": ("warn", "The process backend degraded to the "
                               "serial path for this stage."),
    # session server (runtime: client timing, not deterministic)
    "server.start": ("info", "The session server began accepting "
                             "connections."),
    "server.drain": ("info", "The session server stopped accepting and "
                             "began draining in-flight requests."),
    "server.stop": ("info", "The session server shut down."),
    "session.open": ("info", "A client session connected."),
    "session.close": ("info", "A client session disconnected."),
    "session.shed": ("warn", "A connection or request was refused "
                             "(session cap, tenant lane full, or "
                             "drain)."),
    "cancel.request": ("warn", "A query's cancellation token was "
                               "cancelled (client CANCEL, disconnect, "
                               "or drain)."),
    "cancel.complete": ("info", "A cancelled query finished unwinding; "
                                "its resources are released."),
}

#: Kinds whose timing depends on OS scheduling or client behaviour:
#: retained and queryable, but excluded from the deterministic JSONL
#: stream.  ``worker.*`` is pool supervision; ``server.*`` /
#: ``session.*`` / ``cancel.*`` follow real sockets and wall-clock
#: races, so they must never perturb the deterministic timeline either.
RUNTIME_KINDS = frozenset(
    kind for kind in EVENT_KINDS
    if kind.startswith(("worker.", "server.", "session.", "cancel."))
)


class EventLogError(ReproError):
    """Misuse of the event log (unknown kind or level, bad limit)."""


def normalize_stage(stage: str) -> str:
    """A stage name with its process-global operator-instance id
    stripped — the session-stable form events carry."""
    return _INSTANCE_ID.sub("", stage)


def _phase_for(stage: str) -> str:
    """FUDJ phase of a stage-scoped event (empty for non-stage events)."""
    if not stage:
        return ""
    from repro.engine.telemetry import phase_of, stage_op

    return phase_of(stage_op(stage))


@dataclass(frozen=True)
class Event:
    """One engine decision.

    ``seq`` is positive and gapless for deterministic events, negative
    for runtime events (their own descending counter), so the
    deterministic timeline stays contiguous whatever the pool does.
    ``detail`` holds the kind-specific payload (deterministic fields
    only: units, counts, names — never wall clocks or PIDs).
    """

    seq: int
    kind: str
    level: str
    query_id: int
    phase: str
    stage: str
    worker: int
    runtime: bool
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "level": self.level,
            "query": self.query_id,
            "phase": self.phase,
            "stage": self.stage,
            "worker": self.worker,
            "detail": dict(self.detail),
        }

    def to_line(self) -> str:
        """Canonical JSONL form: sorted keys, no whitespace — the unit
        of the byte-identical determinism contract."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


class _NullEvents:
    """The inert sink: every emit is a no-op (contexts without a log)."""

    __slots__ = ()

    def emit(self, kind: str, stage: str = "", worker: int = -1,
             phase: str = None, level: str = None, **detail) -> None:
        return None


NULL_EVENTS = _NullEvents()


class QueryEvents:
    """An emitter handle bound to one query id (what the execution
    context carries, so operators never thread ids around)."""

    __slots__ = ("log", "query_id")

    def __init__(self, log: "EventLog", query_id: int) -> None:
        self.log = log
        self.query_id = query_id

    def emit(self, kind: str, stage: str = "", worker: int = -1,
             phase: str = None, level: str = None, **detail) -> Event:
        return self.log.emit(kind, query_id=self.query_id, stage=stage,
                             worker=worker, phase=phase, level=level,
                             **detail)


class EventLog:
    """A bounded, append-only log of typed events with a canonical
    JSONL serialization.

    Retention is ``limit`` events (oldest evicted first).  An optional
    file sink (:meth:`attach_sink`) tees every *deterministic* event to
    disk as it is emitted, so the on-disk stream is complete even when
    retention evicts — and byte-identical across identical seeded runs.
    """

    def __init__(self, limit: int = DEFAULT_EVENT_LIMIT) -> None:
        if limit < 1:
            raise EventLogError(f"event limit must be >= 1, got {limit}")
        self.limit = limit
        self._events = []
        self._seq = 0
        self._runtime_seq = 0
        self.total_emitted = 0
        self._sink = None
        self.sink_path = None
        #: Concurrent sessions emit from their own threads; sequence
        #: assignment, retention, and the file sink share one lock so
        #: the stream stays gapless and the sink lines never interleave.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._events)

    # -- emission -------------------------------------------------------------

    def emit(self, kind: str, query_id: int = 0, stage: str = "",
             worker: int = -1, phase: str = None, level: str = None,
             **detail) -> Event:
        """Append one event; returns it.

        ``kind`` must be registered in :data:`EVENT_KINDS` (the default
        level comes from the registry; ``level`` overrides it).
        ``phase`` defaults to the FUDJ phase of ``stage`` when one is
        given.  ``detail`` must be JSON-representable and deterministic.
        """
        registered = EVENT_KINDS.get(kind)
        if registered is None:
            raise EventLogError(
                f"unregistered event kind {kind!r}; add it to "
                "repro.engine.events.EVENT_KINDS"
            )
        if level is None:
            level = registered[0]
        elif level not in EVENT_LEVELS:
            raise EventLogError(
                f"unknown event level {level!r}; "
                f"use {'/'.join(EVENT_LEVELS)}"
            )
        runtime = kind in RUNTIME_KINDS
        with self._lock:
            if runtime:
                self._runtime_seq += 1
                seq = -self._runtime_seq
            else:
                self._seq += 1
                seq = self._seq
            event = Event(
                seq=seq, kind=kind, level=level, query_id=int(query_id),
                phase=_phase_for(stage) if phase is None else phase,
                stage=normalize_stage(stage), worker=int(worker),
                runtime=runtime, detail=detail,
            )
            self._events.append(event)
            self.total_emitted += 1
            if len(self._events) > self.limit:
                del self._events[: len(self._events) - self.limit]
            if self._sink is not None and not runtime:
                self._sink.write(event.to_line() + "\n")
                self._sink.flush()
        return event

    def scoped(self, query_id: int) -> QueryEvents:
        """An emitter bound to ``query_id``."""
        return QueryEvents(self, query_id)

    # -- views ----------------------------------------------------------------

    def events(self, runtime: bool = True) -> list:
        """Retained events, oldest first; ``runtime=False`` keeps only
        the deterministic stream."""
        if runtime:
            return list(self._events)
        return [event for event in self._events if not event.runtime]

    def tail(self, count: int = 10) -> list:
        """The newest ``count`` retained events, oldest first."""
        if count < 1:
            return []
        return list(self._events[-count:])

    def rows(self) -> list:
        """``sys.events`` rows: one per retained event, ``detail``
        rendered as canonical JSON text."""
        return [
            {
                "seq": event.seq,
                "query_id": event.query_id,
                "kind": event.kind,
                "level": event.level,
                "phase": event.phase,
                "stage": event.stage,
                "worker": event.worker,
                "runtime": event.runtime,
                "detail": json.dumps(event.detail, sort_keys=True,
                                     separators=(",", ":")),
            }
            for event in self._events
        ]

    def to_jsonl(self) -> str:
        """The retained *deterministic* stream as canonical JSONL —
        byte-identical across identical seeded runs, serial or process
        backend alike."""
        lines = [event.to_line() for event in self._events
                 if not event.runtime]
        return "\n".join(lines) + ("\n" if lines else "")

    # -- file sink ------------------------------------------------------------

    def attach_sink(self, path: str, append: bool = False) -> None:
        """Tee every deterministic event to ``path`` as it is emitted
        (``Database(event_log=...)`` / ``--events-out``).  Replaces any
        previous sink; ``append`` continues an existing file instead of
        truncating (how ``.demo`` carries the stream across its database
        swap)."""
        self.close_sink()
        self._sink = open(path, "a" if append else "w")
        self.sink_path = path

    def close_sink(self) -> None:
        """Flush and close the file sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def clear(self) -> None:
        """Drop retained events and restart both sequences (the file
        sink, if any, is left attached and untouched)."""
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._runtime_seq = 0
            self.total_emitted = 0
