"""Interval substrate for the Overlapping-Interval FUDJ (OIPJoin-style)."""

from repro.interval.interval import Interval, intervals_overlap

__all__ = ["Interval", "intervals_overlap"]
