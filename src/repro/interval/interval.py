"""Half-open time intervals and their overlap predicate.

The paper treats intervals as ``(start, end)`` pairs (converted internally
to long arrays, §VI-B) with the overlap condition
``i1.start < i2.end and i1.end > i2.start``.  We keep the same convention:
intervals are half-open-ish in the sense that merely touching endpoints do
NOT overlap, matching the paper's ``verify`` pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Interval:
    """An immutable time interval with ``start <= end``.

    Ordering is by ``(start, end)`` so lists of intervals can be sorted for
    merge-style algorithms.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end before start: ({self.start}, {self.end})")

    @property
    def length(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """Paper's overlap predicate: strict on both sides."""
        return self.start < other.end and self.end > other.start

    def contains_point(self, t: float) -> bool:
        """True if ``t`` lies in the closed interval."""
        return self.start <= t <= self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping sub-interval, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def shift(self, delta: float) -> "Interval":
        """Return this interval translated by ``delta``."""
        return Interval(self.start + delta, self.end + delta)

    def as_tuple(self) -> tuple:
        """Return ``(start, end)`` — the long-array form of paper §VI-B."""
        return (self.start, self.end)


def intervals_overlap(a: Interval, b: Interval) -> bool:
    """Module-level alias of :meth:`Interval.overlaps` for the function
    registry (the SQL ``interval_overlapping`` builtin)."""
    return a.overlaps(b)
