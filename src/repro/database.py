"""The public facade: a FUDJ-capable distributed database in one object.

Typical use::

    from repro import Database
    from repro.joins import SpatialJoin

    db = Database(num_partitions=8)
    db.execute("CREATE TYPE Park { id: int, boundary: geometry }")
    db.execute("CREATE DATASET Parks(Park) PRIMARY KEY id")
    db.load("Parks", rows)
    db.create_join("st_contains", SpatialJoin, defaults=(64,))
    result = db.execute(
        "SELECT p.id, COUNT(w.id) AS num_fires "
        "FROM Parks p, Wildfires w "
        "WHERE ST_Contains(p.boundary, w.location) GROUP BY p.id"
    )

``mode`` selects the paper's three execution approaches per query:
``"fudj"`` (the rewrite + translation layer), ``"builtin"`` (hand-written
operators), ``"ontop"`` (scalar UDF inside a nested-loop join).
"""

from __future__ import annotations

import os
import threading
import time
import weakref

from repro.catalog import Catalog
from repro.engine.batch import EXECUTION_MODES
from repro.core.dedup import (
    DedupStrategy,
    DuplicateAvoidance,
    DuplicateElimination,
    NoDedup,
)
from repro.core.library import JoinRegistry, JoinSignature
from repro.engine import Cluster, Schema
from repro.engine.context import ERROR_POLICIES
from repro.engine.costs import CostModel
from repro.engine.executor import QueryResult, execute_plan
from repro.engine.faults import FaultPlan
from repro.engine.resources import (
    AdmissionController,
    CircuitBreaker,
    QueryResources,
    format_bytes,
    parse_bytes,
)
from repro.engine.telemetry import Telemetry, register_sys_tables
from repro.errors import (
    AdmissionError,
    BreakerOpenError,
    FudjCallbackError,
    PlanError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    TaskFailedError,
)
from repro.optimizer import (
    OPTIMIZER_MODES,
    CardinalityEstimator,
    ExecutionMode,
    SelectionContext,
    annotate_estimates,
    bind_select,
    default_selection,
    enumerate_join_order,
    optimize,
    plan_physical,
)
from repro.query.functions import default_function_registry
from repro.query.logical import (
    CreateDatasetStatement,
    CreateJoinStatement,
    CreateTypeStatement,
    DropDatasetStatement,
    DropJoinStatement,
    ExplainStatement,
    SelectStatement,
)
from repro.query.parser import parse_statement

_DEDUP_STRATEGIES = {
    "avoidance": DuplicateAvoidance,
    "elimination": DuplicateElimination,
    "none": NoDedup,
}

#: Sentinel distinguishing "not passed" from an explicit None override.
_UNSET = object()


class Database:
    """A self-contained FUDJ-enabled database instance.

    ``fault_plan``, ``on_error``, and ``query_timeout`` set the
    instance-wide fault-tolerance posture; ``trace`` turns structured
    span tracing on for every query.  Each can be overridden per query
    in :meth:`execute`.

    Resource governance (all off by default):

    * ``memory_budget`` — per-worker memory grant in bytes (or a string
      like ``"256kb"``).  It rewrites the cost model's
      ``worker_memory_bytes`` so the spill *pricing* and the real
      spill *enforcement* share one number: operator state beyond the
      grant is serialized to temp files and replayed.  Also turns on the
      admission controller with a cluster-wide capacity of
      ``memory_budget * num_partitions``.
    * ``max_concurrent`` — cap on concurrently admitted queries (enables
      the admission controller even without a byte budget).
    * ``queue_limit`` / ``queue_timeout`` — bounded admission queue
      depth and per-query wait budget in seconds; exceeding either sheds
      the query with :class:`~repro.errors.AdmissionError`.
    * ``breaker_threshold`` — consecutive FUDJ callback failures after
      which a join library trips its circuit breaker and later queries
      fail fast with :class:`~repro.errors.BreakerOpenError` until
      ``db.breaker.reset()``.

    Execution backend:

    * ``backend`` — ``"serial"`` (simulated workers in-process, the
      deterministic default) or ``"process"`` (COMBINE tasks run on a
      supervised pool of real worker processes that genuinely crash,
      straggle, and recover; results stay byte-identical to serial).
      Defaults to the ``FUDJ_BACKEND`` environment variable when unset.
    * ``workers`` — worker-process count for the process backend
      (default: a small bound from partitions/cores/machine size).

    Execution granularity:

    * ``execution`` — ``"row"`` (record-at-a-time operators, the
      default) or ``"batch"`` (operators exchange columnar
      :class:`~repro.engine.batch.RecordBatch` chunks and run
      vectorized kernels; rows and deterministic metrics stay
      byte-identical to row mode).  Defaults to the ``FUDJ_EXEC``
      environment variable when unset.
    * ``batch_rows`` — target rows per batch in batch mode (default
      1024).

    Query optimizer:

    * ``optimizer`` — ``"rule"`` (the written FROM order with the FUDJ
      rewrite and pushdown, the deterministic default) or ``"cost"``
      (stats-driven: pessimistic cardinality bounds pick the join order
      and the physical operator per join; EXPLAIN gains per-operator
      estimates and ``sys.plans`` records estimates vs. actuals).
      Defaults to the ``FUDJ_OPT`` environment variable when unset.
      Single-join queries produce byte-identical rows under either
      setting; see ``docs/query_optimizer.md``.

    Observability:

    * ``event_log`` — path of a JSONL file every deterministic engine
      event is teed to as it is emitted (canonical form, byte-identical
      across identical seeded runs).  The same stream is queryable as
      ``sys.events`` and served live by the monitor
      (:meth:`serve_monitor`); see ``docs/observability.md``.
    """

    def __init__(self, num_partitions: int = 8, cores: int = 12,
                 cost_model: CostModel = None, fault_plan=None,
                 on_error: str = "fail",
                 query_timeout: float = None,
                 trace: bool = False,
                 history_limit: int = 256,
                 memory_budget=None,
                 max_concurrent: int = None,
                 queue_limit: int = 16,
                 queue_timeout: float = None,
                 breaker_threshold: int = None,
                 backend: str = None,
                 workers: int = None,
                 execution: str = None,
                 batch_rows: int = None,
                 optimizer: str = None,
                 event_log: str = None) -> None:
        self._base_cost_model = cost_model or CostModel()
        self.memory_budget = _check_budget(memory_budget)
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self.cluster = Cluster(num_partitions, cores,
                               self._governed_cost_model())
        self.admission = None
        if self.memory_budget is not None or max_concurrent is not None:
            self.admission = AdmissionController(
                self._admission_capacity(), max_concurrent,
                queue_limit, queue_timeout,
            )
        self.breaker = (CircuitBreaker(breaker_threshold)
                        if breaker_threshold is not None else None)
        self.catalog = Catalog()
        self.functions = default_function_registry()
        self.joins = JoinRegistry()
        self.builtin_factories = {}
        self.fault_plan = _to_fault_plan(fault_plan)
        self.on_error = _check_policy(on_error)
        self.query_timeout = query_timeout
        self.trace = bool(trace)
        #: Metrics registry + bounded query history; ``history_limit``
        #: caps retained records (oldest evicted first).  Registers the
        #: ``sys.*`` introspection tables on catalog and cluster.
        self.telemetry = Telemetry(history_limit=history_limit)
        self.workers = workers
        self.worker_pool = None
        self._pool_finalizer = None
        self.cluster.backend = _check_backend(
            backend if backend is not None
            else os.environ.get("FUDJ_BACKEND") or "serial"
        )
        self._execution = _check_execution(
            execution if execution is not None
            else os.environ.get("FUDJ_EXEC") or "row"
        )
        self.batch_rows = batch_rows
        self._optimizer = _check_optimizer(
            optimizer if optimizer is not None
            else os.environ.get("FUDJ_OPT") or "rule"
        )
        #: Per-statement state (active query id, pending plan rows) is
        #: thread-local: the session server runs ``execute()`` from one
        #: thread per request, and concurrent statements must not see
        #: each other's in-flight ids.
        self._tls = threading.local()
        #: Serializes the engine core.  Acquired *after* the admission
        #: ticket, so the admission controller — not this lock — is what
        #: queues, sheds, and times out concurrent sessions; the lock
        #: only keeps the single-threaded engine internals (cluster
        #: state, metrics folds, the worker pool) correct beneath them.
        self._engine_lock = threading.RLock()
        self._monitor = None
        self._server = None
        if event_log is not None:
            self.telemetry.events.attach_sink(event_log)
        self.telemetry.set_build_info(self.cluster.backend, self._execution)
        register_sys_tables(self)

    # -- per-thread statement state -------------------------------------------------

    @property
    def _active_query_id(self) -> int:
        """Id of the statement this thread is executing (0 outside
        execute()), stamped on every event the engine emits for it."""
        return getattr(self._tls, "query_id", 0)

    @_active_query_id.setter
    def _active_query_id(self, value: int) -> None:
        self._tls.query_id = value

    @property
    def _pending_plan_rows(self):
        return getattr(self._tls, "plan_rows", None)

    @_pending_plan_rows.setter
    def _pending_plan_rows(self, value) -> None:
        self._tls.plan_rows = value

    # -- SQL entry points -----------------------------------------------------------

    def execute(self, sql: str, mode="fudj", dedup=None,
                measure_bytes: bool = True,
                summarize_sample: float = 1.0, fault_plan=_UNSET,
                on_error: str = None,
                query_timeout: float = _UNSET,
                trace=_UNSET, optimizer: str = None,
                cancel=None, query_id: int = None) -> QueryResult:
        """Parse and run one SQL statement.

        Args:
            sql: the statement text.
            mode: ``"fudj"`` / ``"builtin"`` / ``"ontop"`` (or an
                :class:`ExecutionMode`).
            dedup: optional duplicate-handling override for FUDJ joins:
                ``"avoidance"``, ``"elimination"``, ``"none"``, or a
                :class:`DedupStrategy` instance.
            measure_bytes: exact (True) vs sampled (False) shuffle byte
                accounting.
            summarize_sample: run FUDJ SUMMARIZE phases over this fraction
                of each partition (deterministic every-k-th sampling).
                Results are unchanged for the shipped joins — summaries
                steer partitioning quality, ``verify`` decides membership
                — but summarize cost drops proportionally.
            fault_plan: per-query override of the instance fault plan — a
                :class:`~repro.engine.faults.FaultPlan`, a ``SEED:RATE``
                spec string, or ``None`` to disable injection.
            on_error: per-query override of the degraded-mode policy for
                FUDJ callbacks (``fail`` / ``skip`` / ``quarantine``).
            query_timeout: per-query override of the wall-clock budget in
                seconds (``None`` disables it).
            trace: per-query override of the instance ``trace`` flag;
                when True the result carries a structured span trace on
                :attr:`QueryResult.trace`.
            optimizer: per-query override of the instance optimizer
                (``"rule"`` / ``"cost"``).
            cancel: optional cooperative
                :class:`~repro.engine.cancel.CancellationToken`;
                cancelling it from any thread aborts the statement with
                :class:`~repro.errors.QueryCancelledError` at the next
                engine checkpoint (recorded with status
                ``"cancelled"``), leaving the database immediately
                reusable.
            query_id: a history id already reserved via
                :meth:`Telemetry.next_query_id
                <repro.engine.telemetry.Telemetry.next_query_id>`, for
                callers (the session server) that must know the id
                before execution; None reserves a fresh one.
        """
        faults = (self.fault_plan if fault_plan is _UNSET
                  else _to_fault_plan(fault_plan))
        policy = self.on_error if on_error is None else _check_policy(on_error)
        timeout = (self.query_timeout if query_timeout is _UNSET
                   else query_timeout)
        tracing = self.trace if trace is _UNSET else bool(trace)
        mode_text = mode.value if isinstance(mode, ExecutionMode) else str(mode)
        started = time.perf_counter()
        kind = "invalid"
        self._pending_plan_rows = None
        # The entry id record_statement will use — reserved up front and
        # stamped on every event this statement emits, so the timeline
        # joins to sys.queries before the query has even finished (and
        # concurrent sessions never share an id).
        self._active_query_id = (int(query_id) if query_id
                                 else self.telemetry.next_query_id())
        try:
            statement = parse_statement(sql)
            kind = _statement_kind(statement)
            # The detail deliberately excludes backend/execution (the
            # build-info gauge carries those): serial and process runs of
            # one script emit byte-identical deterministic streams.
            self.telemetry.events.emit(
                "query.start", query_id=self._active_query_id,
                statement=kind, mode=mode_text, sql=sql.strip())
            result = self._execute_statement(
                statement, mode, dedup, measure_bytes, summarize_sample,
                faults, policy, timeout, tracing, optimizer, cancel)
        except ReproError as exc:
            self.telemetry.record_statement(
                sql, kind, mode_text, _error_status(exc), error=exc,
                cores=self.cluster.cores,
                wall_seconds=time.perf_counter() - started,
                plan_rows=self._pending_plan_rows,
                query_id=self._active_query_id)
            self._active_query_id = 0
            raise
        self.telemetry.record_statement(
            sql, kind, mode_text, "ok", metrics=result.metrics,
            rows=len(result.rows), trace=result.trace,
            cores=result.cores or self.cluster.cores,
            wall_seconds=time.perf_counter() - started,
            plan_rows=self._pending_plan_rows,
            query_id=self._active_query_id)
        self._active_query_id = 0
        return result

    def _execute_statement(self, statement, mode, dedup, measure_bytes,
                           summarize_sample, faults, policy, timeout,
                           tracing, optimizer=None,
                           cancel=None) -> QueryResult:
        if isinstance(statement, SelectStatement):
            plan = self._plan_select(statement, _to_mode(mode), _to_dedup(dedup),
                                     summarize_sample, optimizer)
            return self._run_plan(plan, measure_bytes, faults, policy,
                                  timeout, tracing, cancel)
        if isinstance(statement, ExplainStatement):
            return self._execute_explain(statement, _to_mode(mode),
                                         _to_dedup(dedup), measure_bytes,
                                         faults, policy, timeout,
                                         optimizer=optimizer,
                                         cancel=cancel)
        return self._execute_ddl(statement)

    # -- resource governance --------------------------------------------------------

    def _governed_cost_model(self) -> CostModel:
        """The base cost model with the memory budget folded in, so spill
        pricing and spill enforcement agree on one number."""
        if self.memory_budget is None:
            return self._base_cost_model
        from dataclasses import replace

        return replace(self._base_cost_model,
                       worker_memory_bytes=float(self.memory_budget))

    def _admission_capacity(self) -> float:
        """Cluster-wide reservation capacity: every worker's grant."""
        if self.memory_budget is None:
            return float("inf")
        return float(self.memory_budget) * self.cluster.num_partitions

    def set_memory_budget(self, memory_budget) -> None:
        """Change (or clear, with None/"off") the per-worker budget.

        Rewrites the cluster's cost model and the admission capacity in
        place; takes effect for the next query.
        """
        self.memory_budget = _check_budget(memory_budget)
        self.cluster.cost_model = self._governed_cost_model()
        if self.memory_budget is not None and self.admission is None:
            self.admission = AdmissionController(
                self._admission_capacity(), self.max_concurrent,
                self.queue_limit, self.queue_timeout,
            )
        elif self.admission is not None:
            self.admission.capacity_bytes = self._admission_capacity()

    # -- execution backend ----------------------------------------------------------

    @property
    def backend(self) -> str:
        """The active execution backend (``"serial"`` or ``"process"``)."""
        return self.cluster.backend

    def set_backend(self, backend: str) -> None:
        """Switch backends; takes effect for the next query.

        Switching to ``serial`` shuts the worker pool down; switching to
        ``process`` spawns it lazily on the next query's first combine
        stage.
        """
        self.cluster.backend = _check_backend(backend)
        if self.cluster.backend == "serial":
            self._shutdown_pool()
        self.telemetry.set_build_info(self.cluster.backend, self._execution)

    # -- execution granularity --------------------------------------------------------

    @property
    def execution(self) -> str:
        """The active execution granularity (``"row"`` or ``"batch"``)."""
        return self._execution

    def set_execution(self, execution: str) -> None:
        """Switch between row and batch execution; takes effect for the
        next query.  Both modes return byte-identical rows and
        deterministic metrics."""
        self._execution = _check_execution(execution)
        self.telemetry.set_build_info(self.cluster.backend, self._execution)

    def _acquire_pool(self):
        """The live worker pool, spawning or respawning it as needed.

        Returns None when workers cannot be spawned at all (the engine
        then runs the query serially); an existing-but-unhealthy pool is
        torn down and replaced, so one exhausted query does not pin the
        whole database to the serial path.
        """
        pool = self.worker_pool
        if pool is not None and pool.healthy:
            return pool
        if pool is not None:
            self._shutdown_pool()
        try:
            from repro.engine.workers import WorkerPool, default_pool_size

            size = self.workers or default_pool_size(self.cluster)
            pool = WorkerPool(size)
        except Exception:
            return None
        self.worker_pool = pool
        # The pool holds OS processes and a temp spill tree; tie both to
        # this database's lifetime even when close() is never called.
        self._pool_finalizer = weakref.finalize(self, pool.shutdown)
        return pool

    def _shutdown_pool(self) -> None:
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self.worker_pool is not None:
            self.worker_pool.shutdown()
            self.worker_pool = None

    def close(self) -> None:
        """Release OS resources (the session server — drained
        gracefully — the worker pool, the monitor server, the event-log
        sink).  Idempotent; the database remains usable afterwards on
        the serial path (a later process-backend query just respawns
        the pool)."""
        self.stop_server()
        self._shutdown_pool()
        self.stop_monitor()
        self.telemetry.events.close_sink()

    # -- session server -------------------------------------------------------------

    def serve(self, port: int = 0, host: str = "127.0.0.1",
              max_sessions: int = 8, drain_timeout: float = 5.0,
              tenant_depth: int = None):
        """Start the concurrent JSONL session server on ``host:port``
        (port 0 picks a free one) and return the
        :class:`~repro.server.SessionServer`.

        Each connected client gets its own session; requests carry
        per-request deadlines, can be cancelled mid-flight (explicit
        ``cancel`` op or disconnect), are admitted through the
        PR 4 admission queue, and are shed with typed errors when
        ``max_sessions`` or a tenant's lane is full.  ``stop()`` (or
        SIGTERM via the CLI) drains gracefully: accepting stops,
        in-flight requests get up to ``drain_timeout`` seconds to
        finish, stragglers are cancelled cooperatively.  A previous
        session server, if any, is stopped first.  Raises
        :class:`~repro.errors.ServerError` when the port is taken.
        """
        from repro.server import SessionServer

        self.stop_server()
        self._server = SessionServer(
            self, host=host, port=port, max_sessions=max_sessions,
            drain_timeout=drain_timeout, tenant_depth=tenant_depth,
        )
        self._server.start()
        return self._server

    @property
    def server(self):
        """The running :class:`~repro.server.SessionServer`, or None."""
        return self._server

    def stop_server(self) -> None:
        """Drain and stop the session server (idempotent)."""
        if self._server is not None:
            self._server.stop()
            self._server = None

    # -- live monitor ---------------------------------------------------------------

    def serve_monitor(self, port: int = 0, host: str = "127.0.0.1"):
        """Start the read-only HTTP monitor on ``host:port`` (port 0
        picks a free one) and return the
        :class:`~repro.monitor.MonitorServer`.  The monitor serves
        ``/healthz``, ``/metrics`` (Prometheus text, scrape-parity with
        :meth:`metrics_snapshot`), ``/queries``, ``/events``, and
        ``/traces/<query_id>`` from this live session on a daemon
        thread; it never mutates the database.  A previous monitor, if
        any, is stopped first."""
        from repro.monitor import MonitorServer

        self.stop_monitor()
        self._monitor = MonitorServer(self, host=host, port=port)
        self._monitor.start()
        return self._monitor

    @property
    def monitor(self):
        """The running :class:`~repro.monitor.MonitorServer`, or None."""
        return self._monitor

    def stop_monitor(self) -> None:
        """Shut the monitor server down (idempotent)."""
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None

    def _estimate_plan_bytes(self, plan) -> float:
        """Memory-reservation estimate of a physical plan: the wire bytes
        of every stored dataset it scans (catalog statistics).  Virtual
        ``sys.*`` tables are skipped — their snapshots are tiny and
        materializing one just to size it would be circular."""
        total = 0.0
        pending = [plan]
        while pending:
            node = pending.pop()
            dataset_name = getattr(node, "dataset_name", None)
            if dataset_name is not None:
                stored = self.cluster._datasets.get(dataset_name)
                if stored is not None:
                    total += stored.total_bytes()
            pending.extend(node.children())
        return total

    def _run_plan(self, plan, measure_bytes, faults, policy, timeout,
                  tracing, cancel=None) -> QueryResult:
        """Execute a physical plan under the governance posture: admission
        first (reservation estimated from catalog stats), then the run
        itself — serialized on the engine lock — with a budget-enforcing
        memory accountant and the shared circuit breaker."""
        resources = QueryResources(
            self.cluster.cost_model, enforce=self.memory_budget is not None
        )
        ticket = None
        if self.admission is not None:
            try:
                ticket = self.admission.acquire(
                    self._estimate_plan_bytes(plan)
                )
            except AdmissionError as exc:
                self.telemetry.note_admission(exc.reason)
                raise
            self.telemetry.note_admission("admitted")
            self.telemetry.events.emit(
                "admission.admit", query_id=self._active_query_id,
                reserved_bytes=ticket.reserved_bytes)
            resources.queue_seconds = ticket.queue_seconds
        pool = self._acquire_pool if self.cluster.backend == "process" else None
        locked = False
        try:
            # Concurrent sessions queue here after admission.  The wait
            # polls the cancellation token, so a queued request whose
            # client cancelled (or hung up) aborts without waiting for
            # the running query to finish.
            while not self._engine_lock.acquire(timeout=0.05):
                if cancel is not None:
                    cancel.check()
            locked = True
            return execute_plan(plan, self.cluster,
                                measure_bytes=measure_bytes,
                                fault_plan=faults, on_error=policy,
                                timeout_seconds=timeout, trace=tracing,
                                resources=resources, breaker=self.breaker,
                                pool=pool, execution=self._execution,
                                batch_rows=self.batch_rows,
                                events=self.telemetry.events.scoped(
                                    self._active_query_id),
                                cancel=cancel)
        finally:
            if locked:
                self._engine_lock.release()
            if ticket is not None:
                self.admission.release(ticket)
            self.telemetry.sync_breaker(self.breaker, self._active_query_id)
            self.telemetry.sync_pool(self.worker_pool)

    def _governance_lines(self, metrics) -> list:
        """EXPLAIN ANALYZE lines describing the governance posture and
        what it did for this query (only rendered when governance is
        configured, so un-governed EXPLAIN output is unchanged)."""
        lines = [
            f"resources: budget {format_bytes(self.memory_budget)}/worker, "
            f"peak {metrics.peak_reserved_bytes:.0f} reserved bytes, "
            f"{metrics.spill_files} spill files "
            f"({metrics.spill_bytes:.0f} bytes), "
            f"queue wait {metrics.queue_seconds * 1000:.2f} ms"
        ]
        if self.admission is not None:
            snap = self.admission.snapshot()
            lines.append(
                f"admission: capacity {format_bytes(snap['capacity_bytes'])}, "
                f"{snap['running']} running / {snap['waiting']} waiting, "
                f"{snap['admitted_total']} admitted, "
                f"{snap['shed_total']} shed "
                f"({snap['timeout_total']} timeouts)"
            )
        if self.breaker is not None:
            snap = self.breaker.snapshot()
            open_text = ",".join(snap["open"]) if snap["open"] else "none"
            lines.append(
                f"breaker: threshold {snap['threshold']}, "
                f"open [{open_text}], {snap['trips']} trips, "
                f"{snap['rejections']} rejections"
            )
        return lines

    def metrics_snapshot(self, fmt: str = "json") -> str:
        """The process-wide metrics registry, rendered deterministically.

        ``fmt`` is ``"json"`` (canonical: sorted keys, no whitespace) or
        ``"prometheus"`` (text exposition).  The snapshot contains only
        charged units, simulated seconds, and counters — never wall
        clocks — so two identical sessions render byte-identically.
        """
        return self.telemetry.snapshot(fmt)

    # -- query optimizer ------------------------------------------------------------

    @property
    def optimizer(self) -> str:
        """The active optimizer (``"rule"`` or ``"cost"``)."""
        return self._optimizer

    def set_optimizer(self, optimizer: str) -> None:
        """Switch between the rule and cost optimizers; takes effect for
        the next query.  Single-join queries return byte-identical rows
        under both."""
        self._optimizer = _check_optimizer(optimizer)

    def explain(self, sql: str, mode="fudj", optimizer: str = None) -> str:
        """The optimized physical plan of a SELECT, as indented text."""
        self._active_query_id = 0  # not a recorded statement
        statement = parse_statement(sql)
        if not isinstance(statement, SelectStatement):
            raise PlanError("EXPLAIN supports SELECT statements only")
        plan = self._plan_select(statement, _to_mode(mode), None,
                                 optimizer=optimizer)
        return plan.explain()

    def _plan_select(self, statement: SelectStatement, mode: ExecutionMode,
                     dedup: DedupStrategy, summarize_sample: float = 1.0,
                     optimizer: str = None):
        opt = (self._optimizer if optimizer is None
               else _check_optimizer(optimizer))
        bound = bind_select(statement, self.catalog, self.functions, self.joins)
        output_order = [
            item.output_name(i) for i, item in enumerate(statement.items)
        ]
        if opt == "cost":
            logical = self._cost_optimize(bound, mode, output_order)
        else:
            logical = optimize(bound, self.joins, mode, output_order)
        plan = plan_physical(
            logical, self.joins, mode, self.cluster.cost_model,
            dedup=dedup, builtin_factories=self.builtin_factories,
            summarize_sample=summarize_sample,
        )
        self._pending_plan_rows = _plan_report_rows(plan, opt)
        return plan

    def _cost_optimize(self, bound, mode: ExecutionMode, output_order):
        """The three cost-based stages: pessimistic cardinality bounds,
        upper-bound join ordering, and chained physical operator
        selection (see ``docs/query_optimizer.md``)."""
        estimator = CardinalityEstimator(self.cluster)
        order = enumerate_join_order(bound, estimator)
        events = self.telemetry.events
        events.emit("plan.order", query_id=self._active_query_id,
                    order=" -> ".join(order.aliases))
        logical = optimize(bound, self.joins, mode, output_order,
                           table_order=order.aliases)
        annotate_estimates(logical, estimator, bound.aliases)
        # The parity contract: queries of at most two tables keep the
        # rule plan's operators exactly (estimates are the only
        # annotation), so single-join cost plans stay byte-identical
        # to rule plans.  Selection engages on multi-join queries.
        if len(bound.aliases) > 2:
            context = SelectionContext(
                cost_model=self.cluster.cost_model,
                num_partitions=self.cluster.num_partitions,
                aliases=bound.aliases,
                estimator=estimator,
                breaker=self.breaker,
            )
            assignment = default_selection().select_physical_operators(
                logical, context)
            from repro.optimizer.physical import _walk

            for node in _walk(logical):
                strategy = assignment.strategy_of(node)
                if strategy is not None:
                    events.emit("plan.operator",
                                query_id=self._active_query_id,
                                join=node.describe(), strategy=strategy,
                                note=assignment.note_of(node))
        return logical

    def _execute_explain(self, statement: ExplainStatement,
                         mode: ExecutionMode, dedup, measure_bytes,
                         fault_plan=None, on_error: str = "fail",
                         timeout: float = None,
                         optimizer: str = None,
                         cancel=None) -> QueryResult:
        """EXPLAIN: plan text (one row per line); ANALYZE adds a
        per-stage profile, the span trace tree, and skew diagnostics
        from a real (traced) execution.  Under the cost optimizer,
        ANALYZE also tabulates estimated vs. actual rows per stage."""
        from repro.engine.metrics import QueryMetrics

        opt = (self._optimizer if optimizer is None
               else _check_optimizer(optimizer))
        plan = self._plan_select(statement.select, mode, dedup,
                                 optimizer=opt)
        plan_rows = self._pending_plan_rows
        lines = plan.explain().splitlines()
        metrics = QueryMetrics(self.cluster.cost_model)
        if statement.analyze:
            executed = self._run_plan(plan, measure_bytes, fault_plan,
                                      on_error, timeout, True, cancel)
            metrics = executed.metrics
            if opt == "cost" and plan_rows:
                lines.append("")
                lines.extend(_estimate_report_lines(plan_rows, metrics))
            lines.append("")
            lines.extend(metrics.profile(self.cluster.cores).splitlines())
            lines.append("")
            lines.extend(executed.trace.render().splitlines())
            skew = executed.trace.skew_report()
            if skew:
                lines.append("")
                lines.extend(skew.splitlines())
            if fault_plan is not None and not metrics.fault_summary_line():
                # A fault plan ran but nothing fired — still say so, with
                # the zeroed counters, so operators can see the knob is on.
                lines.append(
                    "fault tolerance: 0 task retries, 0 exchange retries, "
                    "0 stragglers, 0 quarantined, recovery 0.00 ms"
                )
            if (self.memory_budget is not None or self.admission is not None
                    or self.breaker is not None):
                lines.append("")
                lines.extend(self._governance_lines(metrics))
        rows = [{"plan": line} for line in lines]
        return QueryResult(rows, ("plan",), metrics)

    def _execute_ddl(self, statement) -> QueryResult:
        from repro.engine.metrics import QueryMetrics

        empty = QueryResult([], (), QueryMetrics(self.cluster.cost_model))
        if isinstance(statement, CreateTypeStatement):
            self.catalog.create_type(statement.name, statement.fields)
            return empty
        if isinstance(statement, CreateDatasetStatement):
            self.create_dataset(statement.name, statement.type_name,
                                statement.primary_key)
            return empty
        if isinstance(statement, CreateJoinStatement):
            signature = JoinSignature(
                statement.name.lower(),
                tuple(type_name for _, type_name in statement.params),
                statement.class_path,
                statement.library,
            )
            self.joins.create(signature)
            return empty
        if isinstance(statement, DropJoinStatement):
            self.joins.drop(statement.name.lower())
            return empty
        if isinstance(statement, DropDatasetStatement):
            self.catalog.drop_dataset(statement.name)
            self.cluster.drop_dataset(statement.name)
            return empty
        raise ReproError(f"unhandled statement: {statement!r}")

    # -- programmatic API -------------------------------------------------------------

    def create_type(self, name: str, fields) -> None:
        """API twin of ``CREATE TYPE``; ``fields`` is [(name, type), ...]."""
        self.catalog.create_type(name, fields)

    def create_dataset(self, name: str, type_name: str, primary_key: str) -> None:
        """API twin of ``CREATE DATASET`` (also allocates storage)."""
        info = self.catalog.create_dataset(name, type_name, primary_key)
        self.cluster.create_dataset(name, Schema(info.field_names), primary_key)

    def load(self, dataset_name: str, rows) -> int:
        """Bulk-load plain-dict rows into a dataset."""
        self.catalog.dataset_info(dataset_name)  # raises if unknown
        return self.cluster.dataset(dataset_name).bulk_load(rows)

    def create_join(self, name: str, join_class=None, class_path: str = None,
                    param_types=("any", "any"), library: str = "",
                    defaults=()) -> None:
        """API twin of ``CREATE JOIN``.

        Either pass the FlexibleJoin subclass directly (``join_class``) or
        its dotted ``class_path``.  ``defaults`` are constructor parameters
        used when the query call site passes none (e.g. a grid size).
        """
        if join_class is None and class_path is None:
            raise PlanError("create_join needs join_class or class_path")
        signature = JoinSignature(
            name.lower(), tuple(param_types), class_path or "", library
        )
        self.joins.create(signature, join_class, defaults)

    def drop_join(self, name: str) -> None:
        """API twin of ``DROP JOIN``."""
        self.joins.drop(name.lower())

    def register_builtin_join(self, name: str, factory) -> None:
        """Install a hand-written built-in join operator for BUILTIN mode.

        ``factory(left_op, right_op, left_key_fn, right_key_fn, params)``
        must return a PhysicalOperator.
        """
        self.builtin_factories[name.lower()] = factory

    def register_udf(self, name: str, fn, arity: int = -1) -> None:
        """Register a scalar UDF usable in any query (the on-top path)."""
        self.functions.register_udf(name, fn, arity)


_STATEMENT_KINDS = (
    (SelectStatement, "select"),
    (ExplainStatement, "explain"),
    (CreateTypeStatement, "create_type"),
    (CreateDatasetStatement, "create_dataset"),
    (CreateJoinStatement, "create_join"),
    (DropJoinStatement, "drop_join"),
    (DropDatasetStatement, "drop_dataset"),
)


def _statement_kind(statement) -> str:
    for cls, kind in _STATEMENT_KINDS:
        if isinstance(statement, cls):
            return kind
    return "other"


def _error_status(exc: Exception) -> str:
    """History/registry status class of a failed statement."""
    if isinstance(exc, QueryCancelledError):
        return "cancelled"
    if isinstance(exc, QueryTimeoutError):
        return "timeout"
    if isinstance(exc, AdmissionError):
        return "shed"
    if isinstance(exc, BreakerOpenError):
        return "rejected"
    if isinstance(exc, (TaskFailedError, FudjCallbackError)):
        return "failed"
    return "error"


def _check_budget(memory_budget):
    """Parse and validate a memory budget spec (None/"off" = disabled)."""
    try:
        budget = parse_bytes(memory_budget)
    except ValueError:
        raise PlanError(
            f"cannot parse memory budget {memory_budget!r}; "
            "use bytes or a suffixed amount like '64mb'"
        ) from None
    if budget is not None and budget <= 0:
        raise PlanError(
            f"memory_budget must be positive, got {memory_budget!r}"
        )
    return budget


def _to_mode(mode) -> ExecutionMode:
    if isinstance(mode, ExecutionMode):
        return mode
    try:
        return ExecutionMode(mode)
    except ValueError:
        raise PlanError(
            f"unknown execution mode {mode!r}; use fudj/builtin/ontop"
        ) from None


def _to_dedup(dedup) -> DedupStrategy:
    if dedup is None or isinstance(dedup, DedupStrategy):
        return dedup
    try:
        return _DEDUP_STRATEGIES[dedup]()
    except KeyError:
        raise PlanError(
            f"unknown dedup strategy {dedup!r}; use avoidance/elimination/none"
        ) from None


def _to_fault_plan(fault_plan) -> FaultPlan:
    if fault_plan is None or isinstance(fault_plan, FaultPlan):
        return fault_plan
    if isinstance(fault_plan, str):
        return FaultPlan.parse(fault_plan)
    raise PlanError(
        f"fault_plan must be a FaultPlan, a SEED:RATE spec string, or None; "
        f"got {fault_plan!r}"
    )


def _check_backend(backend: str) -> str:
    if backend not in ("serial", "process"):
        raise PlanError(
            f"unknown backend {backend!r}; use serial or process"
        )
    return backend


def _check_execution(execution: str) -> str:
    if execution not in EXECUTION_MODES:
        raise PlanError(
            f"unknown execution granularity {execution!r}; "
            f"use {'/'.join(EXECUTION_MODES)}"
        )
    return execution


def _check_optimizer(optimizer: str) -> str:
    if optimizer not in OPTIMIZER_MODES:
        raise PlanError(
            f"unknown optimizer {optimizer!r}; "
            f"use {'/'.join(OPTIMIZER_MODES)}"
        )
    return optimizer


def _plan_report_rows(plan, optimizer: str):
    """Flatten a physical plan into ``sys.plans`` rows (preorder walk,
    one row per operator).  ``est_rows`` is -1.0 for operators the
    optimizer did not annotate (all of them under ``rule``)."""
    rows = []

    def _walk(op):
        est = getattr(op, "est_rows", None)
        rows.append({
            "seq": len(rows),
            "optimizer": optimizer,
            "stage": op.stage_name,
            "operator": op.label,
            "detail": op.describe(),
            "est_rows": float(est) if est is not None else -1.0,
        })
        for child in op.children():
            _walk(child)

    _walk(plan)
    return rows


def _estimate_report_lines(plan_rows, metrics):
    """EXPLAIN ANALYZE's estimates-vs-actuals table (cost mode only).

    Pessimistic bounds should dominate actuals; a ``!`` flag marks any
    stage where they do not, which is the signal the estimator's upper
    bound was violated.
    """
    from repro.engine.operators.base import format_estimate

    actuals = {stage.name: stage.records_out for stage in metrics.stages}
    lines = ["estimates vs. actuals (rows):"]
    for row in plan_rows:
        est = row["est_rows"]
        actual = actuals.get(row["stage"])
        est_text = format_estimate(est) if est >= 0 else "-"
        actual_text = str(actual) if actual is not None else "-"
        flag = ""
        if est >= 0 and actual is not None and actual > est:
            flag = "  !bound-exceeded"
        lines.append(
            f"  {row['stage']:<28} est<={est_text:<12} "
            f"actual={actual_text}{flag}"
        )
    return lines


def _check_policy(on_error: str) -> str:
    if on_error not in ERROR_POLICIES:
        raise PlanError(
            f"unknown error policy {on_error!r}; use fail/skip/quarantine"
        )
    return on_error
