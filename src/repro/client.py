"""JSONL session client for the FUDJ session server.

A small, dependency-free client over one TCP connection.  A background
reader thread pulls response lines and routes each to the mailbox of
the request id it answers, so requests can overlap: submit a query,
submit a cancel against it, and collect both responses in any order —
exactly the interleaving the chaos tests and ``bench_serving`` drive.

Typical use::

    from repro.client import SessionClient

    with SessionClient(host, port, tenant="analytics") as client:
        reply = client.query("SELECT t.id FROM Ts t", deadline_ms=500)
        if reply["type"] == "result":
            rows = reply["rows"]

``query`` returns the raw response dict (``type`` is ``result`` or
``error``) rather than raising — chaos harnesses assert on typed
outcomes, and a shed or timeout is data, not an exception.  Unsolicited
lines (the server's connection-shed notice) land in
:attr:`SessionClient.notices`.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading

from repro.errors import ServerError


class SessionClient:
    """One JSONL session against a running SessionServer."""

    def __init__(self, host: str, port: int, tenant: str = None,
                 connect_timeout: float = 5.0) -> None:
        try:
            self._sock = socket.create_connection(
                (host, int(port)), timeout=connect_timeout)
        except OSError as exc:
            raise ServerError(
                f"cannot connect to {host}:{port}: {exc}",
                host=host, port=int(port),
            ) from exc
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("r", encoding="utf-8",
                                           newline="\n")
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._mailbox = {}
        #: Responses with no (known) request id — e.g. the server's
        #: typed shed notice when the session cap refused us.
        self.notices = []
        self._eof = False
        self._write_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._read_loop, name="fudj-client-reader", daemon=True)
        self._thread.start()
        self.session_id = None
        self.tenant = tenant
        if tenant is not None:
            reply = self.request("hello", tenant=tenant)
            if reply.get("type") == "ok":
                self.session_id = reply.get("session")

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire I/O -------------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            for line in self._reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    continue
                with self._cond:
                    rid = payload.get("id")
                    if rid is None or rid not in self._mailbox:
                        self.notices.append(payload)
                    else:
                        self._mailbox[rid] = payload
                    self._cond.notify_all()
        except (OSError, ValueError):
            pass
        finally:
            with self._cond:
                self._eof = True
                self._cond.notify_all()

    def send_raw(self, payload: dict) -> None:
        """Write one request line verbatim (chaos tests use this to send
        malformed or surprising requests)."""
        line = json.dumps(payload) + "\n"
        with self._write_lock:
            self._sock.sendall(line.encode("utf-8"))

    # -- request API ----------------------------------------------------------

    def submit(self, op: str, **fields) -> int:
        """Send one request without waiting; returns its id."""
        rid = next(self._ids)
        with self._cond:
            self._mailbox[rid] = None  # reserve the slot
        self.send_raw({"id": rid, "op": op, **fields})
        return rid

    def wait(self, rid: int, timeout: float = 30.0) -> dict:
        """Block until the response for ``rid`` arrives.

        EOF before a response yields a synthetic
        ``{"type": "error", "error": "disconnected"}`` so callers always
        get a typed outcome; a wait past ``timeout`` raises
        :class:`~repro.errors.ServerError` (a hang is a test failure,
        never a silent stall).
        """
        import time as _time

        deadline = _time.monotonic() + timeout
        with self._cond:
            while self._mailbox.get(rid) is None:
                if self._eof:
                    self._mailbox.pop(rid, None)
                    return {"id": rid, "type": "error",
                            "error": "disconnected",
                            "message": "connection closed before reply"}
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    raise ServerError(
                        f"no response for request {rid} "
                        f"within {timeout:.1f}s")
                self._cond.wait(timeout=remaining)
            return self._mailbox.pop(rid)

    def request(self, op: str, timeout: float = 30.0, **fields) -> dict:
        """Submit one request and wait for its response."""
        return self.wait(self.submit(op, **fields), timeout=timeout)

    # -- convenience ops ------------------------------------------------------

    def query(self, sql: str, timeout: float = 60.0, **fields) -> dict:
        """Run one query; returns the raw ``result``/``error`` response.
        ``fields`` pass through to the wire request (``mode``,
        ``deadline_ms``, ``optimizer``)."""
        return self.request("query", timeout=timeout, sql=sql, **fields)

    def query_async(self, sql: str, **fields) -> int:
        """Submit a query without waiting; returns the request id for
        :meth:`wait` / :meth:`cancel`."""
        return self.submit("query", sql=sql, **fields)

    def cancel(self, target: int, timeout: float = 30.0) -> dict:
        """Cancel in-flight request ``target`` on this session.  The
        response's ``cancelled`` field says whether the cancel won the
        race with normal completion."""
        return self.request("cancel", timeout=timeout, target=target)

    def ping(self, timeout: float = 30.0) -> dict:
        return self.request("ping", timeout=timeout)

    # -- teardown -------------------------------------------------------------

    def close(self, polite: bool = True) -> None:
        """Close the session.  ``polite=True`` sends the ``close`` op
        first; ``polite=False`` just drops the socket — which is exactly
        how chaos tests simulate a client dying mid-query.  Idempotent.
        """
        if polite and not self._eof:
            try:
                self.request("close", timeout=5.0)
            except (ServerError, OSError):
                pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)

    def drop(self) -> None:
        """Abruptly drop the connection (no goodbye): the disconnect
        chaos primitive."""
        self.close(polite=False)
