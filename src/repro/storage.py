"""Database persistence: save/load through the engine's wire format.

``save_database`` writes a directory layout::

    <path>/catalog.json          types, datasets, joins, cluster config
    <path>/data/<dataset>.bin    length-prefixed serialized records,
                                 one stream per dataset (partition
                                 boundaries recorded in the catalog)

Records are encoded with the same binary format the exchange operators
use (:mod:`repro.serde.serializer`), so persistence doubles as an
end-to-end serde exercise: everything that can be stored can cross the
simulated network, and vice versa.

Join libraries are saved by *reference* (class path + defaults) — code is
not serialized; loading re-imports the classes, exactly like AsterixDB
re-linking an installed library after a restart.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from repro.core.library import load_join_class
from repro.database import Database
from repro.engine.record import Record, Schema
from repro.errors import ReproError, SerdeError
from repro.serde.serializer import deserialize_value, serialize_value

_MAGIC = b"FUDJDB1\n"
_U32 = struct.Struct(">I")


class StorageError(ReproError):
    """The on-disk layout is missing, corrupt, or incompatible."""


def save_database(db: Database, path) -> None:
    """Persist ``db`` (schema, data, join registrations) under ``path``.

    The directory is created; existing files of a previous save are
    overwritten.  Built-in operator factories (plain callables) are not
    persisted — re-run ``install_builtin_joins`` after loading.
    """
    root = Path(path)
    (root / "data").mkdir(parents=True, exist_ok=True)

    datasets = {}
    for name in db.catalog.dataset_names():
        info = db.catalog.dataset_info(name)
        dataset = db.cluster.dataset(name)
        partition_sizes = [len(p) for p in dataset.partitions]
        datasets[name] = {
            "type": info.type_name,
            "primary_key": info.primary_key,
            "partition_sizes": partition_sizes,
        }
        _write_records(root / "data" / f"{name}.bin", dataset)

    types = {
        type_name: list(db.catalog.type_info(type_name).fields)
        for type_name in sorted(
            {info["type"] for info in datasets.values()}
            | set(_all_type_names(db))
        )
    }

    joins = []
    for join_name in db.joins.names():
        signature = db.joins.signature(join_name)
        entry = db.joins._entries[join_name]
        class_path = signature.class_path
        if not class_path and entry.join_class is not None:
            cls = entry.join_class
            class_path = f"{cls.__module__}.{cls.__qualname__}"
        joins.append({
            "name": signature.name,
            "param_types": list(signature.param_types),
            "class_path": class_path,
            "library": signature.library,
            "defaults": list(entry.defaults),
        })

    catalog = {
        "format": "fudj-db",
        "version": 1,
        "cluster": {
            "num_partitions": db.cluster.num_partitions,
            "cores": db.cluster.cores,
        },
        "types": types,
        "datasets": datasets,
        "joins": joins,
    }
    (root / "catalog.json").write_text(json.dumps(catalog, indent=2))


def load_database(path) -> Database:
    """Recreate a database previously written by :func:`save_database`."""
    root = Path(path)
    catalog_path = root / "catalog.json"
    if not catalog_path.exists():
        raise StorageError(f"no catalog.json under {root}")
    try:
        catalog = json.loads(catalog_path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt catalog.json: {exc}") from exc
    if catalog.get("format") != "fudj-db" or catalog.get("version") != 1:
        raise StorageError(
            f"unsupported format/version: {catalog.get('format')!r} "
            f"v{catalog.get('version')!r}"
        )

    cluster_conf = catalog["cluster"]
    db = Database(num_partitions=cluster_conf["num_partitions"],
                  cores=cluster_conf["cores"])
    for type_name, fields in catalog["types"].items():
        db.create_type(type_name, [tuple(field) for field in fields])
    for name, meta in catalog["datasets"].items():
        db.create_dataset(name, meta["type"], meta["primary_key"])
        _read_records(root / "data" / f"{name}.bin", db.cluster.dataset(name),
                      meta["partition_sizes"])
    for join in catalog["joins"]:
        join_class = load_join_class(join["class_path"])
        db.create_join(
            join["name"], join_class,
            param_types=tuple(join["param_types"]),
            library=join["library"], defaults=tuple(join["defaults"]),
        )
    return db


def _all_type_names(db: Database):
    return list(db.catalog._types)


def _write_records(path: Path, dataset) -> None:
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        for partition in dataset.partitions:
            for record in partition:
                buf = bytearray()
                for value in record.values:
                    serialize_value(value, buf)
                handle.write(_U32.pack(len(buf)))
                handle.write(buf)


def _read_records(path: Path, dataset, partition_sizes) -> None:
    if not path.exists():
        raise StorageError(f"missing data file: {path}")
    data = path.read_bytes()
    if not data.startswith(_MAGIC):
        raise StorageError(f"bad magic in {path}")
    offset = len(_MAGIC)
    schema: Schema = dataset.schema
    arity = len(schema)
    if len(partition_sizes) != dataset.num_partitions:
        raise StorageError(
            f"{path}: saved with {len(partition_sizes)} partitions, "
            f"cluster has {dataset.num_partitions}"
        )
    for partition_index, size in enumerate(partition_sizes):
        for _ in range(size):
            if offset + 4 > len(data):
                raise StorageError(f"truncated data file: {path}")
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            end = offset + length
            if end > len(data):
                raise StorageError(f"truncated record in {path}")
            values = []
            cursor = offset
            try:
                for _ in range(arity):
                    value, cursor = deserialize_value(data, cursor)
                    values.append(value)
            except SerdeError as exc:
                raise StorageError(f"corrupt record in {path}: {exc}") from exc
            if cursor != end:
                raise StorageError(f"record length mismatch in {path}")
            dataset.partitions[partition_index].append(Record(schema, values))
            offset = end
    if offset != len(data):
        raise StorageError(f"trailing bytes in {path}")
