"""Benchmark plumbing: workload builders, experiment harness, LOC counter."""

from repro.bench.harness import format_table, run_query
from repro.bench.loc import count_code_lines, table2_loc
from repro.bench.workloads import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    interval_database,
    spatial_database,
    text_database,
)

__all__ = [
    "run_query",
    "format_table",
    "count_code_lines",
    "table2_loc",
    "spatial_database",
    "interval_database",
    "text_database",
    "SPATIAL_SQL",
    "INTERVAL_SQL",
    "TEXT_SQL",
]
