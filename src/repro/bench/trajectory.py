"""Consolidated benchmark trajectory: one JSON file across suites.

Every benchmark entry point that measures something worth tracking over
time (the Fig 9 performance gate, the Fig 10 scalability runner) calls
:func:`record` with its headline numbers.  All of them land in a single
artifact — ``benchmarks/results/BENCH_trajectory.json`` — keyed by
suite, so a CI run (or a human diffing two checkouts) sees the whole
perf trajectory in one place instead of scraping per-suite stdout:

.. code-block:: json

    {
      "format": "fudj-bench-trajectory",
      "version": 1,
      "suites": {
        "fig9_performance": {
          "suite": "fig9_performance",
          "units": 10278.4,
          "wall_seconds": 3.21,
          "rows": 364,
          "rows_per_second": 113.4,
          "runs": 7,
          "detail": {"row_units": 8942.1, "batch_units": 1336.3}
        }
      }
    }

The file is cumulative per checkout: a suite's entry is *replaced* on
each run (keeping a ``runs`` counter), other suites' entries are left
alone.  CI uploads the file as an artifact after the benchmark jobs.

Fields are fixed meaning, not free-form:

- ``units`` — charged simulated cpu units, when the suite measures
  them (``None`` for wall-clock-only suites).
- ``wall_seconds`` — real wall-clock of the measured portion.
- ``rows`` — result rows produced by the measured queries.
- ``rows_per_second`` — ``rows / wall_seconds``, derived here so every
  suite computes it the same way.
- ``detail`` — suite-specific extras (per-mode splits, speedups).

Writes are atomic (tempfile + ``os.replace``) so a crashed benchmark
never leaves a half-written trajectory behind.
"""

from __future__ import annotations

import json
import os
import tempfile

TRAJECTORY_FORMAT = "fudj-bench-trajectory"
TRAJECTORY_VERSION = 1

#: Default artifact location: ``benchmarks/results/BENCH_trajectory.json``
#: at the repo root (this module lives at ``src/repro/bench/``).
_REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))
DEFAULT_PATH = os.path.join(_REPO, "benchmarks", "results",
                            "BENCH_trajectory.json")


def _empty() -> dict:
    return {
        "format": TRAJECTORY_FORMAT,
        "version": TRAJECTORY_VERSION,
        "suites": {},
    }


def load(path: str = None) -> dict:
    """The current trajectory document (a fresh empty one if the file
    is missing, unreadable, or from a different format)."""
    path = DEFAULT_PATH if path is None else path
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return _empty()
    if (not isinstance(data, dict)
            or data.get("format") != TRAJECTORY_FORMAT
            or not isinstance(data.get("suites"), dict)):
        return _empty()
    return data


def record(suite: str, units: float = None, wall_seconds: float = None,
           rows: int = None, detail: dict = None, path: str = None) -> dict:
    """Record one suite's headline numbers; returns the written entry.

    Replaces the suite's previous entry (bumping its ``runs`` counter)
    and leaves every other suite untouched.
    """
    if not suite:
        raise ValueError("trajectory suite name must be non-empty")
    path = DEFAULT_PATH if path is None else path
    data = load(path)
    previous = data["suites"].get(suite, {})
    entry = {
        "suite": suite,
        "units": None if units is None else round(float(units), 6),
        "wall_seconds": (None if wall_seconds is None
                         else round(float(wall_seconds), 6)),
        "rows": None if rows is None else int(rows),
        "rows_per_second": None,
        "runs": int(previous.get("runs", 0)) + 1,
    }
    if rows is not None and wall_seconds:
        entry["rows_per_second"] = round(int(rows) / float(wall_seconds), 6)
    if detail:
        entry["detail"] = dict(detail)
    data["suites"][suite] = entry

    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".",
                               prefix=".trajectory-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return entry
