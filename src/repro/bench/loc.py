"""Lines-of-code counting for the Table II productivity comparison.

Counts *code* lines the way LOC studies do: comments, blank lines, and
docstrings are excluded, everything else counts once per source line.
"""

from __future__ import annotations

import io
import token as token_module
import tokenize
from pathlib import Path

import repro.builtin.interval_operator
import repro.builtin.spatial_operator
import repro.builtin.text_operator
import repro.joins.interval
import repro.joins.spatial
import repro.joins.text_similarity

_SKIP_TOKENS = {
    token_module.COMMENT,
    token_module.NL,
    token_module.NEWLINE,
    token_module.INDENT,
    token_module.DEDENT,
    token_module.ENCODING,
    token_module.ENDMARKER,
}


def count_code_lines(path) -> int:
    """Non-blank, non-comment, non-docstring source lines of ``path``."""
    source = Path(path).read_text()
    code_lines = set()
    previous_significant = None
    for tok in tokenize.generate_tokens(io.StringIO(source).readline):
        if tok.type in _SKIP_TOKENS:
            continue
        if tok.type == token_module.STRING and _is_docstring(previous_significant):
            previous_significant = tok
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)
        previous_significant = tok
    return len(code_lines)


def _is_docstring(previous) -> bool:
    """A STRING token is a docstring when it starts a logical line —
    i.e. the previous significant token ended a statement (or there was
    none, for a module docstring)."""
    if previous is None:
        return True
    return previous.type == token_module.STRING or previous.string in (":",)


def _module_loc(module) -> int:
    return count_code_lines(module.__file__)


def table2_loc() -> list:
    """Rows of the Table II reproduction: join type, FUDJ LOC, built-in LOC.

    FUDJ side counts the user-written join library modules; built-in side
    counts the hand-written operator modules.  (The paper's built-in
    numbers also include AsterixDB rewrite-rule and function boilerplate
    that our engine provides generically — see EXPERIMENTS.md.)
    """
    return [
        {
            "join": "Spatial",
            "fudj_loc": _module_loc(repro.joins.spatial),
            "builtin_loc": _module_loc(repro.builtin.spatial_operator),
        },
        {
            "join": "Interval",
            "fudj_loc": _module_loc(repro.joins.interval),
            "builtin_loc": _module_loc(repro.builtin.interval_operator),
        },
        {
            "join": "Text-similarity",
            "fudj_loc": _module_loc(repro.joins.text_similarity),
            "builtin_loc": _module_loc(repro.builtin.text_operator),
        },
    ]
