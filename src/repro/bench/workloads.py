"""Ready-made benchmark databases matching the paper's experiment queries.

Each builder loads a seeded synthetic dataset, registers the FUDJ library
*and* the built-in operator for the join, and returns the Database — so a
benchmark can run the same SQL in all three execution modes (paper
Query 5).
"""

from __future__ import annotations

from repro.builtin import install_builtin_joins
from repro.database import Database
from repro.datagen import (
    generate_parks,
    generate_reviews,
    generate_taxi_rides,
    generate_wildfires,
)
from repro.joins import (
    IntervalJoin,
    ReferencePointSpatialJoin,
    SpatialContainsJoin,
    TextSimilarityJoin,
)

#: The paper's experiment queries (Query 5), modulo schema spelling.
SPATIAL_SQL = (
    "SELECT p.id, COUNT(1) AS c FROM Parks p, Wildfires w "
    "WHERE ST_Contains(p.boundary, w.location) GROUP BY p.id"
)
TEXT_SQL = (
    "SELECT COUNT(1) AS c FROM AmazonReview r1, AmazonReview r2 "
    "WHERE r1.overall = 5 AND r2.overall = 4 AND "
    "similarity_jaccard(r1.review, r2.review) >= {threshold}"
)
INTERVAL_SQL = (
    "SELECT COUNT(1) AS c FROM NYCTaxi n1, NYCTaxi n2 "
    "WHERE n1.vendor = 1 AND n2.vendor = 2 AND "
    "overlapping_interval(n1.ride_interval, n2.ride_interval)"
)


def spatial_database(num_parks: int, num_fires: int, partitions: int = 8,
                     grid_n: int = 48, plane_sweep: bool = False,
                     reference_point: bool = False, seed: int = 42) -> Database:
    """Parks + Wildfires database with spatial joins installed.

    ``reference_point`` swaps the FUDJ library for the variant with the
    reference-point dedup override (Fig 12b).
    """
    db = Database(num_partitions=partitions)
    db.create_type("ParkType", [("id", "int"), ("boundary", "geometry"),
                                ("tags", "string")])
    db.create_dataset("Parks", "ParkType", "id")
    db.load("Parks", generate_parks(num_parks, seed=seed))
    db.create_type("FireType", [("id", "int"), ("location", "point"),
                                ("fire_start", "double"), ("fire_end", "double")])
    db.create_dataset("Wildfires", "FireType", "id")
    db.load("Wildfires", generate_wildfires(num_fires, seed=seed + 1))
    join_class = ReferencePointSpatialJoin if reference_point else SpatialContainsJoin
    db.create_join("st_contains", join_class, defaults=(grid_n,))
    install_builtin_joins(db, spatial_n=grid_n, plane_sweep=plane_sweep)
    return db


def interval_database(num_rides: int, partitions: int = 8,
                      num_buckets: int = 100, seed: int = 44) -> Database:
    """NYCTaxi-like database with the interval joins installed."""
    db = Database(num_partitions=partitions)
    db.create_type("TaxiType", [("id", "int"), ("vendor", "int"),
                                ("ride_interval", "interval")])
    db.create_dataset("NYCTaxi", "TaxiType", "id")
    db.load("NYCTaxi", generate_taxi_rides(num_rides, seed=seed))
    db.create_join("overlapping_interval", IntervalJoin, defaults=(num_buckets,))
    install_builtin_joins(db, interval_buckets=num_buckets)
    return db


def text_database(num_reviews: int, partitions: int = 8,
                  vocab_size: int = None, seed: int = 45) -> Database:
    """AmazonReview-like database with the text-similarity joins installed.

    The threshold is a query parameter (``similarity_jaccard(...) >= t``),
    so nothing is fixed here.
    """
    db = Database(num_partitions=partitions)
    db.create_type("ReviewType", [("id", "int"), ("overall", "int"),
                                  ("review", "text")])
    db.create_dataset("AmazonReview", "ReviewType", "id")
    if vocab_size is None:
        vocab_size = max(100, num_reviews // 4)
    db.load("AmazonReview", generate_reviews(num_reviews, seed=seed,
                                             vocab_size=vocab_size))
    db.create_join("similarity_jaccard", TextSimilarityJoin)
    install_builtin_joins(db)
    return db
