"""Experiment harness: run queries per mode, collect rows for the paper's
tables and figures, and print them in an aligned text layout."""

from __future__ import annotations

import time

from repro.database import Database


def run_query(db: Database, sql: str, mode: str, dedup=None,
              cores=(12,), measure_bytes: bool = False,
              timeout_seconds: float = None) -> dict:
    """Execute one query and return a flat measurement row.

    Args:
        db: the workload database.
        sql: the query text.
        mode: fudj / builtin / ontop.
        dedup: optional dedup override.
        cores: core counts at which to report simulated time.
        measure_bytes: exact vs sampled shuffle byte accounting (sampled
            is the default here — benches sweep many sizes).
        timeout_seconds: when set and the wall-clock exceeds it, the row
            is still returned but flagged ``timed_out`` (the paper stops
            queries at 4000 s and declares the setup non-scalable).

    Returns:
        dict with ``wall_seconds``, ``sim_<cores>s`` entries,
        ``comparisons``, ``output_records``, ``network_bytes``,
        ``result_rows``, ``timed_out``.
    """
    started = time.perf_counter()
    result = db.execute(sql, mode=mode, dedup=dedup, measure_bytes=measure_bytes)
    wall = time.perf_counter() - started
    metrics = result.metrics
    row = {
        "mode": mode,
        "wall_seconds": wall,
        "comparisons": metrics.comparisons,
        "output_records": metrics.output_records,
        "network_bytes": metrics.total_network_bytes(),
        "cpu_units": metrics.total_cpu_units(),
        "result_rows": len(result),
        "result": result,
        "timed_out": timeout_seconds is not None and wall > timeout_seconds,
    }
    for core_count in cores:
        row[f"sim_{core_count}c"] = metrics.simulated_seconds(core_count)
    return row


def format_table(headers: list, rows: list, title: str = None) -> str:
    """Render rows as an aligned text table (the bench output format).

    ``rows`` hold display-ready values; floats are rendered with four
    significant digits, everything else via ``str``.
    """
    def render(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[render(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def speedup(baseline: float, other: float) -> float:
    """``baseline / other`` guarded against zero division."""
    if other <= 0:
        return float("inf")
    return baseline / other
