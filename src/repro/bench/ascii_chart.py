"""Terminal charts for the benchmark reports.

The paper's figures are line/bar charts; the bench suite reproduces their
*data* as tables, and these helpers add a visual rendering so the shape
(crossovers, U-curves, flat scaling) is visible at a glance in a
terminal or a results file.  Pure text, no dependencies.
"""

from __future__ import annotations

import math

_BAR = "█"
_HALF = "▌"


def bar_chart(rows, width: int = 46, log: bool = False,
              title: str = None) -> str:
    """Horizontal bar chart.

    Args:
        rows: list of ``(label, value)`` with non-negative values.
        width: maximum bar width in characters.
        log: scale bars by log10 (for series spanning decades, like the
            on-top vs FUDJ comparisons).
        title: optional heading line.
    """
    rows = [(str(label), float(value)) for label, value in rows]
    if any(value < 0 for _, value in rows):
        raise ValueError("bar_chart takes non-negative values")
    lines = [title] if title else []
    if not rows:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(label) for label, _ in rows)

    def scaled(value: float) -> float:
        if not log:
            return value
        # Map [min positive / 10, max] onto a positive log range.
        return math.log10(value / floor) if value > 0 else 0.0

    positives = [v for _, v in rows if v > 0]
    floor = min(positives) / 10 if positives else 1.0
    top = max((scaled(v) for _, v in rows), default=0.0)
    for label, value in rows:
        units = 0.0 if top <= 0 else scaled(value) / top * width
        whole = int(units)
        bar = _BAR * whole + (_HALF if units - whole >= 0.5 else "")
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.4g}")
    return "\n".join(lines)


def series_chart(x_values, series: dict, height: int = 12, width: int = 60,
                 log_y: bool = False, title: str = None,
                 x_label: str = "", y_label: str = "") -> str:
    """A multi-series scatter/line chart on a character grid.

    Args:
        x_values: shared x coordinates (numeric).
        series: mapping label -> list of y values (same length as
            ``x_values``); each series is drawn with its own marker.
        log_y: log-scale the y axis (for order-of-magnitude gaps).
    """
    markers = "ox+*#@%&"
    xs = [float(x) for x in x_values]
    if not xs or not series:
        return title or "(no data)"
    all_y = [y for ys in series.values() for y in ys if y is not None]
    if log_y:
        all_y = [y for y in all_y if y > 0]

    def ty(y):
        return math.log10(y) if log_y else y

    y_min, y_max = min(map(ty, all_y)), max(map(ty, all_y))
    x_min, x_max = min(xs), max(xs)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, (label, ys) in zip(markers, series.items()):
        for x, y in zip(xs, ys):
            if y is None or (log_y and y <= 0):
                continue
            col = int((x - x_min) / x_span * (width - 1))
            row = int((ty(y) - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = [title] if title else []
    axis_note = " (log y)" if log_y else ""
    lines.append(f"y: {y_label or 'value'}{axis_note}  "
                 f"[{min(all_y):.3g} .. {max(all_y):.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x: {x_label or 'x'}  [{x_min:.3g} .. {x_max:.3g}]")
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(markers, series)
    )
    lines.append(f" {legend}")
    return "\n".join(lines)
