"""Legacy setup shim: enables `pip install -e .` on offline machines
without the `wheel` package (PEP 660 editable builds need bdist_wheel)."""

from setuptools import setup

setup()
