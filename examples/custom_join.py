"""Writing a brand-new FUDJ: a distance (epsilon) join in ~40 lines.

The paper's pitch is that a developer can add a new distributed join
algorithm without touching engine internals.  This example does exactly
that for a join type the paper does NOT ship: an epsilon-distance join
over points (``dist(a, b) <= eps``), partitioned with a grid whose cells
are eps-sized so only neighbouring cells can match — a multi-join.

Workflow, as §VI-D2 recommends:

1. implement the FlexibleJoin,
2. debug it against nested-loop ground truth with the StandaloneRunner,
3. register it and run SQL.

Run:  python examples/custom_join.py
"""

import math
import random

from repro import Database, FlexibleJoin, StandaloneRunner
from repro.geometry import Point, Rectangle


class EpsilonDistanceJoin(FlexibleJoin):
    """Join point pairs within ``eps`` of each other.

    Buckets are cells of a grid with cell size ``eps``; a pair within eps
    must fall in the same or adjacent cells, so ``match`` accepts
    neighbouring cell ids (multi-join) and each point is assigned once
    (single-assign, no dedup needed).
    """

    name = "epsilon-distance"

    def __init__(self, eps: float = 1.0) -> None:
        super().__init__(eps)
        self.eps = float(eps)

    def local_aggregate(self, point, summary, side):
        mbr = point.mbr()
        return mbr if summary is None else summary.union(mbr)

    def global_aggregate(self, s1, s2, side):
        if s1 is None or s2 is None:
            return s1 or s2
        return s1.union(s2)

    def divide(self, s1, s2):
        extent = s1.union(s2) if s1 and s2 else (s1 or s2)
        columns = max(1, int(math.ceil(extent.width / self.eps)) + 1)
        # match() receives only bucket ids, so remember the grid width on
        # the instance (one FlexibleJoin instance serves one query).
        self._columns = columns
        return (extent, columns)

    def assign(self, point, pplan, side):
        extent, columns = pplan
        col = int((point.x - extent.x1) / self.eps)
        row = int((point.y - extent.y1) / self.eps)
        return row * columns + col

    def match(self, bucket_id1, bucket_id2):
        # Neighbouring cells (including diagonals) can hold pairs <= eps.
        extent_columns = self._columns
        row1, col1 = divmod(bucket_id1, extent_columns)
        row2, col2 = divmod(bucket_id2, extent_columns)
        return abs(row1 - row2) <= 1 and abs(col1 - col2) <= 1

    def verify(self, point1, point2, pplan):
        return point1.distance_to(point2) <= self.eps

    def uses_dedup(self):
        return False  # single-assign

    _columns = 1  # set by divide; see note there


# -- 1. debug standalone (the paper's single-machine prototype) ------------------------
rng = random.Random(12)
left = [Point(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(150)]
right = [Point(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(150)]

runner = StandaloneRunner(EpsilonDistanceJoin(2.0), trace=True)
got = sorted(runner.run(left, right), key=repr)
expected = sorted(runner.run_nested_loop(left, right), key=repr)
assert got == expected, "epsilon join disagrees with nested loop!"
print(f"Standalone check passed: {len(got)} pairs within eps=2.0 "
      f"({runner.stats['verify_calls']} of {150 * 150} pairs verified)")

# -- 2. register and use from SQL -----------------------------------------------------
db = Database(num_partitions=8)
db.execute("CREATE TYPE StationType { id: int, location: point }")
db.execute("CREATE DATASET Stations(StationType) PRIMARY KEY id")
db.execute("CREATE TYPE SensorType { id: int, location: point }")
db.execute("CREATE DATASET Sensors(SensorType) PRIMARY KEY id")
db.load("Stations", ({"id": i, "location": p} for i, p in enumerate(left)))
db.load("Sensors", ({"id": i, "location": p} for i, p in enumerate(right)))
db.create_join("within_distance", EpsilonDistanceJoin, defaults=(2.0,))

sql = ("SELECT COUNT(1) AS pairs FROM Stations s, Sensors n "
       "WHERE within_distance(s.location, n.location)")
print("\nPlan:")
print(db.explain(sql))
result = db.execute(sql)
print(f"\nSQL result: {result.rows[0]['pairs']} station/sensor pairs "
      f"within 2.0 units")
assert result.rows[0]["pairs"] == len(got)
print("Distributed execution matches the standalone prototype.")
