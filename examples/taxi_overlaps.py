"""Overlapping taxi rides: the interval join and its theta-join ceiling.

Runs the paper's interval experiment query over synthetic NYC-taxi-like
rides and demonstrates the §VII-C observation: because the interval FUDJ
overrides ``match`` (multi-join), bucket matching runs as a broadcast
theta join, and scaling the core count helps far less than it does for
the single-join spatial/text plans.

Run:  python examples/taxi_overlaps.py
"""

from repro.bench import INTERVAL_SQL, format_table, interval_database
from repro.bench.harness import run_query

db = interval_database(num_rides=2000, partitions=12, num_buckets=200)

print("Overlapping rides between vendor 1 and vendor 2\n")

result = db.execute(INTERVAL_SQL, mode="fudj")
print(f"Overlapping ride pairs: {result.rows[0]['c']}")
print(f"Plan:\n{db.explain(INTERVAL_SQL, mode='fudj')}\n")

# Scale the cluster with the core count, as the paper's testbed does:
# more cores means more partitions AND more broadcast replicas.
scaling = []
for cores in (12, 48, 96, 144):
    scaled = interval_database(num_rides=2000, partitions=cores,
                               num_buckets=200)
    row = run_query(scaled, INTERVAL_SQL, "fudj", cores=(cores,))
    scaling.append([cores, row[f"sim_{cores}c"]])
print(format_table(
    ["cores", "simulated seconds"],
    scaling,
    title="Core scaling of the interval FUDJ (multi-join => broadcast)",
))

base = scaling[0][1]
final = scaling[-1][1]
print(f"\n12 -> 144 cores changes the interval join time only {base / final:.1f}x "
      "(it can even get slower: every added worker receives the whole "
      "broadcast side).  The theta bucket matching does not parallelize, "
      "which is exactly the limitation the paper reports in SVII-C and "
      "plans to fix with a partitioned theta-join operator.")
