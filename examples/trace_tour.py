"""A guided tour of the observability layer on a spatial join.

Walks one query through every trace surface:

1. run with ``trace=True`` and print the span tree — the same
   phase/callback breakdown ``EXPLAIN ANALYZE`` and the shell's
   ``.trace on`` show;
2. read the skew report — per-bucket histograms from ``assign``,
   replication factor, and worker imbalance;
3. drill into the tree programmatically (where do the FUDJ phases and
   user callbacks spend their units?);
4. export a Chrome/Perfetto trace file to load in ``chrome://tracing``.

Run:  python examples/trace_tour.py
"""

import os
import tempfile

from repro.bench import SPATIAL_SQL, spatial_database

db = spatial_database(num_parks=200, num_fires=2000, partitions=8, grid_n=32)

print("Query:", SPATIAL_SQL, "\n")

# 1. Any query can record a structured trace; it changes nothing about
#    the results or the simulated cost — it only observes.
result = db.execute(SPATIAL_SQL, trace=True)
trace = result.trace

print("Span tree (what EXPLAIN ANALYZE and the shell's .trace on print):\n")
print(trace.render())

# 2. Skew diagnostics: how evenly did `assign` spread the records?
print("\nSkew report:\n")
print(trace.skew_report())

# 3. The tree is a plain data structure — drill in programmatically.
fudj = next(span for span in trace.walk()
            if span.name.startswith("fudj-join"))
print("\nFUDJ phase split:")
for phase in (c for c in fudj.children if c.kind == "phase"):
    print(f"  {phase.name:<10} {phase.total_units():>10.0f} units")

callbacks = [s for s in fudj.walk() if s.kind == "callback"]
print("\nUser callback profile:")
for span in sorted(callbacks, key=lambda s: -s.total_units()):
    print(f"  {span.name:<18} {span.calls:>6} calls "
          f"{span.total_units():>10.0f} units "
          f"{span.wall_seconds * 1000:>8.2f} ms wall")

# Every charged unit is accounted for exactly once:
assert abs(trace.total_units() - result.metrics.total_cpu_units()) < 1e-6

# 4. Export for chrome://tracing or https://ui.perfetto.dev — the
#    default clock lays spans on the deterministic charged-units
#    timeline, so the same query always produces the same file.
path = os.path.join(tempfile.gettempdir(), "fudj_trace.json")
trace.to_chrome_trace(path)
print(f"\nChrome trace written to {path}")
print("Open chrome://tracing (or ui.perfetto.dev) and load it.")
