"""Combined spatial + interval analysis (the paper's Query 3).

The hardest query in the paper's introduction joins THREE datasets with
two different optimized join types — spatial containment between parks
and weather stations, interval overlap between wildfires and sensor
readings — plus a distance residual.  No mainstream system optimizes
this; with two FUDJ libraries installed, the optimizer builds a plan with
two stacked partition-based joins.

Run:  python examples/weather_analysis.py
"""

import random

from repro import Database
from repro.geometry import Point, Polygon
from repro.interval import Interval
from repro.joins import IntervalJoin, SpatialContainsJoin

rng = random.Random(2024)
db = Database(num_partitions=8)

db.execute("CREATE TYPE Parks_Type { id: int, boundary: geometry }")
db.execute("CREATE DATASET Parks(Parks_Type) PRIMARY KEY id")
db.execute("CREATE TYPE Wildfire_Type { id: int, lat: double, lon: double, "
           "fire_start: double, fire_end: double }")
db.execute("CREATE DATASET Wildfires(Wildfire_Type) PRIMARY KEY id")
db.execute("CREATE TYPE Weather_Type { id: int, location: point, "
           "reading_interval: interval, temp: int }")
db.execute("CREATE DATASET Weather(Weather_Type) PRIMARY KEY id")

db.load("Parks", (
    {
        "id": i,
        "boundary": Polygon.regular(
            Point(rng.uniform(0, 80), rng.uniform(0, 80)),
            radius=rng.uniform(3, 9), sides=rng.randint(4, 8),
        ),
    }
    for i in range(60)
))
db.load("Wildfires", (
    {
        "id": i,
        "lat": rng.uniform(0, 80),
        "lon": rng.uniform(0, 80),
        "fire_start": (s := rng.uniform(0, 300)),
        "fire_end": s + rng.uniform(2, 25),
    }
    for i in range(400)
))
db.load("Weather", (
    {
        "id": i,
        "location": Point(rng.uniform(0, 80), rng.uniform(0, 80)),
        "reading_interval": Interval(t := rng.uniform(0, 320), t + 24.0),
        "temp": rng.randint(-5, 45),
    }
    for i in range(400)
))

db.create_join("st_contains", SpatialContainsJoin, defaults=(24,))
db.create_join("interval_overlapping", IntervalJoin, defaults=(64,))

QUERY3 = (
    "SELECT w.id AS fire_id, AVG(s.temp) AS avg_temp, COUNT(1) AS readings "
    "FROM Parks p, Weather s, Wildfires w "
    "WHERE ST_Contains(p.boundary, s.location) "
    "AND interval_overlapping(interval(w.fire_start, w.fire_end), "
    "s.reading_interval) "
    "AND st_distance(ST_MakePoint(w.lat, w.lon), s.location) < 15 "
    "GROUP BY w.id ORDER BY avg_temp DESC LIMIT 8"
)

print("Query 3 plan — two FUDJ joins stacked in one optimized plan:\n")
print(db.explain(QUERY3, mode="fudj"))

result = db.execute(QUERY3, mode="fudj")
print(f"\nHottest fires near in-park weather stations "
      f"({len(result)} shown):")
for row in result:
    print(f"  fire {row['fire_id']:>4}: avg {row['avg_temp']:.1f}C over "
          f"{row['readings']} readings")

ontop = db.execute(QUERY3, mode="ontop")
speedup = (ontop.metrics.simulated_seconds(12)
           / result.metrics.simulated_seconds(12))
print(f"\nSame answer as the NLJ plan, {speedup:.0f}x faster (simulated, "
      "12 cores) — and this is the query class the paper says no DBMS "
      "optimizes today.")
assert sorted(map(repr, ontop.rows)) == sorted(map(repr, result.rows))
