"""Fleet proximity analysis with a trajectory join.

Trajectory joins dominate the paper's related-work section, yet no
mainstream DBMS optimizes them — exactly the gap FUDJ targets.  This
example joins two vehicle fleets on "routes that passed within eps of
each other", using :class:`TrajectoryProximityJoin` (~40 lines of user
code in ``repro/joins/trajectory.py``), and compares against the on-top
NLJ with the ``trajectory_min_distance`` scalar.

Run:  python examples/fleet_proximity.py
"""

from repro import Database
from repro.bench.harness import format_table
from repro.datagen import generate_trajectories
from repro.joins import TrajectoryProximityJoin

db = Database(num_partitions=8)
db.execute("CREATE TYPE TripType { id: int, vehicle: int, route: trajectory }")
db.execute("CREATE DATASET Trips(TripType) PRIMARY KEY id")
db.load("Trips", generate_trajectories(800, seed=11))
db.create_join("routes_near", TrajectoryProximityJoin, defaults=(2.0, 32))

FUDJ_SQL = (
    "SELECT COUNT(1) AS encounters FROM Trips a, Trips b "
    "WHERE a.vehicle = 1 AND b.vehicle = 2 "
    "AND routes_near(a.route, b.route, 2.0)"
)
ONTOP_SQL = (
    "SELECT COUNT(1) AS encounters FROM Trips a, Trips b "
    "WHERE a.vehicle = 1 AND b.vehicle = 2 "
    "AND trajectory_min_distance(a.route, b.route) <= 2.0"
)

print("Close encounters between fleet 1 and fleet 2 routes\n")
print(db.explain(FUDJ_SQL))
print()

fudj = db.execute(FUDJ_SQL, mode="fudj")
ontop = db.execute(ONTOP_SQL, mode="ontop")
assert fudj.rows == ontop.rows, "FUDJ and on-top must agree"

rows = [
    ["FUDJ (grid + eps expansion)", fudj.metrics.comparisons,
     fudj.metrics.simulated_seconds(12)],
    ["on-top (NLJ + scalar distance)", ontop.metrics.comparisons,
     ontop.metrics.simulated_seconds(12)],
]
print(format_table(["plan", "pair tests", "sim s (12 cores)"], rows))
print(f"\n{fudj.rows[0]['encounters']} encounter pairs; the FUDJ plan "
      f"tested {ontop.metrics.comparisons // max(1, fudj.metrics.comparisons)}x "
      "fewer pairs — a fourth join domain, zero engine changes.")
