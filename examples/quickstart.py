"""Quickstart: install a FUDJ join library and run a spatial join.

This walks the paper's core workflow end to end:

1. create types and datasets (SQL DDL),
2. install a join library with ``CREATE JOIN`` (paper Query 4),
3. run a join query — the optimizer detects the FUDJ predicate and builds
   the partition-based plan of Figure 8,
4. compare against the on-top baseline (the same query with the rewrite
   disabled, which degenerates to a nested-loop join).

Run:  python examples/quickstart.py
"""

import random

from repro import Database
from repro.geometry import Point, Polygon

rng = random.Random(7)
db = Database(num_partitions=8)

# -- 1. schema ------------------------------------------------------------------
db.execute("CREATE TYPE Parks_Type { id: int, boundary: geometry, tags: string }")
db.execute("CREATE DATASET Parks(Parks_Type) PRIMARY KEY id")
db.execute("CREATE TYPE Wildfire_Type { id: int, location: point, "
           "fire_start: double }")
db.execute("CREATE DATASET Wildfires(Wildfire_Type) PRIMARY KEY id")

# -- 2. data ---------------------------------------------------------------------
db.load("Parks", (
    {
        "id": i,
        "boundary": Polygon.regular(
            Point(rng.uniform(0, 100), rng.uniform(0, 100)),
            radius=rng.uniform(2, 6), sides=rng.randint(4, 8),
        ),
        "tags": "scenic hiking",
    }
    for i in range(100)
))
db.load("Wildfires", (
    {
        "id": i,
        "location": Point(rng.uniform(0, 100), rng.uniform(0, 100)),
        "fire_start": rng.uniform(0, 365),
    }
    for i in range(2000)
))

# -- 3. install the Spatial FUDJ (paper Query 4 syntax) ------------------------------
db.execute(
    'CREATE JOIN st_contains(a: geometry, b: geometry) RETURNS boolean '
    'AS "repro.joins.spatial.SpatialContainsJoin" AT repro'
)

QUERY = (
    "SELECT p.id, COUNT(w.id) AS num_fires "
    "FROM Parks p, Wildfires w "
    "WHERE ST_Contains(p.boundary, w.location) "
    "GROUP BY p.id ORDER BY num_fires DESC LIMIT 5"
)

print("=== Optimized FUDJ plan ===")
print(db.explain(QUERY, mode="fudj"))
print()

fudj = db.execute(QUERY, mode="fudj")
print("Top parks by wildfire count (FUDJ plan):")
for row in fudj:
    print(f"  park {row['p.id']:>3}: {row['num_fires']} fires")
print()

ontop = db.execute(QUERY, mode="ontop")
assert fudj.rows == ontop.rows, "FUDJ and on-top must agree"

print("FUDJ  : "
      f"{fudj.metrics.comparisons:>8} predicate evaluations, "
      f"simulated {fudj.metrics.simulated_seconds(12):.4f}s on 12 cores")
print("On-top: "
      f"{ontop.metrics.comparisons:>8} predicate evaluations, "
      f"simulated {ontop.metrics.simulated_seconds(12):.4f}s on 12 cores")
print(f"\nSpeed-up from the FUDJ rewrite: "
      f"{ontop.metrics.simulated_seconds(12) / fudj.metrics.simulated_seconds(12):.1f}x")
