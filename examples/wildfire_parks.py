"""The paper's motivating scenario (§I-A): which parks burned last year?

Runs Query 1 — a spatial join with filtering, aggregation, and sorting —
on the synthetic Parks/Wildfires workload, in all three execution modes,
and shows where the time goes (summaries, shuffles, verification).

Run:  python examples/wildfire_parks.py
"""

from repro.bench import format_table, spatial_database
from repro.bench.harness import run_query

QUERY1 = (
    "SELECT p.id, COUNT(w.id) AS num_fires "
    "FROM Parks p, Wildfires w "
    "WHERE ST_Contains(p.boundary, w.location) "
    "AND w.fire_start >= 180.0 "
    "GROUP BY p.id ORDER BY num_fires DESC LIMIT 10"
)

db = spatial_database(num_parks=300, num_fires=3000, partitions=8, grid_n=32)

print("Query 1 — parks damaged by wildfires in the second half of the year\n")

rows = []
results = {}
for mode in ("fudj", "builtin", "ontop"):
    row = run_query(db, QUERY1, mode, cores=(12,))
    results[mode] = row
    rows.append([
        mode,
        row["wall_seconds"],
        row["sim_12c"],
        row["comparisons"],
        row["result_rows"],
    ])

print(format_table(
    ["mode", "wall s", "simulated s (12 cores)", "predicate evals", "rows"],
    rows,
))

fudj_result = results["fudj"]["result"]
print("\nMost-burned parks:")
for row in fudj_result.rows[:5]:
    print(f"  park {row['p.id']:>4}: {row['num_fires']} fires")

print("\nWhere the FUDJ plan spends its work (per pipeline stage):")
for stage in fudj_result.metrics.stages:
    if stage.total_units() or stage.network_bytes:
        print(f"  {stage.name:<42} "
              f"cpu={stage.total_units():>10.0f}  "
              f"net={stage.network_bytes:>10.0f}B")
