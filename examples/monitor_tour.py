"""A guided tour of the event log and the live read-only monitor.

Where ``telemetry_tour.py`` reads the session through counters and
``sys.*`` tables, this tour watches the engine *narrate itself*:

1. run a seeded workload (with fault injection, so the retry path
   speaks up) and read the structured event log three ways — the
   in-memory tail, plain SQL over ``sys.events``, and the JSONL
   export;
2. show the determinism contract: two identical seeded sessions emit
   **byte-identical** event streams;
3. start the zero-dependency HTTP monitor on an ephemeral port and hit
   ``/healthz``, ``/metrics``, ``/queries``, ``/events``, and
   ``/traces/<id>`` from the outside with nothing but ``urllib``;
4. verify scrape parity: the ``/metrics`` body equals
   ``metrics_snapshot("prometheus")`` for the same instant.

Run:  python examples/monitor_tour.py
"""

import json
import urllib.request

from repro.database import Database


def build_session():
    db = Database(num_partitions=4, fault_plan="7:0.25")
    db.execute("CREATE TYPE T { id: int, k: int, v: int }")
    db.execute("CREATE DATASET L(T) PRIMARY KEY id")
    db.execute("CREATE DATASET R(T) PRIMARY KEY id")
    db.load("L", [{"id": i, "k": i % 5, "v": i} for i in range(60)])
    db.load("R", [{"id": i, "k": i % 5, "v": i * 2} for i in range(40)])
    db.execute("SELECT l.id, r.v FROM L l, R r WHERE l.k = r.k")
    db.execute("SELECT l.k, COUNT(1) AS n FROM L l GROUP BY l.k")
    return db


db = build_session()
# Snapshot now: reading sys.events below is itself a query, and gets
# narrated into the log like any other statement.
canonical = db.telemetry.events.to_jsonl()

# 1. The event log: a typed, ordered narration of every decision the
#    engine made — queries, stages, plans, faults, governance.
print("Event log tail (seq, kind, query, stage):")
for event in db.telemetry.events.tail(8):
    print(f"  #{event.seq:<4} {event.kind:<18} q{event.query_id} "
          f"{event.stage or '-'}")

# The same facts through plain SQL — sys.events binds, plans, and
# scans like any dataset.
result = db.execute(
    "SELECT e.kind, COUNT(1) AS n FROM sys.events e "
    "GROUP BY e.kind ORDER BY e.kind"
)
print("\nSELECT e.kind, COUNT(1) FROM sys.events e GROUP BY e.kind:")
for row in result.rows:
    print(f"  {row['e.kind']:<20} {row['n']:>4}")
kinds = {row["e.kind"] for row in result.rows}
assert "query.start" in kinds and "stage.finish" in kinds
assert "fault.retry" in kinds, "the fault plan must have spoken"

# 2. Determinism: an identical seeded session tells the identical
#    story, byte for byte (the JSONL export is the canonical form).
twin = build_session()
assert canonical == twin.telemetry.events.to_jsonl(), \
    "identical sessions must emit byte-identical event streams"
print("\nTwo identical seeded sessions emitted byte-identical JSONL "
      f"({len(canonical.splitlines())} events).")

# 3. The live monitor: a read-only stdlib HTTP server over the same
#    session. port=0 picks a free ephemeral port.
url = db.serve_monitor(port=0).url
print(f"\nMonitor serving on {url}")


def get(path):
    with urllib.request.urlopen(url + path, timeout=10) as response:
        return response.read().decode("utf-8")


health = json.loads(get("/healthz"))
print(f"  /healthz      -> status={health['status']} "
      f"queries={health['queries_recorded']} "
      f"events={health['events_emitted']}")
assert health["status"] == "ok"

queries = json.loads(get("/queries"))
print(f"  /queries      -> {len(queries)} recorded statements")

events = [json.loads(line) for line in get("/events?tail=5").splitlines()]
print(f"  /events?tail=5 -> {len(events)} events, last kind "
      f"{events[-1]['kind']!r}")

trace = json.loads(get(f"/traces/{queries[-1]['id']}"))
print(f"  /traces/{queries[-1]['id']}     -> {len(trace['traceEvents'])} "
      "Chrome trace events (open in chrome://tracing)")

# 4. Scrape parity: the monitor serves the registry verbatim — the
#    /metrics body IS metrics_snapshot("prometheus") for that instant.
scraped = get("/metrics")
assert scraped == db.metrics_snapshot("prometheus"), \
    "/metrics must equal metrics_snapshot() for the same instant"
build_info = [line for line in scraped.splitlines()
              if line.startswith("fudj_build_info")]
print(f"  /metrics      -> parity with metrics_snapshot() holds; "
      f"{build_info[0]}")

db.close()  # stops the monitor and closes any event sink
print("\nSession closed; monitor stopped.")
