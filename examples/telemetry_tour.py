"""A guided tour of the telemetry layer: registry, history, sys tables.

Where ``trace_tour.py`` dissects one query, this tour watches a whole
*session*:

1. run a small mixed workload (DDL, queries, one failure) and read the
   bounded query history;
2. query the session **through SQL itself** — ``sys.queries``,
   ``sys.stages``, and ``sys.metrics`` are ordinary datasets to the
   planner;
3. export the metrics registry as Prometheus text and canonical JSON,
   and show both are deterministic (a second identical session produces
   byte-identical snapshots);
4. show retention: a small ``history_limit`` evicts the oldest records
   while the counters keep the true totals.

Run:  python examples/telemetry_tour.py
"""

from repro.database import Database


def build_session(history_limit=256):
    db = Database(history_limit=history_limit)
    db.execute("CREATE TYPE T { id: int, k: int, v: int }")
    db.execute("CREATE DATASET L(T) PRIMARY KEY id")
    db.execute("CREATE DATASET R(T) PRIMARY KEY id")
    db.load("L", [{"id": i, "k": i % 5, "v": i} for i in range(60)])
    db.load("R", [{"id": i, "k": i % 5, "v": i * 2} for i in range(40)])
    db.execute("SELECT l.id, r.v FROM L l, R r WHERE l.k = r.k")
    db.execute("SELECT l.k, COUNT(1) AS n FROM L l GROUP BY l.k")
    try:
        db.execute("SELECT x.nope FROM Missing x")  # recorded as an error
    except Exception:
        pass
    return db


db = build_session()

# 1. The history log: one structured record per statement, failures too.
print("Query history (sql, status, rows, cpu units):")
for entry in db.telemetry.history.entries():
    sql = entry["sql"] if len(entry["sql"]) <= 48 else entry["sql"][:45] + "..."
    print(f"  #{entry['id']} {entry['status']:<6} rows={entry['rows']:<5} "
          f"units={entry['cpu_units']:>7.0f}  {sql}")

# 2. The same facts through plain SQL — sys.* tables bind, plan, and
#    scan like any dataset (note the dotted FROM and SELECT *).
print("\nSELECT q.status, COUNT(1) FROM sys.queries q GROUP BY q.status:")
result = db.execute(
    "SELECT q.status, COUNT(1) AS n FROM sys.queries q GROUP BY q.status"
)
statuses = {row["q.status"]: row["n"] for row in result.rows}
print(f"  {statuses}")
assert statuses.get("error") == 1, "the failed query must be on record"

print("\nWork by FUDJ phase (from sys.stages):")
result = db.execute(
    "SELECT s.phase, SUM(s.cpu_units) AS units FROM sys.stages s "
    "GROUP BY s.phase ORDER BY s.phase"
)
for row in result.rows:
    print(f"  {row['s.phase']:<10} {row['units']:>10.0f} units")

wide = db.execute("SELECT * FROM sys.queries")
print(f"\nSELECT * FROM sys.queries -> {len(wide.rows)} rows x "
      f"{len(wide.schema)} columns")

# 3. Snapshots: Prometheus text exposition or canonical JSON, both
#    deterministic — only charged units and counters, never wall clocks.
prom = db.metrics_snapshot("prometheus")
print("\nPrometheus snapshot (first lines):")
for line in prom.splitlines()[:8]:
    print(f"  {line}")

# (Two *fresh* twins: `db` itself has since executed the sys.* queries
# above, which are recorded like any other statement.)
twin_a, twin_b = build_session(), build_session()
assert twin_a.metrics_snapshot() == twin_b.metrics_snapshot(), \
    "identical sessions must snapshot byte-identically (JSON)"
assert (twin_a.metrics_snapshot("prometheus")
        == twin_b.metrics_snapshot("prometheus")), \
    "identical sessions must snapshot byte-identically (Prometheus)"
print("\nTwo identical sessions produced byte-identical snapshots.")

# 4. Retention: the log is bounded; eviction is visible in the gauges.
small = build_session(history_limit=3)
history = small.telemetry.history
assert len(history) == 3 and history.evicted > 0
print(f"\nWith history_limit=3: {len(history)} records retained, "
      f"{history.evicted} evicted (oldest first); "
      f"sys.queries now has {len(small.execute('SELECT * FROM sys.queries').rows)} rows.")
