"""Tour of the §VIII future-work extensions, all implemented here.

The paper closes with four planned directions; this example runs each of
them against the stock implementation it improves:

1. partitioned theta join  — kills the interval join's broadcast,
2. sort-merge local join   — the FS forward scan inside each partition,
3. plane-sweep local join  — §VII-F's optimization via the FUDJ hook,
4. automatic bucket tuning — SUMMARIZE statistics pick the grid.

Run:  python examples/extension_tour.py
"""

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    format_table,
    interval_database,
    spatial_database,
)
from repro.bench.harness import run_query
from repro.joins import (
    AutoTuneSpatialJoin,
    PartitionedIntervalJoin,
    PlaneSweepSpatialJoin,
    SortMergeIntervalJoin,
)

CORES = 48


def swap_join(db, name, join_class, defaults):
    db.drop_join(name)
    db.create_join(name, join_class, defaults=defaults)


# -- 1 + 2: the interval join's broadcast wall -----------------------------------------

print("Interval join (2 000 rides, 48-core cluster)\n")
rows = []
for label, join_class in (
    ("stock (broadcast theta, SVII-C)", None),
    ("partitioned theta", PartitionedIntervalJoin),
    ("partitioned + sort-merge local join", SortMergeIntervalJoin),
):
    db = interval_database(2000, partitions=CORES, num_buckets=128)
    if join_class is not None:
        swap_join(db, "overlapping_interval", join_class, (128,))
    row = run_query(db, INTERVAL_SQL, "fudj", cores=(CORES,))
    rows.append([label, row[f"sim_{CORES}c"], int(row["network_bytes"]),
                 row["result"].rows[0]["c"]])
print(format_table(["implementation", "sim s", "network bytes", "pairs"],
                   rows))
assert len({r[3] for r in rows}) == 1, "all variants must agree"
print("\nThe broadcast traffic disappears with partitioned matching, and\n"
      "the sort-merge local join cuts the candidate scan on top of it.\n")

# -- 3 + 4: spatial local join and auto-tuning ------------------------------------------

print("Spatial join (500 parks x 5 000 fires, 48-core cluster)\n")
rows = []
for label, join_class, defaults in (
    ("stock PBSM, hand-tuned n=40", None, None),
    ("plane-sweep local_join hook", PlaneSweepSpatialJoin, (40,)),
    ("auto-tuned grid (no n given)", AutoTuneSpatialJoin, ()),
):
    db = spatial_database(500, 5000, partitions=CORES, grid_n=40)
    if join_class is not None:
        swap_join(db, "st_contains", join_class, defaults)
    row = run_query(db, SPATIAL_SQL, "fudj", cores=(CORES,))
    rows.append([label, row[f"sim_{CORES}c"], row["comparisons"],
                 row["result_rows"]])
print(format_table(["implementation", "sim s", "pair tests", "rows"], rows))
assert len({r[3] for r in rows}) == 1, "all variants must agree"
print("\nEach extension is an ordinary FlexibleJoin subclass — no engine\n"
      "changes were needed, which is the point of the FUDJ hooks.")
