"""Text-similarity analysis: how similar are 5-star and 4-star reviews?

The paper's text-similarity experiment query (Query 5) over the synthetic
Amazon-like reviews, swept across similarity thresholds — showing how the
prefix filter loses its bite as the threshold drops (paper Fig 11c), and
comparing the two duplicate-handling strategies (paper Fig 12a).

Run:  python examples/similar_reviews.py
"""

from repro.bench import TEXT_SQL, format_table, text_database
from repro.bench.harness import run_query

db = text_database(num_reviews=1200, partitions=8)

print("Similar review pairs across ratings (5-star vs 4-star)\n")

rows = []
for threshold in (0.99, 0.9, 0.8, 0.7, 0.6, 0.5):
    sql = TEXT_SQL.format(threshold=threshold)
    row = run_query(db, sql, "fudj", cores=(12,))
    rows.append([
        threshold,
        row["result"].rows[0]["c"],
        row["comparisons"],
        row["sim_12c"],
    ])

print(format_table(
    ["threshold", "similar pairs", "verifications", "simulated s"],
    rows,
    title="Threshold sweep (FUDJ plan) — lower thresholds verify far more pairs",
))

print("\nDuplicate handling at t=0.8 (paper Fig 12a):")
sql = TEXT_SQL.format(threshold=0.8)
strategy_rows = []
for dedup in ("avoidance", "elimination"):
    row = run_query(db, sql, "fudj", dedup=dedup, cores=(12,),
                    measure_bytes=True)
    strategy_rows.append([
        dedup, row["sim_12c"], row["network_bytes"], row["result"].rows[0]["c"],
    ])
print(format_table(
    ["strategy", "simulated s", "bytes shuffled", "pairs"],
    strategy_rows,
))
print("\nAvoidance needs no post-join shuffle, which is why the paper "
      "makes it the default.")
