# Convenience targets for the FUDJ reproduction.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: install test test-faults test-telemetry test-resources test-workers test-batch test-optimizer test-events test-server bench bench-check perf-gate lint-docs examples slow-examples shell clean serve

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-faults:      ## fault-tolerance tests + ablation benchmark
	$(PYTHON) -m pytest tests/test_fault_tolerance.py tests/test_failure_injection.py -q
	$(PYTHON) -m pytest benchmarks/bench_fault_tolerance.py --benchmark-disable -q

test-telemetry:   ## metrics registry, query history, sys.* tables
	$(PYTHON) -m pytest tests/test_telemetry.py -q
	$(PYTHON) benchmarks/bench_observability.py --metrics-out /tmp/fudj-metrics.json

test-resources:   ## memory budgets, spill, admission, circuit breakers
	$(PYTHON) -m pytest tests/test_resources.py tests/test_resource_properties.py -q
	$(PYTHON) -m pytest benchmarks/bench_resource_governance.py --benchmark-disable -q

test-workers:     ## supervised process-pool backend: parity, crashes, recovery
	$(PYTHON) -m pytest tests/test_workers.py -q
	$(PYTHON) benchmarks/bench_fig10_scalability.py --backend process --workers 2 --out /tmp/fudj-fig10-measured.json

test-optimizer:   ## cost-based optimizer: estimates, ordering, parity, plan quality
	$(PYTHON) -m pytest tests/test_optimizer_cost.py tests/test_optimizer_parity.py -q
	$(PYTHON) benchmarks/bench_optimizer.py --out /tmp/fudj-optimizer-plan-quality.json

test-events:      ## structured event log + live monitor: determinism, parity, endpoints
	$(PYTHON) -m pytest tests/test_events.py tests/test_monitor.py -q

test-server:      ## concurrent session server: chaos harness, cancellation, drain
	$(PYTHON) -m pytest tests/test_server.py -q
	$(PYTHON) benchmarks/bench_serving.py --smoke --no-trajectory

serve:            ## run the session server on an ephemeral port
	$(PYTHON) -m repro serve --port 0

test-batch:       ## vectorized batch execution: row-parity, kernels, perf gate
	$(PYTHON) -m pytest tests/test_batch.py -q
	FUDJ_EXEC=batch $(PYTHON) -m pytest tests/ -q
	$(PYTHON) benchmarks/bench_fig9_performance.py --check-baseline

perf-gate:        ## row-vs-batch units baseline (CI-required)
	$(PYTHON) benchmarks/bench_fig9_performance.py --check-baseline

bench:            ## full run: timings + shape assertions + results/*.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-check:      ## fast run: shape assertions only
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable -q

lint-docs:        ## links resolve; dot-commands, Database kwargs, CLI flags documented
	$(PYTHON) tools/lint_docs.py

examples:
	for f in examples/quickstart.py examples/custom_join.py \
	         examples/weather_analysis.py examples/fleet_proximity.py; do \
	    $(PYTHON) $$f || exit 1; done

slow-examples:
	for f in examples/*.py; do $(PYTHON) $$f || exit 1; done

shell:
	$(PYTHON) -m repro

clean:
	rm -rf .pytest_cache benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
