#!/usr/bin/env python
"""Docs linter: keep the documented surface honest.

Ten checks over ``README.md`` and ``docs/*.md``:

1. **Links resolve.** Every relative markdown link (and image) points at
   a file or directory that exists; fragment-only links and absolute
   URLs are skipped.
2. **Dot-commands are documented.** Every ``.``-prefixed command the
   shell accepts (parsed from ``repro.cli``'s help text) is mentioned
   somewhere in the docs.
3. **Database kwargs are documented.** Every keyword of the public
   ``Database(...)`` constructor (via ``inspect.signature``) is
   mentioned somewhere in the docs.
4. **sys tables are documented.** Every virtual table registered in
   ``repro.engine.telemetry.SYS_TABLES`` is mentioned somewhere in the
   docs.
5. **CLI flags are documented.** Every ``--flag`` the shell advertises
   in its usage text (``repro.cli``'s module docstring) is mentioned
   somewhere in the docs.
6. **Execution modes are documented.** Every mode in
   ``repro.engine.batch.EXECUTION_MODES`` appears as a literal
   ``execution="<mode>"`` usage, and the ``FUDJ_EXEC`` environment
   override is mentioned.
7. **Optimizer modes are documented.** Every mode in
   ``repro.optimizer.OPTIMIZER_MODES`` appears as a literal
   ``optimizer="<mode>"`` usage somewhere in the docs.
8. **Environment overrides are documented.** Every ``FUDJ_*``
   environment variable the source reads via ``os.environ`` is
   mentioned somewhere in the docs.
9. **Event kinds are documented.** Every event ``kind`` the engine can
   emit (``repro.engine.events.EVENT_KINDS`` — ``emit()`` rejects
   anything outside the registry, so the registry *is* the emitted
   surface) appears in ``docs/observability.md``.
10. **The serving surface is documented.** ``docs/serving.md`` is the
    session-server reference: every server-side event kind
    (``server.*`` / ``session.*`` / ``cancel.*``) must appear there,
    and every registered ``sys.*`` table must be documented in a
    ``docs/*.md`` page (a mention only in the repo ``README.md`` does
    not count as documentation).

Run with ``make lint-docs`` (CI runs it on every push).  Exits nonzero
with one line per violation.
"""

from __future__ import annotations

import inspect
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Markdown links/images: [text](target) — targets split off any #fragment.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: A dot-command line in the shell help: "    .name arg-spec   description".
_DOT_COMMAND = re.compile(r"^\s{4}(\.[a-z]+)\s", re.MULTILINE)
#: A CLI flag in the shell's usage text: "--memory-budget", "--trace", ...
_CLI_FLAG = re.compile(r"--[a-z][a-z-]+")


def doc_files() -> list:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(files: list) -> list:
    problems = []
    for path in files:
        for match in _LINK.finditer(path.read_text()):
            target = match.group(1).split("#", 1)[0]
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def shell_dot_commands() -> set:
    from repro import cli

    commands = set(_DOT_COMMAND.findall(cli.__doc__))
    # .exit is an undocumented alias of .quit; hold the docs to the
    # advertised surface.
    return commands


def cli_flags() -> set:
    from repro import cli

    return set(_CLI_FLAG.findall(cli.__doc__))


def database_kwargs() -> set:
    from repro.database import Database

    params = inspect.signature(Database.__init__).parameters
    return {name for name in params if name != "self"}


def sys_tables() -> set:
    from repro.engine.telemetry import SYS_TABLES

    return set(SYS_TABLES)


def execution_modes() -> tuple:
    from repro.engine.batch import EXECUTION_MODES

    return EXECUTION_MODES


def check_execution_modes(files: list) -> list:
    """Every execution granularity must be shown in its call form.

    Plain substring search, not :func:`check_mentions` — the needles end
    in a closing quote, where a ``\\b`` word boundary never matches."""
    corpus = "\n".join(path.read_text() for path in files)
    problems = []
    for mode in execution_modes():
        literal = f'execution="{mode}"'
        if literal not in corpus:
            problems.append(f"execution mode {literal} is not documented "
                            "in README.md or docs/")
    if "FUDJ_EXEC" not in corpus:
        problems.append("environment override 'FUDJ_EXEC' is not "
                        "documented in README.md or docs/")
    return problems


def optimizer_modes() -> tuple:
    from repro.optimizer import OPTIMIZER_MODES

    return OPTIMIZER_MODES


def check_optimizer_modes(files: list) -> list:
    """Every optimizer mode must be shown in its call form (plain
    substring search, as in :func:`check_execution_modes`)."""
    corpus = "\n".join(path.read_text() for path in files)
    problems = []
    for mode in optimizer_modes():
        literal = f'optimizer="{mode}"'
        if literal not in corpus:
            problems.append(f"optimizer mode {literal} is not documented "
                            "in README.md or docs/")
    return problems


#: os.environ reads of a FUDJ_* variable anywhere in src/.
_ENV_READ = re.compile(r"environ(?:\.get)?\(\s*[\"'](FUDJ_[A-Z_]+)[\"']")


def env_vars() -> set:
    names = set()
    for path in sorted((REPO / "src").rglob("*.py")):
        names.update(_ENV_READ.findall(path.read_text()))
    return names


def event_kinds() -> set:
    from repro.engine.events import EVENT_KINDS

    return set(EVENT_KINDS)


def check_event_kinds() -> list:
    """Every emittable event kind must appear in the observability doc
    specifically — that page is the event-log reference."""
    doc = REPO / "docs" / "observability.md"
    corpus = doc.read_text() if doc.exists() else ""
    problems = []
    for kind in sorted(event_kinds()):
        if kind not in corpus:
            problems.append(f"event kind {kind!r} is not documented in "
                            "docs/observability.md")
    return problems


#: Event kinds emitted by the session server: the serving-doc surface.
_SERVING_KIND_PREFIXES = ("server.", "session.", "cancel.")


def check_serving_surface() -> list:
    """Check #10: ``docs/serving.md`` documents every server-side
    event kind, and every ``sys.*`` table is documented inside
    ``docs/`` proper (not just the repo README)."""
    problems = []
    serving = REPO / "docs" / "serving.md"
    serving_corpus = serving.read_text() if serving.exists() else ""
    if not serving_corpus:
        problems.append("docs/serving.md is missing — the session "
                        "server has no reference page")
    for kind in sorted(event_kinds()):
        if kind.startswith(_SERVING_KIND_PREFIXES):
            if kind not in serving_corpus:
                problems.append(f"server event kind {kind!r} is not "
                                "documented in docs/serving.md")
    docs_corpus = "\n".join(path.read_text() for path in
                            sorted((REPO / "docs").glob("*.md")))
    for table in sorted(sys_tables()):
        if not re.search(re.escape(table) + r"\b", docs_corpus):
            problems.append(f"sys table {table!r} is not documented in "
                            "any docs/*.md page")
    return problems


def check_mentions(files: list, needles: set, what: str) -> list:
    corpus = "\n".join(path.read_text() for path in files)
    problems = []
    for needle in sorted(needles):
        # Word-ish match: the token must appear verbatim (dot-commands
        # include their leading dot; kwargs are plain identifiers).
        if not re.search(re.escape(needle) + r"\b", corpus):
            problems.append(f"{what} {needle!r} is not documented in "
                            "README.md or docs/")
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    files = doc_files()
    if len(files) < 2:
        print("lint-docs: no docs found — is the repo layout intact?")
        return 1
    problems = []
    problems += check_links(files)
    problems += check_mentions(files, shell_dot_commands(), "dot-command")
    problems += check_mentions(files, database_kwargs(), "Database kwarg")
    problems += check_mentions(files, sys_tables(), "sys table")
    problems += check_mentions(files, cli_flags(), "CLI flag")
    problems += check_execution_modes(files)
    problems += check_optimizer_modes(files)
    problems += check_mentions(files, env_vars(), "environment variable")
    problems += check_event_kinds()
    problems += check_serving_surface()
    for problem in problems:
        print(f"lint-docs: {problem}")
    if problems:
        print(f"lint-docs: {len(problems)} problem(s)")
        return 1
    print(f"lint-docs: {len(files)} files clean "
          f"({len(shell_dot_commands())} dot-commands, "
          f"{len(database_kwargs())} Database kwargs, "
          f"{len(sys_tables())} sys tables, "
          f"{len(cli_flags())} CLI flags, "
          f"{len(execution_modes())} execution modes, "
          f"{len(optimizer_modes())} optimizer modes, "
          f"{len(env_vars())} env vars, "
          f"{len(event_kinds())} event kinds checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
