"""Resource governance ablation: spill overhead and admission throughput.

Two experiments:

1. *Spill overhead vs budget* — the Figure 9 workloads under a sweep of
   per-worker memory budgets, from unbounded down to a few hundred
   bytes.  Over-budget operator state really spills to temp files and
   is charged through ``CostModel.spill_units``, so makespan should
   degrade gracefully while results stay byte-identical at every
   budget.
2. *Admission throughput under load* — a seeded synthetic burst of
   concurrent queries replayed through the pure admission simulator at
   increasing capacities.  Bounded FIFO queueing: reservations never
   exceed capacity, sheds are deterministic, and throughput grows
   monotonically with capacity.

Shape targets:
- rows identical at every budget, with nonzero spill counters once the
  budget is below the build-side footprint;
- spill slowdown stays graceful (< 10x even at the tightest budget);
- the burst replay is bit-deterministic and never over-commits.
"""

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query
from repro.engine.resources import format_bytes, simulate_admission

CORES = 12

WORKLOADS = (
    ("spatial", lambda: spatial_database(200, 3000, partitions=8, grid_n=32,
                                         seed=7), SPATIAL_SQL),
    ("interval", lambda: interval_database(1500, partitions=8,
                                           num_buckets=200, seed=7),
     INTERVAL_SQL),
    ("text", lambda: text_database(1000, partitions=8, seed=7),
     TEXT_SQL.format(threshold=0.9)),
)

BUDGETS = (None, 64 * 1024, 8 * 1024, 1024, 512)


def run_with_budget(make_db, sql, budget):
    db = make_db()
    if budget is not None:
        db.set_memory_budget(budget)
    return run_query(db, sql, "fudj", cores=(CORES,))


def row_key_set(result):
    return sorted(tuple(sorted(row.items())) for row in result.rows)


class TestSpillOverheadVsBudget:
    """Experiment 1: what does enforced spilling cost as budgets shrink?"""

    def test_sweep(self, report, benchmark):
        from repro.bench.ascii_chart import series_chart

        rows = []
        series = {}
        for name, make_db, sql in WORKLOADS:
            baseline = run_with_budget(make_db, sql, None)
            expected = row_key_set(baseline["result"])
            points = []
            tightest_spilled = False
            for budget in BUDGETS:
                measured = run_with_budget(make_db, sql, budget)
                metrics = measured["result"].metrics
                assert row_key_set(measured["result"]) == expected
                slowdown = measured[f"sim_{CORES}c"] / baseline[f"sim_{CORES}c"]
                assert slowdown < 10.0
                if budget == BUDGETS[-1] and metrics.spill_files > 0:
                    tightest_spilled = True
                points.append(measured[f"sim_{CORES}c"])
                rows.append([
                    name, format_bytes(budget), measured[f"sim_{CORES}c"],
                    f"{slowdown:.2f}x", metrics.spill_files,
                    f"{metrics.spill_bytes / 1024:.0f} KiB",
                    f"{metrics.peak_reserved_bytes / 1024:.0f} KiB",
                ])
            # The tightest budget is far below every build side: the
            # spill path must actually engage.
            assert tightest_spilled, f"{name}: 512b budget never spilled"
            series[name] = points
        table = format_table(
            ["workload", "budget/worker", f"sim s ({CORES} cores)",
             "slowdown", "spill files", "spilled", "peak reserved"],
            rows,
            title="Resource governance 1: spill overhead vs memory budget "
                  "(identical results at every point)",
        )
        chart = series_chart(
            list(range(len(BUDGETS))), series,
            x_label="budget step (0 = unbounded)", y_label="sim s",
            title="shape: graceful degradation as the budget tightens",
        )
        report("resource_spill_overhead", table + "\n\n" + chart)
        benchmark(lambda: run_with_budget(*WORKLOADS[0][1:], BUDGETS[-1]))


class TestAdmissionThroughput:
    """Experiment 2: bounded-FIFO admission under a synthetic burst."""

    #: A seeded burst: 60 queries in 3 waves, sizes cycling through a
    #: fixed pattern — pure arithmetic, so every run sees the same load.
    ARRIVALS = [
        (wave * 0.5 + i * 0.01,
         20_000 + 13_337 * ((wave * 7 + i) % 5),
         0.2 + 0.05 * ((i + wave) % 4))
        for wave in range(3) for i in range(20)
    ]
    CAPACITIES = (50_000, 100_000, 400_000, 1_600_000)

    def test_burst_replay(self, report, benchmark):
        rows = []
        previous_admitted = 0
        for capacity in self.CAPACITIES:
            result = simulate_admission(self.ARRIVALS, capacity,
                                        queue_limit=8, queue_timeout=1.0)
            again = simulate_admission(self.ARRIVALS, capacity,
                                       queue_limit=8, queue_timeout=1.0)
            assert result == again  # bit-deterministic replay
            assert result["peak_reserved_bytes"] <= capacity
            assert result["admitted"] + result["shed"] == len(self.ARRIVALS)
            assert result["admitted"] >= previous_admitted
            previous_admitted = result["admitted"]
            finished = [o["finish"] for o in result["outcomes"]
                        if o["outcome"] == "admitted"]
            makespan = max(finished) - self.ARRIVALS[0][0]
            rows.append([
                format_bytes(capacity), result["admitted"], result["shed"],
                result["timeouts"], result["peak_queue_depth"],
                f"{result['max_queue_seconds']:.2f} s",
                f"{result['admitted'] / makespan:.1f} q/s",
            ])
        # The largest capacity fits every arrival wave outright.
        assert rows[-1][2] == 0
        report("resource_admission_throughput", format_table(
            ["capacity", "admitted", "shed", "timeouts", "peak queue",
             "max wait", "throughput"],
            rows,
            title="Resource governance 2: admission control under a seeded "
                  f"burst of {len(self.ARRIVALS)} queries "
                  "(FIFO, queue_limit=8, queue_timeout=1s)",
        ))
        benchmark(lambda: simulate_admission(
            self.ARRIVALS, self.CAPACITIES[0], queue_limit=8,
            queue_timeout=1.0,
        ))
