"""Ablation studies for the design choices DESIGN.md calls out.

Beyond the paper's own figures, these benches isolate individual design
decisions:

- **Theta plan**: broadcast bucket matching (the paper's §VII-C status
  quo) vs the partitioned theta join it plans as future work.
- **Local join hook**: all-pairs per-tile verification vs the
  ``local_join`` plane-sweep override — does the FUDJ hook close the
  Fig 12c gap to the hand-written advanced operator?
- **Auto bucket tuning**: the SUMMARIZE-statistics grid chooser vs the
  full Fig 11a sweep.
- **Self-join summarize-once** (§VI-C): one summary pass vs two.
- **Hash-join selection** (§VI-C): the default-``match`` fast path vs
  the same join forced onto the theta plan.
"""

import pytest

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query
from repro.joins import (
    AutoTuneSpatialJoin,
    IntervalJoin,
    PartitionedIntervalJoin,
    PlaneSweepSpatialJoin,
    SortMergeIntervalJoin,
    TextSimilarityJoin,
)

CORES = 12


class TestThetaPlanAblation:
    CORE_COUNTS = (12, 48, 96, 144)

    def test_partitioned_theta_restores_scaling(self, report, benchmark):
        rows = []
        curves = {}
        network = {}
        for join_class, label in ((IntervalJoin, "broadcast"),
                                  (PartitionedIntervalJoin, "partitioned"),
                                  (SortMergeIntervalJoin, "sort-merge")):
            curves[label] = {}
            network[label] = {}
            for cores in self.CORE_COUNTS:
                db = interval_database(3000, partitions=cores,
                                       num_buckets=200, seed=1)
                db.drop_join("overlapping_interval")
                db.create_join("overlapping_interval", join_class,
                               defaults=(200,))
                row = run_query(db, INTERVAL_SQL, "fudj", cores=(cores,))
                curves[label][cores] = row[f"sim_{cores}c"]
                network[label][cores] = row["network_bytes"]
                rows.append([label, cores, row[f"sim_{cores}c"],
                             int(row["network_bytes"])])
        report("ablation_theta_plan", format_table(
            ["plan", "cores", "sim s", "network bytes"],
            rows,
            title="Ablation: broadcast theta plan vs partitioned theta join "
                  "(interval, SVIII future work)",
        ))
        # The operator's durable advantage at laptop scale is *traffic*:
        # broadcast replication grows linearly with the cluster while the
        # partitioned plan's routing stays near-constant.  (At the paper's
        # data sizes — an 86M-record broadcast side — that traffic gap is
        # also the time gap; here the broadcast is small enough that range
        # skew in the partitioned plan eats most of the CPU win.)
        assert network["partitioned"][144] < network["broadcast"][144] / 10
        assert (network["partitioned"][144]
                < 2 * network["partitioned"][12])  # near-constant
        assert (network["broadcast"][144]
                > 8 * network["broadcast"][12])  # grows with the cluster
        # CPU-wise it stays competitive at every scale (range partitioning
        # inherits the data's temporal skew — rush-hour granules are hot —
        # so the win is in traffic and scaling trend, not a flat speedup).
        for cores in self.CORE_COUNTS:
            assert curves["partitioned"][cores] <= 1.6 * curves["broadcast"][cores]
        # Sort-merge adds the local-algorithm win on top of partitioning.
        for cores in self.CORE_COUNTS:
            assert curves["sort-merge"][cores] <= curves["partitioned"][cores]
        benchmark(lambda: None)


class TestLocalJoinAblation:
    def test_plane_sweep_hook_closes_the_gap(self, report, benchmark):
        size = 6000
        default_db = spatial_database(size // 10, size, partitions=8,
                                      grid_n=32, seed=2)
        sweep_db = spatial_database(size // 10, size, partitions=8,
                                    grid_n=32, seed=2)
        sweep_db.drop_join("st_contains")
        sweep_db.create_join("st_contains", PlaneSweepSpatialJoin,
                             defaults=(32,))
        advanced_db = spatial_database(size // 10, size, partitions=8,
                                       grid_n=32, seed=2, plane_sweep=True)

        default = run_query(default_db, SPATIAL_SQL, "fudj", cores=(CORES,))
        hooked = run_query(sweep_db, SPATIAL_SQL, "fudj", cores=(CORES,))
        advanced = run_query(advanced_db, SPATIAL_SQL, "builtin",
                             cores=(CORES,))
        assert sorted(map(repr, default["result"].rows)) == sorted(
            map(repr, hooked["result"].rows)
        )
        rows = [
            ["FUDJ default", default[f"sim_{CORES}c"], default["comparisons"]],
            ["FUDJ + local_join sweep", hooked[f"sim_{CORES}c"],
             hooked["comparisons"]],
            ["advanced built-in", advanced[f"sim_{CORES}c"],
             advanced["comparisons"]],
        ]
        report("ablation_local_join", format_table(
            ["implementation", "sim s", "pair tests"],
            rows,
            title="Ablation: the local_join hook vs the hand-written "
                  "plane-sweep operator (spatial)",
        ))
        # The hook must beat the default and land near the advanced
        # operator (closing most of the Fig 12c gap).
        assert hooked[f"sim_{CORES}c"] < default[f"sim_{CORES}c"]
        assert hooked[f"sim_{CORES}c"] < 1.5 * advanced[f"sim_{CORES}c"]
        benchmark(lambda: None)


class TestAutoTuneAblation:
    def test_autotune_near_best_swept_grid(self, report, benchmark):
        times = {}
        rows = []
        for n in (4, 12, 32, 64, 128):
            db = spatial_database(400, 5000, partitions=8, grid_n=n, seed=3)
            row = run_query(db, SPATIAL_SQL, "fudj", cores=(CORES,))
            times[n] = row[f"sim_{CORES}c"]
            rows.append([f"n={n}", row[f"sim_{CORES}c"]])
        auto_db = spatial_database(400, 5000, partitions=8, seed=3)
        auto_db.drop_join("st_contains")
        auto_db.create_join("st_contains", AutoTuneSpatialJoin)
        auto = run_query(auto_db, SPATIAL_SQL, "fudj", cores=(CORES,))
        rows.append(["auto-tuned", auto[f"sim_{CORES}c"]])
        report("ablation_autotune", format_table(
            ["grid", "sim s"],
            rows,
            title="Ablation: SUMMARIZE-statistics grid tuning vs the "
                  "Fig 11a sweep (spatial)",
        ))
        best = min(times.values())
        assert auto[f"sim_{CORES}c"] < 2 * best
        benchmark(lambda: None)


class TestSelfJoinAblation:
    def test_summarize_once_halves_summary_work(self, report, benchmark):
        # A bare self-join triggers summarize-once; loading the same rows
        # into a second dataset defeats the detection, so both sides are
        # summarized.  Compare the summarize-stage work.
        from repro.database import Database
        from repro.datagen import generate_reviews

        rows_data = generate_reviews(1500, seed=4)
        db = Database(num_partitions=8)
        db.create_type("ReviewType", [("id", "int"), ("overall", "int"),
                                      ("review", "text")])
        db.create_dataset("AmazonReview", "ReviewType", "id")
        db.load("AmazonReview", rows_data)
        db.create_dataset("ReviewClone", "ReviewType", "id")
        db.load("ReviewClone", rows_data)
        db.create_join("similarity_jaccard", TextSimilarityJoin)

        self_sql = ("SELECT COUNT(1) AS c FROM AmazonReview r1, AmazonReview r2 "
                    "WHERE similarity_jaccard(r1.review, r2.review) >= 0.9")
        two_sql = ("SELECT COUNT(1) AS c FROM AmazonReview r1, ReviewClone r2 "
                   "WHERE similarity_jaccard(r1.review, r2.review) >= 0.9")
        self_run = db.execute(self_sql, mode="fudj", measure_bytes=False)
        two_run = db.execute(two_sql, mode="fudj", measure_bytes=False)
        assert self_run.rows == two_run.rows

        def summarize_units(metrics):
            return sum(s.total_units() for s in metrics.stages
                       if "summarize" in s.name)

        once = summarize_units(self_run.metrics)
        twice = summarize_units(two_run.metrics)
        report("ablation_self_join", format_table(
            ["plan", "summarize work units"],
            [["summarize once (self-join)", once],
             ["summarize both sides", twice]],
            title="Ablation: the SVI-C self-join summarize-once optimization "
                  "(text self-join, 1500 reviews)",
        ))
        assert once < 0.7 * twice
        benchmark(lambda: None)


class ForcedThetaTextJoin(TextSimilarityJoin):
    """Identical semantics, but ``match`` is *overridden* (even though it
    is still equality) — the optimizer can no longer prove single-join,
    so the broadcast theta plan runs.  This isolates the value of the
    hash-join selection rule in SVI-C."""

    name = "text-forced-theta"

    def match(self, bucket_id1, bucket_id2):
        return bucket_id1 == bucket_id2


class TestHashJoinSelectionAblation:
    def test_default_match_enables_hash_plan(self, report, benchmark):
        sql = ("SELECT COUNT(1) AS c FROM AmazonReview r1, AmazonReview r2 "
               "WHERE r1.overall = 5 AND r2.overall = 4 AND "
               "similarity_jaccard(r1.review, r2.review) >= 0.9")
        hash_db = text_database(2000, partitions=8, seed=5)
        theta_db = text_database(2000, partitions=8, seed=5)
        theta_db.drop_join("similarity_jaccard")
        theta_db.create_join("similarity_jaccard", ForcedThetaTextJoin)

        hash_run = run_query(hash_db, sql, "fudj", cores=(CORES,))
        theta_run = run_query(theta_db, sql, "fudj", cores=(CORES,))
        assert hash_run["result"].rows == theta_run["result"].rows
        report("ablation_hash_selection", format_table(
            ["plan", "sim s", "network bytes"],
            [["hash join (default match)", hash_run[f"sim_{CORES}c"],
              int(hash_run["network_bytes"])],
             ["theta fallback (match overridden)", theta_run[f"sim_{CORES}c"],
              int(theta_run["network_bytes"])]],
            title="Ablation: SVI-C hash-join selection for default-match "
                  "FUDJs (text, t=0.9)",
        ))
        assert hash_run[f"sim_{CORES}c"] < theta_run[f"sim_{CORES}c"] / 2
        benchmark(lambda: None)


class TestSampledSummarizeAblation:
    def test_sampling_cuts_summarize_cost_not_results(self, report, benchmark):
        db = spatial_database(600, 6000, partitions=8, grid_n=32, seed=6)
        rows = []
        baseline_rows = None
        baseline_units = None
        for fraction in (1.0, 0.5, 0.1, 0.02):
            result = db.execute(SPATIAL_SQL, mode="fudj",
                                summarize_sample=fraction)
            units = sum(stage.total_units() for stage in result.metrics.stages
                        if "summarize" in stage.name)
            if baseline_rows is None:
                baseline_rows = sorted(map(repr, result.rows))
                baseline_units = units
            else:
                assert sorted(map(repr, result.rows)) == baseline_rows
            rows.append([fraction, units,
                         result.metrics.simulated_seconds(CORES)])
        report("ablation_sampled_summarize", format_table(
            ["sample fraction", "summarize units", "total sim s"],
            rows,
            title="Ablation: sampled SUMMARIZE (statistics cost knob) - "
                  "identical answers, proportionally cheaper summaries",
        ))
        sampled_units = rows[-1][1]
        assert sampled_units < 0.1 * baseline_units
        benchmark(lambda: None)
