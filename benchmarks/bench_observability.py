"""Observability overhead + the Figure 9 phase breakdown from traces.

Two experiments over the Figure 9 workloads:

1. *Tracing overhead* — the tracer never charges work to the cost
   model, so the simulated makespan must be **identical** with tracing
   on and off (target: <= 5% of the trace-off makespan; achieved: 0%).
   The real-wall overhead of recording spans is reported alongside.
2. *Phase breakdown* — a traced run of each workload reproduces the
   paper's Fig 9-style split: how much of the FUDJ join's work lands in
   SUMMARIZE vs PARTITION vs COMBINE, and inside them, how much is user
   callbacks (``verify``, ``assign``, ...) vs engine shuffle.

Shape targets:
- simulated makespan with tracing on == makespan with tracing off, on
  every workload (the <= 5% acceptance bound with margin to spare);
- the traced span tree's units sum exactly to the metrics' total CPU
  units (no double counting);
- COMBINE dominates on every workload (verification is the expensive
  phase, as in the paper).
"""

import time

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)

CORES = 12

WORKLOADS = (
    ("spatial", lambda: spatial_database(400, 6000, partitions=8, grid_n=32,
                                         seed=7), SPATIAL_SQL),
    ("interval", lambda: interval_database(3000, partitions=8, num_buckets=200,
                                           seed=7), INTERVAL_SQL),
    ("text", lambda: text_database(2000, partitions=8, seed=7),
     TEXT_SQL.format(threshold=0.9)),
)


def timed_run(make_db, sql, trace):
    db = make_db()
    started = time.perf_counter()
    result = db.execute(sql, mode="fudj", measure_bytes=False, trace=trace)
    wall = time.perf_counter() - started
    return result, wall


class TestTracingOverhead:
    """Experiment 1: tracing must not move the simulated makespan."""

    def test_makespan_unchanged_with_tracing(self, report, benchmark):
        rows = []
        for name, make_db, sql in WORKLOADS:
            plain, wall_off = timed_run(make_db, sql, trace=False)
            traced, wall_on = timed_run(make_db, sql, trace=True)
            assert plain.trace is None and traced.trace is not None
            assert traced.rows == plain.rows
            sim_off = plain.metrics.simulated_seconds(CORES)
            sim_on = traced.metrics.simulated_seconds(CORES)
            overhead = sim_on / sim_off - 1.0
            # The acceptance bound is 5%; the design point is exactly 0:
            # spans mirror charges, they never add any.
            assert abs(overhead) <= 0.05
            assert sim_on == sim_off
            rows.append([
                name, f"{sim_off:.4f}", f"{sim_on:.4f}",
                f"{overhead * 100:.2f}%",
                f"{wall_off * 1000:.0f}", f"{wall_on * 1000:.0f}",
                f"{(wall_on / wall_off - 1) * 100:+.0f}%",
            ])
        report("observability_overhead", format_table(
            ["workload", f"sim s off ({CORES}c)", f"sim s on ({CORES}c)",
             "sim overhead", "wall ms off", "wall ms on", "wall overhead"],
            rows,
            title="Observability 1: tracing overhead (simulated makespan "
                  "must not move; wall overhead is the recording cost)",
        ))
        benchmark(lambda: timed_run(*WORKLOADS[0][1:], trace=False))


class TestPhaseBreakdown:
    """Experiment 2: the Fig 9-style SUMMARIZE/PARTITION/COMBINE split."""

    def test_phase_breakdown(self, report, benchmark):
        rows = []
        for name, make_db, sql in WORKLOADS:
            result, _ = timed_run(make_db, sql, trace=True)
            trace = result.trace
            # The whole tree accounts for every charged unit, exactly.
            assert abs(trace.total_units()
                       - result.metrics.total_cpu_units()) < 1e-6
            fudj = next(s for s in trace.walk()
                        if s.name.startswith("fudj-join"))
            # The join subtree also contains its input operators (the
            # scans/projects feeding it); the phase split covers what is
            # left — the join's own work.
            inputs = sum(c.total_units() for c in fudj.children
                         if c.kind == "operator")
            total = fudj.total_units() - inputs
            phases = {c.name: c.total_units() for c in fudj.children
                      if c.kind == "phase"}
            assert set(phases) == {"SUMMARIZE", "PARTITION", "COMBINE"}
            # The three phases plus the operator's own residue must add
            # up to the join's work — nothing leaks, nothing is counted
            # twice.
            assert abs(sum(phases.values()) + fudj.units - total) < 1e-6
            callbacks = sum(s.total_units() for s in fudj.walk()
                            if s.kind == "callback")
            exchanges = sum(s.total_units() for s in fudj.walk()
                            if s.kind == "exchange")
            assert phases["COMBINE"] >= max(phases["SUMMARIZE"],
                                            phases["PARTITION"])
            rows.append([
                name, f"{total:.0f}",
                f"{phases['SUMMARIZE'] / total:.1%}",
                f"{phases['PARTITION'] / total:.1%}",
                f"{phases['COMBINE'] / total:.1%}",
                f"{callbacks / total:.1%}",
                f"{exchanges / total:.1%}",
            ])
        report("observability_phase_breakdown", format_table(
            ["workload", "join units", "SUMMARIZE", "PARTITION", "COMBINE",
             "user callbacks", "exchanges"],
            rows,
            title="Observability 2: Fig 9-style phase breakdown of the "
                  "FUDJ join (share of charged units)",
        ))
        benchmark(lambda: timed_run(*WORKLOADS[0][1:], trace=True))


def main(argv=None) -> int:
    """Standalone run: execute the three workloads into one shared
    telemetry hub and optionally write its snapshot.

    ``--metrics-out <path>`` picks the format by extension
    (``.prom``/``.txt`` -> Prometheus text exposition, else canonical
    JSON).  CI runs this and uploads the snapshot as a build artifact,
    so a regression in the metrics surface shows up as an artifact diff.
    """
    import sys

    from repro.engine.telemetry import Telemetry

    args = list(sys.argv[1:] if argv is None else argv)
    out = None
    if "--metrics-out" in args:
        at = args.index("--metrics-out")
        if at + 1 >= len(args):
            print("--metrics-out needs a path", file=sys.stderr)
            return 1
        out = args[at + 1]
    hub = Telemetry()
    for name, make_db, sql in WORKLOADS:
        db = make_db()
        # All three databases record into one hub so the snapshot covers
        # the whole run (sys.* tables keep pointing at each db's own
        # telemetry; only recording is redirected).
        db.telemetry = hub
        result = db.execute(sql, mode="fudj", measure_bytes=False,
                            trace=True)
        print(f"{name}: {len(result.rows)} rows, "
              f"{result.metrics.total_cpu_units():.0f} units, "
              f"{result.metrics.simulated_seconds(CORES) * 1000:.2f} "
              f"simulated ms on {CORES} cores")
    if out is not None:
        fmt = ("prometheus" if out.endswith((".prom", ".txt")) else "json")
        with open(out, "w") as handle:
            handle.write(hub.snapshot(fmt))
        print(f"metrics snapshot ({fmt}) written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
