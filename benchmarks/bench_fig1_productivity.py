"""Figure 1 reproduction: the productivity/performance positioning chart.

Figure 1 is conceptual in the paper — it places the four implementation
approaches on a productivity-vs-performance plane.  Here both axes are
*measured*: productivity as 1/LOC (Table II data; the on-top approach is
just the scalar predicate, a handful of lines), performance as 1/runtime
of the spatial experiment query (Fig 9 data).

Shape targets (the paper's quadrant story):
- on-top: highest productivity, worst performance;
- built-in: best performance, worst productivity;
- FUDJ: near built-in performance at near on-top productivity.
"""

from repro.bench import SPATIAL_SQL, format_table, spatial_database, table2_loc
from repro.bench.harness import run_query

#: LOC of the on-top "implementation": the ST_Contains scalar predicate
#: registration — effectively free, the function already exists.
ONTOP_LOC = 5


def test_fig1_productivity_performance(report, benchmark):
    loc = {row["join"]: row for row in table2_loc()}
    spatial_loc = {
        "ontop": ONTOP_LOC,
        "fudj": loc["Spatial"]["fudj_loc"],
        "builtin": loc["Spatial"]["builtin_loc"],
    }
    db = spatial_database(400, 4000, partitions=8, grid_n=32, seed=16)
    runtimes = {
        mode: run_query(db, SPATIAL_SQL, mode, cores=(12,))["sim_12c"]
        for mode in ("ontop", "fudj", "builtin")
    }
    rows = [
        [mode, spatial_loc[mode], runtimes[mode],
         f"{1.0 / spatial_loc[mode]:.4f}", f"{1.0 / runtimes[mode]:.1f}"]
        for mode in ("ontop", "fudj", "builtin")
    ]
    report("fig1_productivity", format_table(
        ["approach", "LOC", "runtime s", "productivity (1/LOC)",
         "performance (1/s)"],
        rows,
        title="Figure 1 (reproduced, measured): productivity vs performance "
              "of the implementation approaches (spatial join)",
    ))

    # SVII-A deployment cost: installing a new FUDJ is a metadata
    # operation plus one import — milliseconds, online, no rebuild.  (The
    # paper measures ~5 minutes to rebuild + redeploy AsterixDB for a
    # built-in operator; no honest offline analogue exists, so only the
    # FUDJ side is measured here.)
    import time

    from repro.joins import NumericBandJoin

    started = time.perf_counter()
    db.create_join("fresh_join", NumericBandJoin, defaults=(1.0, 32))
    install_seconds = time.perf_counter() - started
    report("fig1_deployment", format_table(
        ["step", "seconds"],
        [["CREATE JOIN (FUDJ, online)", install_seconds],
         ["rebuild + redeploy (built-in, paper)", "~300 (not reproducible)"]],
        title="SVII-A (reproduced, FUDJ side): deployment cost of a new join",
    ))
    assert install_seconds < 1.0

    # On-top: most productive, slowest.
    assert spatial_loc["ontop"] < spatial_loc["fudj"] < spatial_loc["builtin"]
    assert runtimes["ontop"] > runtimes["fudj"] >= runtimes["builtin"] * 0.8
    # FUDJ's claim: close to built-in performance...
    assert runtimes["fudj"] < 3 * runtimes["builtin"]
    # ...at an order of magnitude less code than built-in.
    assert spatial_loc["builtin"] > 1.8 * spatial_loc["fudj"]
    benchmark(lambda: None)
