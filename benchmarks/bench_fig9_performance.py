"""Figure 9 reproduction: FUDJ vs Built-in vs On-top across data sizes.

Three subplots in the paper — spatial (n=1200), interval (n=1000), and
text similarity (t=0.9) — each sweeping the record count and reporting
query time per implementation method.  On-top rows beyond the cutoff are
skipped and flagged, reproducing the paper's 4000-second timeout rule
("the setup is not scalable for processing the query").

Shape targets:
- on-top is one to three orders of magnitude slower and hits the cutoff
  first;
- FUDJ tracks built-in with a small overhead (the translation layer).

Run directly, this file is also the CI performance gate::

    python benchmarks/bench_fig9_performance.py --check-baseline

re-measures the Fig 9 workloads in row *and* batch execution and fails
if charged cpu units drift more than 2% from the checked-in
``benchmarks/results/baseline_units.json``, if batch mode loses row
parity, or if batch mode amortizes fewer than 3 rows per operator
invocation relative to row mode.  ``--write-baseline`` refreshes the
baseline after an intentional cost-model change.
"""

import json
import os
import sys
import time

import pytest

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query

CORES = 12
#: Sizes past which the on-top NLJ is declared non-scalable (the paper's
#: timeout analogue, scaled to laptop wall-clock).
ONTOP_CUTOFF = {"spatial": 6000, "interval": 2000, "text": 1500}


def sweep(name, make_db, sql, sizes, report):
    from repro.bench.ascii_chart import series_chart

    rows = []
    checks = {}
    for size in sizes:
        db = make_db(size)
        per_mode = {}
        for mode in ("fudj", "builtin", "ontop"):
            if mode == "ontop" and size > ONTOP_CUTOFF[name]:
                rows.append([size, mode, "(not scalable)", "-", "-"])
                continue
            row = run_query(db, sql, mode, cores=(CORES,))
            per_mode[mode] = row
            rows.append([
                size, mode, row[f"sim_{CORES}c"], row["comparisons"],
                row["result_rows"],
            ])
        checks[size] = per_mode
    table = format_table(
        ["records", "mode", f"sim s ({CORES} cores)", "predicate evals", "rows"],
        rows,
        title=f"Figure 9{dict(spatial='a', interval='b', text='c')[name]} "
              f"(reproduced): {name} join performance vs data size",
    )
    series = {
        mode: [checks[size].get(mode, {}).get(f"sim_{CORES}c") for size in sizes]
        for mode in ("fudj", "builtin", "ontop")
    }
    chart = series_chart(
        sizes, series, log_y=True, x_label="records", y_label="sim s",
        title="shape: on-top diverges, FUDJ tracks built-in",
    )
    report(f"fig9_{name}", table + "\n\n" + chart)
    return checks


class TestFig9Spatial:
    def test_sweep(self, report, benchmark):
        def make_db(size):
            return spatial_database(max(40, size // 12), size, partitions=8,
                                    grid_n=32, seed=size)

        checks = sweep("spatial", make_db, SPATIAL_SQL,
                       [1000, 3000, 6000, 12000], report)
        for size, per_mode in checks.items():
            if "ontop" in per_mode:
                assert (per_mode["ontop"][f"sim_{CORES}c"]
                        > 5 * per_mode["fudj"][f"sim_{CORES}c"])
            # FUDJ within 3x of built-in (paper: nearly identical).
            assert (per_mode["fudj"][f"sim_{CORES}c"]
                    < 3 * per_mode["builtin"][f"sim_{CORES}c"])
        benchmark(lambda: run_query(
            spatial_database(250, 3000, partitions=8, grid_n=32, seed=3000),
            SPATIAL_SQL, "fudj", cores=(CORES,),
        ))


class TestFig9Interval:
    def test_sweep(self, report, benchmark):
        def make_db(size):
            return interval_database(size, partitions=8, num_buckets=200,
                                     seed=size)

        checks = sweep("interval", make_db, INTERVAL_SQL,
                       [500, 1000, 2000, 4000], report)
        for size, per_mode in checks.items():
            if "ontop" in per_mode:
                assert (per_mode["ontop"]["comparisons"]
                        > 3 * per_mode["fudj"]["comparisons"])
        benchmark(lambda: run_query(
            interval_database(1000, partitions=8, num_buckets=200, seed=1000),
            INTERVAL_SQL, "fudj", cores=(CORES,),
        ))


class TestFig9Text:
    def test_sweep(self, report, benchmark):
        sql = TEXT_SQL.format(threshold=0.9)

        def make_db(size):
            return text_database(size, partitions=8, seed=size)

        checks = sweep("text", make_db, sql, [400, 800, 1500, 3000], report)
        for size, per_mode in checks.items():
            if "ontop" in per_mode:
                assert (per_mode["ontop"][f"sim_{CORES}c"]
                        > 2 * per_mode["fudj"][f"sim_{CORES}c"])
        benchmark(lambda: run_query(
            text_database(800, partitions=8, seed=800), sql, "fudj",
            cores=(CORES,),
        ))


class TestFig9Overhead:
    """The §VII-B overhead analysis: FUDJ-minus-built-in per record."""

    def test_translation_overhead_per_record(self, report, benchmark):
        rows = []
        for name, db, sql in (
            ("spatial", spatial_database(250, 3000, partitions=8, grid_n=32),
             SPATIAL_SQL),
            ("interval", interval_database(1500, partitions=8, num_buckets=200),
             INTERVAL_SQL),
            ("text", text_database(1200, partitions=8),
             TEXT_SQL.format(threshold=0.9)),
        ):
            fudj = run_query(db, sql, "fudj", cores=(CORES,))
            builtin = run_query(db, sql, "builtin", cores=(CORES,))
            records = len(list(db.cluster.dataset(db.catalog.dataset_names()[0])
                               .scan())) or 1
            delta = fudj[f"sim_{CORES}c"] - builtin[f"sim_{CORES}c"]
            rows.append([
                name,
                fudj[f"sim_{CORES}c"],
                builtin[f"sim_{CORES}c"],
                f"{max(0.0, delta) * 1000:.3f} ms total",
                fudj["result"].metrics.translation_conversions,
            ])
        report("fig9_overhead", format_table(
            ["join", "FUDJ sim s", "Built-in sim s", "overhead",
             "boundary conversions"],
            rows,
            title="SVII-B (reproduced): FUDJ framework overhead vs built-in",
        ))
        benchmark(lambda: None)


# -- CI performance gate --------------------------------------------------------
#
# ``--check-baseline`` re-measures the Fig 9 workloads (at test sizes,
# so the gate runs in seconds) in both execution granularities and
# compares against the checked-in baseline.

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results",
    "baseline_units.json",
)
#: Allowed relative drift in charged cpu units before the gate fails.
UNITS_TOLERANCE = 0.02
#: Batch mode must amortize at least this many rows per operator
#: invocation relative to row mode (the tentpole's headline win).
MIN_AMORTIZATION = 3.0

GATE_WORKLOADS = (
    ("spatial", lambda: spatial_database(25, 120), SPATIAL_SQL),
    ("interval", lambda: interval_database(120), INTERVAL_SQL),
    ("text", lambda: text_database(80), TEXT_SQL.format(threshold=0.9)),
)


def _measure_workload(name, make_db, sql) -> dict:
    """Row vs batch measurement of one workload: charged units, operator
    invocations, batch counts, and a row-parity fingerprint."""
    out = {"name": name}
    rows_by_mode = {}
    for execution in ("row", "batch"):
        db = make_db()
        db.set_execution(execution)
        result = db.execute(sql, mode="fudj")
        metrics = result.metrics.to_dict(CORES)
        rows_by_mode[execution] = sorted(
            tuple(sorted(row.items())) for row in result.rows
        )
        out[execution] = {
            "cpu_units": metrics["cpu_units"],
            "network_bytes": metrics["network_bytes"],
            "operator_invocations": metrics["operator_invocations"],
            "batches": metrics["batches"],
            "result_rows": len(result.rows),
            "sim_seconds": metrics["simulated_seconds"],
        }
    out["rows_match"] = rows_by_mode["row"] == rows_by_mode["batch"]
    out["amortization"] = (
        out["row"]["operator_invocations"]
        / max(1, out["batch"]["operator_invocations"])
    )
    out["units_per_invocation"] = {
        execution: out[execution]["cpu_units"]
        / max(1, out[execution]["operator_invocations"])
        for execution in ("row", "batch")
    }
    return out


def measure_gate() -> dict:
    return {
        "format": "fudj-baseline-units",
        "version": 1,
        "cores": CORES,
        "workloads": [
            _measure_workload(name, make_db, sql)
            for name, make_db, sql in GATE_WORKLOADS
        ],
    }


def check_baseline(measured: dict, baseline: dict) -> list:
    """Gate failures (empty = pass): unit drift beyond tolerance, lost
    row parity, or amortization below the floor."""
    failures = []
    base_by_name = {w["name"]: w for w in baseline.get("workloads", ())}
    for workload in measured["workloads"]:
        name = workload["name"]
        if not workload["rows_match"]:
            failures.append(f"{name}: batch rows differ from row rows")
        if workload["amortization"] < MIN_AMORTIZATION:
            failures.append(
                f"{name}: batch amortization {workload['amortization']:.2f}x "
                f"< required {MIN_AMORTIZATION:.0f}x"
            )
        base = base_by_name.get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline")
            continue
        for execution in ("row", "batch"):
            measured_units = workload[execution]["cpu_units"]
            base_units = base[execution]["cpu_units"]
            drift = (measured_units - base_units) / max(1e-9, base_units)
            if drift > UNITS_TOLERANCE:
                failures.append(
                    f"{name}/{execution}: cpu units regressed "
                    f"{drift * 100:.2f}% ({base_units:.1f} -> "
                    f"{measured_units:.1f}, tolerance "
                    f"{UNITS_TOLERANCE * 100:.0f}%)"
                )
    return failures


def main(argv=None) -> int:
    # Shuffle routing hashes value tuples; str hashes vary per process
    # unless pinned, so the gate re-execs itself with a fixed seed to
    # make network/unit totals reproducible across runs and machines.
    if os.environ.get("PYTHONHASHSEED") != "0":
        env = dict(os.environ, PYTHONHASHSEED="0")
        os.execve(sys.executable, [sys.executable] + sys.argv, env)
    argv = list(sys.argv[1:] if argv is None else argv)
    import argparse

    parser = argparse.ArgumentParser(
        description="Fig 9 row-vs-batch performance gate")
    parser.add_argument("--check-baseline", action="store_true",
                        help="fail on unit drift >2%%, lost parity, or "
                             "batch amortization below 3x")
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"refresh {BASELINE_PATH}")
    parser.add_argument("--out", help="write the measured JSON here")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    measured = measure_gate()
    gate_wall = time.perf_counter() - started
    from repro.bench import trajectory

    trajectory.record(
        "fig9_performance",
        units=sum(w[e]["cpu_units"] for w in measured["workloads"]
                  for e in ("row", "batch")),
        wall_seconds=gate_wall,
        rows=sum(w[e]["result_rows"] for w in measured["workloads"]
                 for e in ("row", "batch")),
        detail={
            "row_units": sum(w["row"]["cpu_units"]
                             for w in measured["workloads"]),
            "batch_units": sum(w["batch"]["cpu_units"]
                               for w in measured["workloads"]),
            "amortization": {w["name"]: round(w["amortization"], 3)
                             for w in measured["workloads"]},
        },
    )
    for workload in measured["workloads"]:
        print(
            f"{workload['name']}: row {workload['row']['cpu_units']:.1f} "
            f"units / {workload['row']['operator_invocations']} invocations, "
            f"batch {workload['batch']['cpu_units']:.1f} units / "
            f"{workload['batch']['operator_invocations']} invocations "
            f"({workload['batch']['batches']} batches, "
            f"{workload['amortization']:.1f}x amortization, rows "
            f"{'match' if workload['rows_match'] else 'DIFFER'})"
        )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.write_baseline:
        with open(BASELINE_PATH, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.check_baseline:
        try:
            with open(BASELINE_PATH) as handle:
                baseline = json.load(handle)
        except OSError as exc:
            print(f"cannot read baseline: {exc}", file=sys.stderr)
            return 1
        failures = check_baseline(measured, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("baseline check passed: units within "
              f"{UNITS_TOLERANCE * 100:.0f}%, amortization >= "
              f"{MIN_AMORTIZATION:.0f}x, rows identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
