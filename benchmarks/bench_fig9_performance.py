"""Figure 9 reproduction: FUDJ vs Built-in vs On-top across data sizes.

Three subplots in the paper — spatial (n=1200), interval (n=1000), and
text similarity (t=0.9) — each sweeping the record count and reporting
query time per implementation method.  On-top rows beyond the cutoff are
skipped and flagged, reproducing the paper's 4000-second timeout rule
("the setup is not scalable for processing the query").

Shape targets:
- on-top is one to three orders of magnitude slower and hits the cutoff
  first;
- FUDJ tracks built-in with a small overhead (the translation layer).
"""

import pytest

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query

CORES = 12
#: Sizes past which the on-top NLJ is declared non-scalable (the paper's
#: timeout analogue, scaled to laptop wall-clock).
ONTOP_CUTOFF = {"spatial": 6000, "interval": 2000, "text": 1500}


def sweep(name, make_db, sql, sizes, report):
    from repro.bench.ascii_chart import series_chart

    rows = []
    checks = {}
    for size in sizes:
        db = make_db(size)
        per_mode = {}
        for mode in ("fudj", "builtin", "ontop"):
            if mode == "ontop" and size > ONTOP_CUTOFF[name]:
                rows.append([size, mode, "(not scalable)", "-", "-"])
                continue
            row = run_query(db, sql, mode, cores=(CORES,))
            per_mode[mode] = row
            rows.append([
                size, mode, row[f"sim_{CORES}c"], row["comparisons"],
                row["result_rows"],
            ])
        checks[size] = per_mode
    table = format_table(
        ["records", "mode", f"sim s ({CORES} cores)", "predicate evals", "rows"],
        rows,
        title=f"Figure 9{dict(spatial='a', interval='b', text='c')[name]} "
              f"(reproduced): {name} join performance vs data size",
    )
    series = {
        mode: [checks[size].get(mode, {}).get(f"sim_{CORES}c") for size in sizes]
        for mode in ("fudj", "builtin", "ontop")
    }
    chart = series_chart(
        sizes, series, log_y=True, x_label="records", y_label="sim s",
        title="shape: on-top diverges, FUDJ tracks built-in",
    )
    report(f"fig9_{name}", table + "\n\n" + chart)
    return checks


class TestFig9Spatial:
    def test_sweep(self, report, benchmark):
        def make_db(size):
            return spatial_database(max(40, size // 12), size, partitions=8,
                                    grid_n=32, seed=size)

        checks = sweep("spatial", make_db, SPATIAL_SQL,
                       [1000, 3000, 6000, 12000], report)
        for size, per_mode in checks.items():
            if "ontop" in per_mode:
                assert (per_mode["ontop"][f"sim_{CORES}c"]
                        > 5 * per_mode["fudj"][f"sim_{CORES}c"])
            # FUDJ within 3x of built-in (paper: nearly identical).
            assert (per_mode["fudj"][f"sim_{CORES}c"]
                    < 3 * per_mode["builtin"][f"sim_{CORES}c"])
        benchmark(lambda: run_query(
            spatial_database(250, 3000, partitions=8, grid_n=32, seed=3000),
            SPATIAL_SQL, "fudj", cores=(CORES,),
        ))


class TestFig9Interval:
    def test_sweep(self, report, benchmark):
        def make_db(size):
            return interval_database(size, partitions=8, num_buckets=200,
                                     seed=size)

        checks = sweep("interval", make_db, INTERVAL_SQL,
                       [500, 1000, 2000, 4000], report)
        for size, per_mode in checks.items():
            if "ontop" in per_mode:
                assert (per_mode["ontop"]["comparisons"]
                        > 3 * per_mode["fudj"]["comparisons"])
        benchmark(lambda: run_query(
            interval_database(1000, partitions=8, num_buckets=200, seed=1000),
            INTERVAL_SQL, "fudj", cores=(CORES,),
        ))


class TestFig9Text:
    def test_sweep(self, report, benchmark):
        sql = TEXT_SQL.format(threshold=0.9)

        def make_db(size):
            return text_database(size, partitions=8, seed=size)

        checks = sweep("text", make_db, sql, [400, 800, 1500, 3000], report)
        for size, per_mode in checks.items():
            if "ontop" in per_mode:
                assert (per_mode["ontop"][f"sim_{CORES}c"]
                        > 2 * per_mode["fudj"][f"sim_{CORES}c"])
        benchmark(lambda: run_query(
            text_database(800, partitions=8, seed=800), sql, "fudj",
            cores=(CORES,),
        ))


class TestFig9Overhead:
    """The §VII-B overhead analysis: FUDJ-minus-built-in per record."""

    def test_translation_overhead_per_record(self, report, benchmark):
        rows = []
        for name, db, sql in (
            ("spatial", spatial_database(250, 3000, partitions=8, grid_n=32),
             SPATIAL_SQL),
            ("interval", interval_database(1500, partitions=8, num_buckets=200),
             INTERVAL_SQL),
            ("text", text_database(1200, partitions=8),
             TEXT_SQL.format(threshold=0.9)),
        ):
            fudj = run_query(db, sql, "fudj", cores=(CORES,))
            builtin = run_query(db, sql, "builtin", cores=(CORES,))
            records = len(list(db.cluster.dataset(db.catalog.dataset_names()[0])
                               .scan())) or 1
            delta = fudj[f"sim_{CORES}c"] - builtin[f"sim_{CORES}c"]
            rows.append([
                name,
                fudj[f"sim_{CORES}c"],
                builtin[f"sim_{CORES}c"],
                f"{max(0.0, delta) * 1000:.3f} ms total",
                fudj["result"].metrics.translation_conversions,
            ])
        report("fig9_overhead", format_table(
            ["join", "FUDJ sim s", "Built-in sim s", "overhead",
             "boundary conversions"],
            rows,
            title="SVII-B (reproduced): FUDJ framework overhead vs built-in",
        ))
        benchmark(lambda: None)
