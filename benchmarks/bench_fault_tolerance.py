"""Fault-tolerance ablation: checkpoint overhead, fault-rate sweep, policies.

Three experiments over the Figure 9 workloads:

1. *Checkpoint overhead* — with a fault plan active but every rate at
   zero, the only cost is spooling exchange outputs.  Target: <= 5% of
   the fault-free simulated makespan.
2. *Makespan vs fault rate* — crashes + stragglers + transient exchange
   failures at increasing rates.  Recovery replays single tasks from the
   exchange checkpoints, so makespan should degrade gracefully (not
   multiply) while results stay byte-identical.
3. *Degraded-mode policies* — a poison FUDJ callback under ``fail`` /
   ``skip`` / ``quarantine``: fail aborts, skip and quarantine complete
   with the poison records dropped and (for quarantine) reported.

Shape targets:
- checkpoint-only overhead <= 5% on every workload;
- rows identical at every fault rate, with monotonically nonzero
  retry counters once rates are nonzero;
- quarantine keeps a per-phase error report, skip does not.
"""

import pytest

from repro import FaultPlan
from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query
from repro.errors import FudjCallbackError

CORES = 12

WORKLOADS = (
    ("spatial", lambda: spatial_database(400, 6000, partitions=8, grid_n=32,
                                         seed=7), SPATIAL_SQL),
    ("interval", lambda: interval_database(3000, partitions=8, num_buckets=200,
                                           seed=7), INTERVAL_SQL),
    ("text", lambda: text_database(2000, partitions=8, seed=7),
     TEXT_SQL.format(threshold=0.9)),
)


def run_with_plan(make_db, sql, plan):
    db = make_db()
    db.fault_plan = plan
    return run_query(db, sql, "fudj", cores=(CORES,))


def row_key_set(result):
    return sorted(tuple(sorted(row.items())) for row in result.rows)


class TestCheckpointOverhead:
    """Experiment 1: what does write-behind checkpointing cost alone?"""

    def test_overhead_within_five_percent(self, report, benchmark):
        rows = []
        for name, make_db, sql in WORKLOADS:
            clean = run_with_plan(make_db, sql, None)
            ckpt = run_with_plan(make_db, sql, FaultPlan(seed=1))
            metrics = ckpt["result"].metrics
            assert metrics.tasks_retried == 0  # rates are zero
            overhead = ckpt[f"sim_{CORES}c"] / clean[f"sim_{CORES}c"] - 1.0
            rows.append([
                name, clean[f"sim_{CORES}c"], ckpt[f"sim_{CORES}c"],
                f"{overhead * 100:.2f}%",
                f"{metrics.checkpoint_bytes / 1024:.0f} KiB",
            ])
            assert 0.0 <= overhead <= 0.05
        report("fault_checkpoint_overhead", format_table(
            ["workload", "no ckpt sim s", "ckpt sim s", "overhead",
             "spooled"],
            rows,
            title="Fault tolerance ablation 1: checkpointing overhead "
                  "at 0% fault rates",
        ))
        benchmark(lambda: run_with_plan(*WORKLOADS[0][1:], FaultPlan(seed=1)))


class TestMakespanVsFaultRate:
    """Experiment 2: graceful degradation as fault rates climb."""

    RATES = (0.0, 0.05, 0.1, 0.2)
    #: The default 50 ms backoff is sized for real clusters; these bench
    #: queries finish in ~20 ms of simulated time, so waiting would
    #: drown the signal.  Scale the backoff to the workload, as an
    #: operator tuning retry policy for short interactive queries would.
    BACKOFF = dict(backoff_base_seconds=0.001, backoff_cap_seconds=0.01)

    def test_sweep(self, report, benchmark):
        from repro.bench.ascii_chart import series_chart

        rows = []
        series = {}
        for name, make_db, sql in WORKLOADS:
            baseline = run_with_plan(make_db, sql, None)
            expected = row_key_set(baseline["result"])
            points = []
            for rate in self.RATES:
                plan = FaultPlan(seed=13, crash_rate=rate,
                                 straggler_rate=rate,
                                 exchange_failure_rate=rate, **self.BACKOFF)
                measured = run_with_plan(make_db, sql, plan)
                metrics = measured["result"].metrics
                assert row_key_set(measured["result"]) == expected
                if rate > 0.0:
                    assert (metrics.tasks_retried + metrics.exchange_retries
                            + metrics.stragglers_detected) > 0
                    assert metrics.recovery_seconds > 0.0
                slowdown = measured[f"sim_{CORES}c"] / baseline[f"sim_{CORES}c"]
                points.append(measured[f"sim_{CORES}c"])
                rows.append([
                    name, f"{rate:.0%}", measured[f"sim_{CORES}c"],
                    f"{slowdown:.2f}x", metrics.tasks_retried,
                    metrics.exchange_retries, metrics.stragglers_detected,
                    f"{metrics.recovery_seconds * 1000:.1f} ms",
                ])
                # Recovery replays tasks, not the whole plan: even at 20%
                # rates the makespan must stay within one order of
                # magnitude of fault-free.
                assert slowdown < 10.0
            series[name] = points
        table = format_table(
            ["workload", "fault rate", f"sim s ({CORES} cores)", "slowdown",
             "task retries", "exch retries", "stragglers", "recovery"],
            rows,
            title="Fault tolerance ablation 2: makespan vs fault rate "
                  "(identical results at every point)",
        )
        chart = series_chart(
            [int(r * 100) for r in self.RATES], series,
            x_label="fault rate %", y_label="sim s",
            title="shape: graceful degradation, no cliff",
        )
        report("fault_rate_sweep", table + "\n\n" + chart)
        benchmark(lambda: run_with_plan(
            *WORKLOADS[0][1:],
            FaultPlan(seed=13, crash_rate=0.1, straggler_rate=0.1,
                      exchange_failure_rate=0.1, **self.BACKOFF),
        ))


class TestDegradedModePolicies:
    """Experiment 3: fail vs skip vs quarantine on a poison callback."""

    def test_policy_matrix(self, report, benchmark):
        from repro.joins.spatial import SpatialContainsJoin

        class PoisonSpatial(SpatialContainsJoin):
            """Every ~20th verify pair raises, like a corrupt geometry."""

            def verify(self, key1, key2, pplan):
                if (hash(key2) % 20) == 0:
                    raise ValueError("corrupt geometry")
                return super().verify(key1, key2, pplan)

        def make_db():
            db = spatial_database(120, 1500, partitions=8, grid_n=32, seed=7)
            db.drop_join("st_contains")
            db.create_join("st_contains", PoisonSpatial, defaults=(32,))
            return db

        clean = run_query(
            spatial_database(120, 1500, partitions=8, grid_n=32, seed=7),
            SPATIAL_SQL, "fudj", cores=(CORES,))

        rows = []
        with pytest.raises(FudjCallbackError):
            db = make_db()
            db.execute(SPATIAL_SQL, mode="fudj", measure_bytes=False)
        rows.append(["fail", "aborted", "-", "-"])

        for policy in ("skip", "quarantine"):
            db = make_db()
            db.on_error = policy
            measured = run_query(db, SPATIAL_SQL, "fudj", cores=(CORES,))
            metrics = measured["result"].metrics
            assert metrics.records_quarantined > 0
            assert measured["result_rows"] <= clean["result_rows"]
            if policy == "quarantine":
                assert "verify" in metrics.quarantine_report()
            else:
                assert metrics.quarantine_log == []
            rows.append([
                policy, measured["result_rows"], metrics.records_quarantined,
                "per-phase report" if policy == "quarantine" else "counter only",
            ])
        report("fault_degraded_modes", format_table(
            ["on_error", "result rows", "quarantined", "reporting"],
            rows,
            title="Fault tolerance ablation 3: degraded-mode policies on a "
                  f"poison verify callback (clean rows: {clean['result_rows']})",
        ))
        benchmark(lambda: None)
