"""Table I reproduction: the four experiment datasets.

The paper's real datasets are replaced by seeded synthetic generators
(see DESIGN.md §2); this bench reports name / wire size / record count /
key type for the sizes used throughout the benchmark suite, mirroring
Table I's columns.
"""

import pytest

from repro.bench import format_table
from repro.datagen import (
    dataset_summary,
    generate_parks,
    generate_reviews,
    generate_taxi_rides,
    generate_wildfires,
)

#: Laptop-scale stand-ins for the paper's 7-58 GB datasets.
SIZES = {
    "Wildfires": 20000,
    "Parks": 4000,
    "NYCTaxi": 20000,
    "AmazonReview": 10000,
}


@pytest.fixture(scope="module")
def summaries():
    return [
        dataset_summary("Wildfires", generate_wildfires(SIZES["Wildfires"]),
                        "location", "Point"),
        dataset_summary("Parks", generate_parks(SIZES["Parks"]),
                        "boundary", "Polygon"),
        dataset_summary("NYCTaxi", generate_taxi_rides(SIZES["NYCTaxi"]),
                        "ride_interval", "Interval"),
        dataset_summary("AmazonReview", generate_reviews(SIZES["AmazonReview"]),
                        "review", "Text"),
    ]


def test_table1_report(summaries, report, benchmark):
    benchmark(generate_wildfires, 2000)
    rows = [
        [s["name"], f"{s['size_bytes'] / 1e6:.1f} MB", s["records"],
         s["key_type"]]
        for s in summaries
    ]
    report("table1_datasets", format_table(
        ["Name", "Size", "#Records", "Key Type"],
        rows,
        title="Table I (reproduced): synthetic datasets for FUDJ experiments",
    ))
    # Key types must match the paper's Table I.
    assert [r[3] for r in rows] == ["Point", "Polygon", "Interval", "Text"]
    assert all(s["records"] > 0 and s["size_bytes"] > 0 for s in summaries)
