"""Table II reproduction: lines of code, FUDJ vs built-in.

Counts real code lines (no blanks/comments/docstrings) of the FUDJ join
libraries against the hand-written built-in operators.  The paper reports
~10-17x in Java on AsterixDB (whose built-ins also carry rewrite-rule and
function-registration boilerplate our engine provides generically); the
reproduction target is the *direction and scale* of the gap — FUDJ
several times smaller — not the exact ratio.  See EXPERIMENTS.md.
"""

from repro.bench import format_table, table2_loc
from repro.bench.loc import count_code_lines

#: The paper's Table II, for side-by-side display.
PAPER_LOC = {
    "Spatial": (141, 1936),
    "Interval": (95, 1641),
    "Text-similarity": (231, 1823),
}


def test_table2_report(report, benchmark):
    rows = benchmark(table2_loc)
    display = []
    for row in rows:
        paper_fudj, paper_builtin = PAPER_LOC[row["join"]]
        display.append([
            row["join"],
            row["fudj_loc"],
            row["builtin_loc"],
            f"{row['builtin_loc'] / row['fudj_loc']:.1f}x",
            f"{paper_fudj} / {paper_builtin}",
            f"{paper_builtin / paper_fudj:.1f}x",
        ])
    report("table2_loc", format_table(
        ["Join", "FUDJ loc", "Built-in loc", "ratio",
         "paper loc (FUDJ/Built-in)", "paper ratio"],
        display,
        title="Table II (reproduced): written lines of code per implementation",
    ))
    for row in rows:
        assert row["builtin_loc"] > 1.8 * row["fudj_loc"], (
            f"{row['join']}: built-in must be several times larger"
        )


def test_loc_counter_is_stable(benchmark):
    import repro.joins.spatial as module

    count = benchmark(count_code_lines, module.__file__)
    assert count == count_code_lines(module.__file__)
