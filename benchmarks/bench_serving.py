"""Serving throughput: concurrent sessions against the session server.

Measures the end-to-end request path the robustness PR added — TCP,
JSONL framing, tenant lanes, admission, the engine, and the response —
under genuinely concurrent client sessions:

1. *Steady state* — N client threads each run M queries back to back;
   the headline numbers are QPS and the p50/p95 request latency.  The
   engine itself is serialized (one query holds it at a time), so this
   measures serving overhead and fairness, not parallel speedup.
2. *Chaos slice* — a fraction of requests carry a tiny deadline or get
   cancelled mid-flight; they must all come back typed (``timeout`` /
   ``cancelled``), and the steady-state queries around them still
   return correct rows.

The headline lands in the consolidated perf trajectory
(``benchmarks/results/BENCH_trajectory.json``) under the ``serving``
suite: ``rows`` is completed requests, so ``rows_per_second`` is the
measured QPS; ``detail`` carries the latency percentiles.

Standalone::

    python benchmarks/bench_serving.py [--smoke] [--out serving.json]
        [--clients N] [--requests M] [--no-trajectory]
"""

import json
import sys
import threading
import time

from repro.bench import SPATIAL_SQL, spatial_database
from repro.bench.trajectory import record
from repro.client import SessionClient


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def run_serving(clients=8, requests=10, points=120, polygons=1200,
                chaos_every=5):
    """One measured serving run; returns the result document."""
    db = spatial_database(points, polygons, partitions=4, seed=7)
    expected = len(db.execute(SPATIAL_SQL).rows)  # warm + ground truth
    server = db.serve(port=0, max_sessions=clients + 2)
    latencies = []
    outcomes = {"result": 0, "timeout": 0, "cancelled": 0, "other": 0}
    failures = []
    lock = threading.Lock()

    def worker(index):
        try:
            with SessionClient(server.host, server.port,
                               tenant=f"bench-{index % 4}") as client:
                for n in range(requests):
                    chaotic = chaos_every and (index + n) % chaos_every == 2
                    started = time.perf_counter()
                    if chaotic and n % 2 == 0:
                        reply = client.query(SPATIAL_SQL, timeout=300.0,
                                             deadline_ms=1)
                    elif chaotic:
                        rid = client.query_async(SPATIAL_SQL)
                        client.cancel(rid)
                        reply = client.wait(rid, timeout=300.0)
                    else:
                        reply = client.query(SPATIAL_SQL, timeout=300.0)
                    elapsed = time.perf_counter() - started
                    with lock:
                        if reply["type"] == "result":
                            outcomes["result"] += 1
                            latencies.append(elapsed)
                            if reply["row_count"] != expected:
                                failures.append(
                                    f"client {index}: {reply['row_count']} "
                                    f"rows, expected {expected}")
                        elif reply.get("error") in ("timeout", "cancelled"):
                            outcomes[reply["error"]] += 1
                        else:
                            outcomes["other"] += 1
                            failures.append(
                                f"client {index}: unexpected outcome "
                                f"{reply.get('error')!r}")
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            with lock:
                failures.append(f"client {index}: {type(exc).__name__}: "
                                f"{exc}")

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    db.close()

    completed = sum(outcomes.values())
    latencies.sort()
    return {
        "clients": clients,
        "requests_per_client": requests,
        "completed": completed,
        "outcomes": outcomes,
        "failures": failures,
        "wall_seconds": round(wall, 6),
        "qps": round(completed / wall, 3) if wall else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 3),
        "result_rows": expected,
    }


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    trajectory = "--no-trajectory" not in args
    if not trajectory:
        args.remove("--no-trajectory")
    out = None
    if "--out" in args:
        at = args.index("--out")
        if at + 1 >= len(args):
            print("--out needs a path", file=sys.stderr)
            return 1
        out = args[at + 1]
        del args[at:at + 2]
    clients = 4 if smoke else 8
    requests = 3 if smoke else 10
    if "--clients" in args:
        at = args.index("--clients")
        clients = int(args[at + 1])
        del args[at:at + 2]
    if "--requests" in args:
        at = args.index("--requests")
        requests = int(args[at + 1])
        del args[at:at + 2]

    result = run_serving(clients=clients, requests=requests)
    print(f"serving: {result['completed']} requests from "
          f"{result['clients']} sessions in {result['wall_seconds']:.2f}s "
          f"-> {result['qps']:.1f} qps "
          f"(p50 {result['p50_ms']:.0f}ms, p95 {result['p95_ms']:.0f}ms)")
    print(f"outcomes: {result['outcomes']}")
    for failure in result["failures"]:
        print(f"FAILURE: {failure}", file=sys.stderr)

    if trajectory:
        record(
            "serving",
            wall_seconds=result["wall_seconds"],
            rows=result["completed"],
            detail={
                "qps": result["qps"],
                "p50_ms": result["p50_ms"],
                "p95_ms": result["p95_ms"],
                "clients": result["clients"],
                "outcomes": result["outcomes"],
                "smoke": smoke,
            },
        )
    if out is not None:
        with open(out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"measurement written to {out}")
    return 1 if result["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
