"""A "Figure 9d": the trajectory domain the paper's related work motivates.

The paper's Table of related work is dominated by trajectory-join systems
([2, 3, 7, 8], [34]-[38]) precisely because no DBMS optimizes them — the
FUDJ pitch.  This bench runs the trajectory proximity join (implemented
as a ~40-line FUDJ library) against the on-top NLJ across data sizes,
mirroring the Fig 9 methodology on the fourth domain.
"""

import pytest

from repro.bench import format_table
from repro.bench.harness import run_query
from repro.database import Database
from repro.datagen import generate_trajectories
from repro.joins import TrajectoryProximityJoin

CORES = 12
ONTOP_CUTOFF = 800

FUDJ_SQL = (
    "SELECT COUNT(1) AS c FROM Trips a, Trips b "
    "WHERE a.vehicle = 1 AND b.vehicle = 2 "
    "AND routes_near(a.route, b.route, 2.0)"
)
ONTOP_SQL = (
    "SELECT COUNT(1) AS c FROM Trips a, Trips b "
    "WHERE a.vehicle = 1 AND b.vehicle = 2 "
    "AND trajectory_min_distance(a.route, b.route) <= 2.0"
)


def trajectory_database(size: int, partitions: int = 8) -> Database:
    db = Database(num_partitions=partitions)
    db.execute("CREATE TYPE TripType { id: int, vehicle: int, "
               "route: trajectory }")
    db.execute("CREATE DATASET Trips(TripType) PRIMARY KEY id")
    db.load("Trips", generate_trajectories(size, seed=size))
    db.create_join("routes_near", TrajectoryProximityJoin, defaults=(2.0, 32))
    return db


class TestTrajectoryDomain:
    SIZES = (200, 400, 800, 1600)

    def test_sweep(self, report, benchmark):
        rows = []
        checks = {}
        for size in self.SIZES:
            db = trajectory_database(size)
            fudj = run_query(db, FUDJ_SQL, "fudj", cores=(CORES,))
            checks[size] = {"fudj": fudj}
            rows.append([size, "fudj", fudj[f"sim_{CORES}c"],
                         fudj["comparisons"], fudj["result"].rows[0]["c"]])
            if size <= ONTOP_CUTOFF:
                ontop = run_query(db, ONTOP_SQL, "ontop", cores=(CORES,))
                checks[size]["ontop"] = ontop
                assert fudj["result"].rows == ontop["result"].rows
                rows.append([size, "ontop", ontop[f"sim_{CORES}c"],
                             ontop["comparisons"],
                             ontop["result"].rows[0]["c"]])
            else:
                rows.append([size, "ontop", "(not scalable)", "-", "-"])
        report("fig9d_trajectory", format_table(
            ["records", "mode", f"sim s ({CORES} cores)", "pair tests",
             "encounters"],
            rows,
            title="Figure 9d (extension): trajectory proximity join, "
                  "FUDJ vs on-top",
        ))
        # On-top is quadratic, FUDJ near-linear: the ratio must grow with
        # size and exceed 2x by the largest on-top-covered size.  (At the
        # smallest size FUDJ's fixed summarize/shuffle costs dominate and
        # the gap is legitimately small.)
        ratios = {
            size: (per_mode["ontop"][f"sim_{CORES}c"]
                   / per_mode["fudj"][f"sim_{CORES}c"])
            for size, per_mode in checks.items() if "ontop" in per_mode
        }
        covered = sorted(ratios)
        assert ratios[covered[-1]] > 2.0
        assert ratios[covered[-1]] > ratios[covered[0]]
        benchmark(lambda: run_query(trajectory_database(400), FUDJ_SQL,
                                    "fudj", cores=(CORES,)))

    def test_eps_sweep(self, report, benchmark):
        db = trajectory_database(600)
        rows = []
        encounters = []
        for eps in (0.5, 1.0, 2.0, 4.0, 8.0):
            sql = ("SELECT COUNT(1) AS c FROM Trips a, Trips b "
                   "WHERE a.vehicle = 1 AND b.vehicle = 2 "
                   f"AND routes_near(a.route, b.route, {eps})")
            run = run_query(db, sql, "fudj", cores=(CORES,))
            encounters.append(run["result"].rows[0]["c"])
            rows.append([eps, run[f"sim_{CORES}c"], run["comparisons"],
                         run["result"].rows[0]["c"]])
        report("fig9d_trajectory_eps", format_table(
            ["eps", f"sim s ({CORES} cores)", "pair tests", "encounters"],
            rows,
            title="Trajectory join vs proximity threshold (wider eps = "
                  "more replication + more candidates)",
        ))
        # Monotonicity: wider eps can only add encounters.
        assert encounters == sorted(encounters)
        benchmark(lambda: None)
