"""Shared plumbing for the figure/table benchmarks.

Each benchmark regenerates one artefact of the paper's evaluation section
(Tables I-II, Figures 1, 9-12).  The rendered tables are printed to the
terminal (visible with ``pytest -s``) and always written to
``benchmarks/results/<name>.txt`` so a plain ``pytest benchmarks/
--benchmark-only`` run leaves the full report on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """A callable that prints a report block and persists it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return emit
