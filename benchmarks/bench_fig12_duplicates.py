"""Figure 12 reproduction: duplicate handling and local join optimization.

- Fig 12a: Duplicate Avoidance vs Duplicate Elimination on the text join,
  sweeping data size.  Avoidance wins (paper: ~1.15x) because elimination
  adds a post-join shuffle.
- Fig 12b: FUDJ's default avoidance vs the developer-supplied
  Reference-Point method on the spatial join, sweeping bucket count.
  They are comparable ("not any notable difference").
- Fig 12c: Spatial FUDJ vs the advanced built-in operator with local
  plane-sweep (paper: ~1.38x for the operator).
"""

import pytest

from repro.bench import (
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query

CORES = 12


class TestFig12aAvoidanceVsElimination:
    SIZES = (500, 1000, 2000, 4000)

    def test_strategy_sweep(self, report, benchmark):
        sql = TEXT_SQL.format(threshold=0.9)
        rows = []
        ratios = []
        for size in self.SIZES:
            db = text_database(size, partitions=8, seed=size)
            avoid = run_query(db, sql, "fudj", dedup="avoidance",
                              cores=(CORES,), measure_bytes=True)
            elim = run_query(db, sql, "fudj", dedup="elimination",
                             cores=(CORES,), measure_bytes=True)
            assert avoid["result"].rows == elim["result"].rows
            ratio = elim[f"sim_{CORES}c"] / avoid[f"sim_{CORES}c"]
            ratios.append(ratio)
            rows.append([
                size, avoid[f"sim_{CORES}c"], elim[f"sim_{CORES}c"],
                f"{ratio:.2f}x",
                int(elim["network_bytes"] - avoid["network_bytes"]),
            ])
        report("fig12a_dedup_strategies", format_table(
            ["records", "avoidance s", "elimination s", "elim/avoid",
             "extra shuffle bytes"],
            rows,
            title="Figure 12a (reproduced): duplicate avoidance vs elimination "
                  "(text-similarity, t=0.9)",
        ))
        average = sum(ratios) / len(ratios)
        # Paper: avoidance ~1.15x faster on average; require >= 1.02x and
        # never slower.
        assert average > 1.02
        assert all(r >= 0.99 for r in ratios)
        benchmark(lambda: None)


class TestFig12bReferencePoint:
    #: The paper sweeps roughly 1000-2000 buckets; grid sizes 32-90 give
    #: 1024-8100 buckets.  (At very coarse grids the two methods genuinely
    #: diverge: the reference-point dedup embeds an MBR-intersection test,
    #: so it skips disjoint co-bucketed pairs that the default avoidance
    #: still verifies.)
    GRID_SIZES = (32, 45, 64, 90)

    def test_reference_point_vs_default(self, report, benchmark):
        rows = []
        for n in self.GRID_SIZES:
            default_db = spatial_database(300, 3000, partitions=8, grid_n=n,
                                          seed=14)
            refpoint_db = spatial_database(300, 3000, partitions=8, grid_n=n,
                                           seed=14, reference_point=True)
            default = run_query(default_db, SPATIAL_SQL, "fudj", cores=(CORES,))
            refpoint = run_query(refpoint_db, SPATIAL_SQL, "fudj",
                                 cores=(CORES,))
            assert sorted(map(repr, default["result"].rows)) == sorted(
                map(repr, refpoint["result"].rows)
            )
            rows.append([
                n * n, default[f"sim_{CORES}c"], refpoint[f"sim_{CORES}c"],
                f"{default[f'sim_{CORES}c'] / refpoint[f'sim_{CORES}c']:.2f}x",
            ])
        report("fig12b_reference_point", format_table(
            ["buckets", "FUDJ default s", "reference point s", "default/refpoint"],
            rows,
            title="Figure 12b (reproduced): FUDJ default avoidance vs the "
                  "reference-point method (spatial)",
        ))
        # Paper: "not any notable difference" — within 1.5x either way at
        # every bucket count in the paper's range.
        for _, default_s, refpoint_s, _ in rows:
            assert 2 / 3 < default_s / refpoint_s < 1.5
        benchmark(lambda: None)


class TestFig12cLocalOptimization:
    def test_plane_sweep_operator(self, report, benchmark):
        rows = []
        speedups = []
        for size in (2000, 4000, 8000):
            fudj_db = spatial_database(size // 10, size, partitions=8,
                                       grid_n=32, seed=15)
            sweep_db = spatial_database(size // 10, size, partitions=8,
                                        grid_n=32, seed=15, plane_sweep=True)
            fudj = run_query(fudj_db, SPATIAL_SQL, "fudj", cores=(CORES,))
            advanced = run_query(sweep_db, SPATIAL_SQL, "builtin",
                                 cores=(CORES,))
            assert sorted(map(repr, fudj["result"].rows)) == sorted(
                map(repr, advanced["result"].rows)
            )
            speedup = fudj[f"sim_{CORES}c"] / advanced[f"sim_{CORES}c"]
            speedups.append(speedup)
            rows.append([
                size, fudj[f"sim_{CORES}c"], advanced[f"sim_{CORES}c"],
                f"{speedup:.2f}x",
                fudj["comparisons"], advanced["comparisons"],
            ])
        report("fig12c_plane_sweep", format_table(
            ["records", "Spatial FUDJ s", "Adv. operator s", "speed-up",
             "FUDJ pair tests", "sweep pair tests"],
            rows,
            title="Figure 12c (reproduced): Spatial FUDJ vs advanced "
                  "plane-sweep operator",
        ))
        average = sum(speedups) / len(speedups)
        # Paper: ~1.38x average advantage for the locally-optimized
        # operator; require a clear (>= 1.1x) advantage here.
        assert average > 1.1
        benchmark(lambda: None)
