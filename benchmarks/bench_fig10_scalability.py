"""Figure 10 reproduction: query execution time vs number of cores.

The paper runs each join on 48/96/144 cores (plus the 12-core baseline of
Fig 9) and shows that spatial and text FUDJ scale well and stay close to
built-in, while the interval FUDJ scales poorly because its multi-join
forces a broadcast theta plan (§VII-C).  Here the cluster is rebuilt with
``partitions == cores`` for each point — exactly what adding worker nodes
does — and the cost model replays the schedule.

Shape targets:
- spatial/text: time drops substantially from 12 to 144 cores;
- interval: little or no improvement (broadcast + theta matching);
- FUDJ-vs-built-in gap stays bounded as cores grow.
"""

import pytest

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query

CORE_COUNTS = (12, 48, 96, 144)


def scale_sweep(name, make_db, sql, report):
    rows = []
    curves = {"fudj": {}, "builtin": {}}
    for cores in CORE_COUNTS:
        db = make_db(cores)
        for mode in ("fudj", "builtin"):
            row = run_query(db, sql, mode, cores=(cores,))
            curves[mode][cores] = row[f"sim_{cores}c"]
            rows.append([cores, mode, row[f"sim_{cores}c"]])
    from repro.bench.ascii_chart import series_chart

    table = format_table(
        ["cores", "mode", "simulated seconds"],
        rows,
        title=f"Figure 10{dict(spatial='a', interval='b', text='c')[name]} "
              f"(reproduced): {name} join execution time vs cores",
    )
    chart = series_chart(
        list(CORE_COUNTS),
        {mode: [curves[mode][c] for c in CORE_COUNTS]
         for mode in ("fudj", "builtin")},
        x_label="cores", y_label="sim s",
        title="shape: falling = scales, flat = does not",
    )
    report(f"fig10_{name}", table + "\n\n" + chart)
    return curves


class TestFig10Spatial:
    def test_scaling(self, report, benchmark):
        def make_db(cores):
            return spatial_database(600, 8000, partitions=cores, grid_n=40,
                                    seed=1)

        curves = scale_sweep("spatial", make_db, SPATIAL_SQL, report)
        fudj = curves["fudj"]
        # Spatial FUDJ scales: 144 cores clearly faster than 12.
        assert fudj[144] < fudj[12] / 2.5
        # FUDJ stays within a constant factor of built-in at every scale.
        for cores in CORE_COUNTS:
            assert curves["fudj"][cores] < 3 * curves["builtin"][cores]
        benchmark(lambda: None)


class TestFig10Text:
    def test_scaling(self, report, benchmark):
        sql = TEXT_SQL.format(threshold=0.9)

        def make_db(cores):
            return text_database(3000, partitions=cores, seed=1)

        curves = scale_sweep("text", make_db, sql, report)
        fudj = curves["fudj"]
        assert fudj[144] < fudj[12] / 2.0
        for cores in CORE_COUNTS:
            assert curves["fudj"][cores] < 3 * curves["builtin"][cores]
        benchmark(lambda: None)


class TestFig10Interval:
    def test_poor_scaling(self, report, benchmark):
        def make_db(cores):
            return interval_database(3000, partitions=cores, num_buckets=200,
                                     seed=1)

        curves = scale_sweep("interval", make_db, INTERVAL_SQL, report)
        fudj = curves["fudj"]
        spatial_like_speedup = fudj[12] / fudj[144]
        # The broadcast theta plan must NOT scale the way spatial does
        # (paper: "we cannot say the scaling is promising").
        assert spatial_like_speedup < 2.5
        benchmark(lambda: None)


class TestFig10CrossJoin:
    def test_interval_scales_worse_than_spatial(self, report, benchmark):
        spatial = spatial_database(600, 8000, partitions=144, grid_n=40, seed=1)
        interval = interval_database(3000, partitions=144, num_buckets=200,
                                     seed=1)
        s12 = run_query(
            spatial_database(600, 8000, partitions=12, grid_n=40, seed=1),
            SPATIAL_SQL, "fudj", cores=(12,))["sim_12c"]
        s144 = run_query(spatial, SPATIAL_SQL, "fudj", cores=(144,))["sim_144c"]
        i12 = run_query(
            interval_database(3000, partitions=12, num_buckets=200, seed=1),
            INTERVAL_SQL, "fudj", cores=(12,))["sim_12c"]
        i144 = run_query(interval, INTERVAL_SQL, "fudj", cores=(144,))["sim_144c"]
        spatial_speedup = s12 / s144
        interval_speedup = i12 / i144
        report("fig10_summary", format_table(
            ["join", "12-core s", "144-core s", "speed-up"],
            [["spatial", s12, s144, spatial_speedup],
             ["interval", i12, i144, interval_speedup]],
            title="Figure 10 summary: single-join scales, multi-join does not",
        ))
        assert spatial_speedup > 1.5 * interval_speedup
        benchmark(lambda: None)
