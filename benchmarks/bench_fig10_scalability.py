"""Figure 10 reproduction: query execution time vs number of cores.

The paper runs each join on 48/96/144 cores (plus the 12-core baseline of
Fig 9) and shows that spatial and text FUDJ scale well and stay close to
built-in, while the interval FUDJ scales poorly because its multi-join
forces a broadcast theta plan (§VII-C).  Here the cluster is rebuilt with
``partitions == cores`` for each point — exactly what adding worker nodes
does — and the cost model replays the schedule.

Shape targets:
- spatial/text: time drops substantially from 12 to 144 cores;
- interval: little or no improvement (broadcast + theta matching);
- FUDJ-vs-built-in gap stays bounded as cores grow.
"""

import pytest

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query

CORE_COUNTS = (12, 48, 96, 144)


def scale_sweep(name, make_db, sql, report):
    rows = []
    curves = {"fudj": {}, "builtin": {}}
    for cores in CORE_COUNTS:
        db = make_db(cores)
        for mode in ("fudj", "builtin"):
            row = run_query(db, sql, mode, cores=(cores,))
            curves[mode][cores] = row[f"sim_{cores}c"]
            rows.append([cores, mode, row[f"sim_{cores}c"]])
    from repro.bench.ascii_chart import series_chart

    table = format_table(
        ["cores", "mode", "simulated seconds"],
        rows,
        title=f"Figure 10{dict(spatial='a', interval='b', text='c')[name]} "
              f"(reproduced): {name} join execution time vs cores",
    )
    chart = series_chart(
        list(CORE_COUNTS),
        {mode: [curves[mode][c] for c in CORE_COUNTS]
         for mode in ("fudj", "builtin")},
        x_label="cores", y_label="sim s",
        title="shape: falling = scales, flat = does not",
    )
    report(f"fig10_{name}", table + "\n\n" + chart)
    return curves


class TestFig10Spatial:
    def test_scaling(self, report, benchmark):
        def make_db(cores):
            return spatial_database(600, 8000, partitions=cores, grid_n=40,
                                    seed=1)

        curves = scale_sweep("spatial", make_db, SPATIAL_SQL, report)
        fudj = curves["fudj"]
        # Spatial FUDJ scales: 144 cores clearly faster than 12.
        assert fudj[144] < fudj[12] / 2.5
        # FUDJ stays within a constant factor of built-in at every scale.
        for cores in CORE_COUNTS:
            assert curves["fudj"][cores] < 3 * curves["builtin"][cores]
        benchmark(lambda: None)


class TestFig10Text:
    def test_scaling(self, report, benchmark):
        sql = TEXT_SQL.format(threshold=0.9)

        def make_db(cores):
            return text_database(3000, partitions=cores, seed=1)

        curves = scale_sweep("text", make_db, sql, report)
        fudj = curves["fudj"]
        assert fudj[144] < fudj[12] / 2.0
        for cores in CORE_COUNTS:
            assert curves["fudj"][cores] < 3 * curves["builtin"][cores]
        benchmark(lambda: None)


class TestFig10Interval:
    def test_poor_scaling(self, report, benchmark):
        def make_db(cores):
            return interval_database(3000, partitions=cores, num_buckets=200,
                                     seed=1)

        curves = scale_sweep("interval", make_db, INTERVAL_SQL, report)
        fudj = curves["fudj"]
        spatial_like_speedup = fudj[12] / fudj[144]
        # The broadcast theta plan must NOT scale the way spatial does
        # (paper: "we cannot say the scaling is promising").
        assert spatial_like_speedup < 2.5
        benchmark(lambda: None)


class TestFig10CrossJoin:
    def test_interval_scales_worse_than_spatial(self, report, benchmark):
        spatial = spatial_database(600, 8000, partitions=144, grid_n=40, seed=1)
        interval = interval_database(3000, partitions=144, num_buckets=200,
                                     seed=1)
        s12 = run_query(
            spatial_database(600, 8000, partitions=12, grid_n=40, seed=1),
            SPATIAL_SQL, "fudj", cores=(12,))["sim_12c"]
        s144 = run_query(spatial, SPATIAL_SQL, "fudj", cores=(144,))["sim_144c"]
        i12 = run_query(
            interval_database(3000, partitions=12, num_buckets=200, seed=1),
            INTERVAL_SQL, "fudj", cores=(12,))["sim_12c"]
        i144 = run_query(interval, INTERVAL_SQL, "fudj", cores=(144,))["sim_144c"]
        spatial_speedup = s12 / s144
        interval_speedup = i12 / i144
        report("fig10_summary", format_table(
            ["join", "12-core s", "144-core s", "speed-up"],
            [["spatial", s12, s144, spatial_speedup],
             ["interval", i12, i144, interval_speedup]],
            title="Figure 10 summary: single-join scales, multi-join does not",
        ))
        assert spatial_speedup > 1.5 * interval_speedup
        benchmark(lambda: None)


# -- measured process-backend runner ------------------------------------------
#
# ``python benchmarks/bench_fig10_scalability.py --backend process --out f.json``
# measures *wall-clock* speedup of the supervised worker-process pool
# against the serial backend, next to the simulated Fig 10 curve the
# tests above assert on.  The workload pads the spatial ``verify`` with
# deterministic CPU work so COMBINE compute dominates transport — the
# quantity the pool parallelizes — mirroring the paper's servers, where
# per-pair verification is the expensive part.


from repro.joins.spatial import SpatialContainsJoin  # noqa: E402


class PaddedSpatialContains(SpatialContainsJoin):
    """``st_contains`` with a fixed deterministic CPU pad per verify
    call.  The pad changes no answers (the predicate is untouched); it
    only raises the compute-to-bytes ratio so measured scaling reflects
    COMBINE parallelism rather than serialization overhead."""

    name = "spatial-contains-padded"
    PAD_ITERS = 6000

    def verify(self, geometry1, geometry2, pplan) -> bool:
        acc = 0
        for i in range(self.PAD_ITERS):
            acc = (acc * 1103515245 + 12345 + i) & 0x7FFFFFFF
        if acc == -1:  # unreachable; anchors the pad against dead-code zeal
            return False
        return super().verify(geometry1, geometry2, pplan)


def _padded_spatial_database(partitions: int = 8):
    from repro.bench.workloads import (
        generate_parks,
        generate_wildfires,
        install_builtin_joins,
    )
    from repro.database import Database

    db = Database(num_partitions=partitions)
    db.create_type("ParkType", [("id", "int"), ("boundary", "geometry"),
                                ("tags", "string")])
    db.create_dataset("Parks", "ParkType", "id")
    db.load("Parks", generate_parks(600, seed=1))
    db.create_type("FireType", [("id", "int"), ("location", "point"),
                                ("fire_start", "double"),
                                ("fire_end", "double")])
    db.create_dataset("Wildfires", "FireType", "id")
    db.load("Wildfires", generate_wildfires(4000, seed=2))
    db.create_join("st_contains", PaddedSpatialContains, defaults=(40,))
    install_builtin_joins(db, spatial_n=40)
    return db


def _measured_wall(backend: str, workers: int = None, runs: int = 2):
    """Best-of-``runs`` wall seconds for the padded workload."""
    import time

    best = None
    rows = None
    for _ in range(runs):
        db = _padded_spatial_database()
        try:
            if backend == "process":
                db.workers = workers
                db.set_backend("process")
            started = time.perf_counter()
            result = db.execute(SPATIAL_SQL)
            wall = time.perf_counter() - started
        finally:
            db.close()
        if rows is None:
            rows = len(result.rows)
        elif len(result.rows) != rows:
            raise AssertionError("row count changed between runs")
        best = wall if best is None else min(best, wall)
    return best, rows


def _simulated_reference():
    """The simulated Fig 10 spatial curve (small instance) the measured
    numbers are reported against."""
    sims = {}
    for cores in CORE_COUNTS:
        db = spatial_database(300, 4000, partitions=cores, grid_n=40, seed=1)
        sims[cores] = run_query(db, SPATIAL_SQL, "fudj",
                                cores=(cores,))[f"sim_{cores}c"]
    return sims


def main(argv=None) -> int:
    import argparse
    import json
    import os
    import sys

    parser = argparse.ArgumentParser(
        description="Measured (wall-clock) vs simulated Fig 10 scaling")
    parser.add_argument("--backend", choices=("serial", "process"),
                        default="serial")
    parser.add_argument("--workers", type=int, nargs="*", default=[1, 2, 4],
                        help="pool sizes to measure under --backend process")
    parser.add_argument("--out", default=None,
                        help="write the JSON artifact here")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    serial_wall, serial_rows = _measured_wall("serial")
    sims = _simulated_reference()
    report = {
        "workload": "padded spatial contains (600 parks x 4000 fires, "
                    "8 partitions)",
        "cpu_count": cpus,
        "rows": serial_rows,
        "serial_wall_seconds": serial_wall,
        "measured": {},
        "simulated_seconds": {str(c): sims[c] for c in CORE_COUNTS},
        "simulated_speedup_12_to_144": sims[12] / sims[144],
        "gate": {"required": args.backend == "process" and cpus >= 4,
                 "threshold": 2.0, "passed": None},
    }
    if args.backend == "process":
        for workers in args.workers:
            wall, rows = _measured_wall("process", workers=workers)
            if rows != serial_rows:
                print(f"FAIL: process rows {rows} != serial {serial_rows}")
                return 1
            report["measured"][str(workers)] = {
                "wall_seconds": wall,
                "speedup_vs_serial": serial_wall / wall,
            }
        if report["gate"]["required"]:
            top = max(w for w in args.workers)
            speedup = report["measured"][str(top)]["speedup_vs_serial"]
            report["gate"]["passed"] = speedup >= report["gate"]["threshold"]
    from repro.bench import trajectory

    trajectory.record(
        f"fig10_scalability_{args.backend}",
        wall_seconds=min(
            [m["wall_seconds"] for m in report["measured"].values()]
            or [serial_wall]),
        rows=serial_rows,
        detail={
            "serial_wall_seconds": round(serial_wall, 6),
            "speedup_vs_serial": {
                w: round(m["speedup_vs_serial"], 3)
                for w, m in report["measured"].items()},
            "simulated_speedup_12_to_144": round(
                report["simulated_speedup_12_to_144"], 3),
        },
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    if report["gate"]["required"] and not report["gate"]["passed"]:
        print("FAIL: measured process-backend speedup below 2x at "
              f"{max(args.workers)} workers on a {cpus}-core machine",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
