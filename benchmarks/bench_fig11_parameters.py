"""Figure 11 reproduction: bucket-count and similarity-threshold effects.

- Fig 11a: spatial join time vs grid size — too few tiles means huge
  buckets (quadratic in-tile work), too many means replication overhead;
  the best setting sits in between (a U-ish curve).
- Fig 11b: interval join time vs timeline granule count — same trade-off.
- Fig 11c: text-similarity join time vs threshold — the prefix filter
  loses its bite as the threshold drops, so runtime explodes toward low
  thresholds.
"""

import pytest

from repro.bench import (
    INTERVAL_SQL,
    SPATIAL_SQL,
    TEXT_SQL,
    format_table,
    interval_database,
    spatial_database,
    text_database,
)
from repro.bench.harness import run_query

CORES = 12


class TestFig11aSpatialBuckets:
    GRID_SIZES = (1, 4, 12, 32, 64, 128, 256)

    def test_bucket_sweep(self, report, benchmark):
        rows = []
        times = {}
        for n in self.GRID_SIZES:
            db = spatial_database(400, 5000, partitions=8, grid_n=n, seed=11)
            row = run_query(db, SPATIAL_SQL, "fudj", cores=(CORES,))
            times[n] = row[f"sim_{CORES}c"]
            rows.append([n * n, n, row[f"sim_{CORES}c"], row["comparisons"]])
        from repro.bench.ascii_chart import bar_chart

        report("fig11a_spatial_buckets", format_table(
            ["buckets", "grid n", f"sim s ({CORES} cores)", "verifications"],
            rows,
            title="Figure 11a (reproduced): spatial join vs number of buckets",
        ) + "\n\n" + bar_chart(
            [(f"{n * n} buckets", times[n]) for n in self.GRID_SIZES],
            log=True, title="shape: U-curve (log scale)",
        ))
        # U-shape: both extremes are worse than the best interior point.
        best = min(times.values())
        assert times[self.GRID_SIZES[0]] > 2 * best
        assert times[self.GRID_SIZES[-1]] > best
        best_n = min(times, key=times.get)
        assert best_n not in (self.GRID_SIZES[0], self.GRID_SIZES[-1])
        benchmark(lambda: None)

    def test_result_invariant_to_buckets(self, benchmark):
        # Tuning must never change answers.
        counts = []
        for n in (2, 16, 64):
            db = spatial_database(150, 1200, partitions=4, grid_n=n, seed=5)
            result = db.execute(SPATIAL_SQL, mode="fudj")
            counts.append(sorted(map(repr, result.rows)))
        assert counts[0] == counts[1] == counts[2]
        benchmark(lambda: None)


class TestFig11bIntervalBuckets:
    BUCKET_COUNTS = (1, 5, 25, 100, 400, 1600, 6400)

    def test_bucket_sweep(self, report, benchmark):
        rows = []
        times = {}
        for buckets in self.BUCKET_COUNTS:
            db = interval_database(1500, partitions=8, num_buckets=buckets,
                                   seed=12)
            row = run_query(db, INTERVAL_SQL, "fudj", cores=(CORES,))
            times[buckets] = row[f"sim_{CORES}c"]
            rows.append([buckets, row[f"sim_{CORES}c"], row["comparisons"]])
        report("fig11b_interval_buckets", format_table(
            ["buckets", f"sim s ({CORES} cores)", "verifications"],
            rows,
            title="Figure 11b (reproduced): interval join vs number of buckets",
        ))
        # One giant bucket degenerates to all-pairs verification.
        best = min(times.values())
        assert times[1] > 1.5 * best
        benchmark(lambda: None)

    def test_result_invariant_to_buckets(self, benchmark):
        counts = []
        for buckets in (1, 50, 2000):
            db = interval_database(600, partitions=4, num_buckets=buckets,
                                   seed=6)
            counts.append(db.execute(INTERVAL_SQL, mode="fudj").rows)
        assert counts[0] == counts[1] == counts[2]
        benchmark(lambda: None)


class TestFig11cSimilarityThreshold:
    THRESHOLDS = (0.99, 0.9, 0.8, 0.7, 0.6, 0.5)

    def test_threshold_sweep(self, report, benchmark):
        db = text_database(2000, partitions=8, seed=13)
        rows = []
        times = {}
        for threshold in self.THRESHOLDS:
            sql = TEXT_SQL.format(threshold=threshold)
            row = run_query(db, sql, "fudj", cores=(CORES,))
            times[threshold] = row[f"sim_{CORES}c"]
            rows.append([
                threshold, row[f"sim_{CORES}c"], row["comparisons"],
                row["result"].rows[0]["c"],
            ])
        from repro.bench.ascii_chart import bar_chart

        report("fig11c_similarity_threshold", format_table(
            ["threshold", f"sim s ({CORES} cores)", "verifications", "pairs"],
            rows,
            title="Figure 11c (reproduced): text join vs similarity threshold",
        ) + "\n\n" + bar_chart(
            [(f"t={t}", times[t]) for t in self.THRESHOLDS],
            title="shape: runtime grows as the threshold drops",
        ))
        # Runtime grows substantially as the threshold drops (prefix
        # filtering degrades) — the paper's Fig 11c shape.
        assert times[0.5] > 3 * times[0.99]
        ordered = [times[t] for t in self.THRESHOLDS]
        assert ordered[-1] == max(ordered)
        benchmark(lambda: None)
