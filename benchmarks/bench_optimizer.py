"""Plan quality of the cost-based optimizer (`docs/query_optimizer.md`).

The sweep builds a seeded, skewed three-table star workload, scores
every left-deep join order with the enumerator's own bound-sum (the
C_out-style unit `JoinOrder.cost` minimizes), and checks the chosen
order against the field: it must match the best enumerable order and
beat the worst by a wide unit margin.  The orders are then executed
for real — each forced through the rule optimizer by rewriting the
FROM clause — so the unit margin is backed by simulated seconds.

Run as a script to write the JSON artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_optimizer.py --out plan.json
"""

from __future__ import annotations

import itertools
import json
import random

from repro.bench.harness import format_table
from repro.database import Database
from repro.optimizer import CardinalityEstimator, enumerate_join_order
from repro.optimizer.binder import bind_select
from repro.optimizer.joinorder import from_aliases, order_cost
from repro.query.parser import parse_statement

CORES = 12

#: FROM rendered per order; the WHERE is order-independent.
WHERE = "where u.uid = o.uid and o.pid = p.pid and p.cat = 'c0'"
TABLES = {"u": "users", "o": "orders", "p": "products"}


def star_database(users: int = 300, orders: int = 3000,
                  products: int = 40, seed: int = 11) -> Database:
    """A seeded star schema with Zipf-ish skew on the fact table's
    foreign keys — the shape where join order matters most."""
    db = Database()
    db.create_type("t_user", [("uid", "int"), ("region", "string")])
    db.create_dataset("users", "t_user", "uid")
    db.create_type("t_order", [("oid", "int"), ("uid", "int"),
                               ("pid", "int")])
    db.create_dataset("orders", "t_order", "oid")
    db.create_type("t_prod", [("pid", "int"), ("cat", "string")])
    db.create_dataset("products", "t_prod", "pid")
    rng = random.Random(seed)
    db.load("users", [{"uid": i, "region": rng.choice("abcd")}
                      for i in range(users)])
    # Skew: low uids/pids are heavily over-represented.
    db.load("orders", [
        {"oid": i,
         "uid": min(int(rng.paretovariate(1.2)) - 1, users - 1),
         "pid": min(int(rng.paretovariate(1.5)) - 1, products - 1)}
        for i in range(orders)
    ])
    db.load("products", [{"pid": i, "cat": f"c{i % 8}"}
                         for i in range(products)])
    return db


def sql_for(order) -> str:
    tables = ", ".join(f"{TABLES[a]} {a}" for a in order)
    return f"select u.uid, o.oid, p.cat from {tables} {WHERE}"


def sweep():
    """Score every left-deep order; execute chosen / written / worst."""
    db = star_database()
    estimator = CardinalityEstimator(db.cluster)
    bound = bind_select(parse_statement(sql_for(["u", "o", "p"])),
                        db.catalog, db.functions, db.joins)
    chosen = enumerate_join_order(bound, estimator)

    scored = sorted(
        (order_cost(bound, estimator, list(perm)), list(perm))
        for perm in itertools.permutations(bound.aliases)
    )
    best_cost, best_order = scored[0]
    worst_cost, worst_order = scored[-1]
    written = from_aliases(bound)

    rows = []
    seconds = {}
    for label, order in (("chosen", chosen.aliases), ("written", written),
                         ("worst", worst_order)):
        # Force the order through the rule optimizer (written order is
        # kept verbatim there), so each order's execution is measured
        # with identical operators.
        result = db.execute(sql_for(order))
        seconds[label] = result.metrics.simulated_seconds(CORES)
        rows.append([label, " -> ".join(order),
                     f"{order_cost(bound, estimator, order):.0f}",
                     f"{seconds[label] * 1e3:.2f}"])

    return {
        "chosen_order": chosen.aliases,
        "chosen_cost": chosen.cost,
        "best_cost": best_cost,
        "best_order": best_order,
        "worst_cost": worst_cost,
        "worst_order": worst_order,
        "written_cost": order_cost(bound, estimator, written),
        "unit_margin_vs_worst": worst_cost / max(chosen.cost, 1.0),
        "sim_seconds": seconds,
        "table": format_table(
            ["order", "joins", "bound-sum units", f"sim ms @{CORES}c"],
            rows,
        ),
    }


class TestPlanQuality:
    def test_chosen_order_is_best_and_beats_worst(self, report, benchmark):
        data = sweep()
        benchmark(lambda: enumerate_join_order(
            bind_select(parse_statement(sql_for(["u", "o", "p"])),
                        (db := star_database()).catalog, db.functions,
                        db.joins),
            CardinalityEstimator(db.cluster)))
        assert data["chosen_order"] == data["best_order"]
        # The acceptance margin: a measurable unit gap, not a tie.
        assert data["chosen_cost"] * 2 < data["worst_cost"]
        assert data["sim_seconds"]["chosen"] <= data["sim_seconds"]["worst"]
        report("optimizer_plan_quality",
               data["table"] + "\n" +
               f"unit margin vs worst order: "
               f"{data['unit_margin_vs_worst']:.1f}x")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the sweep as a JSON artifact")
    args = parser.parse_args(argv)
    data = sweep()
    print(data.pop("table"))
    print(f"unit margin vs worst order: {data['unit_margin_vs_worst']:.1f}x")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
        print(f"artifact written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
