"""Resource governance: budgets, spill-to-disk, admission, breakers.

The acceptance properties pinned down here:

- *Byte-identical spilling*: a query that exceeds its memory budget
  completes by actually serializing overflow state to temp spill files
  and replaying it, and its result rows are byte-identical to the
  unbounded run (order included).
- *Charge parity*: the units charged for a spill are exactly
  ``CostModel.spill_units(total_bytes)`` — the model's prediction and
  the accountant's observed charge agree by construction.
- *Deterministic admission*: the pure simulator and the threaded
  controller enforce the same bounded-FIFO policy; seeded bursts queue,
  time out, and shed the same way every run, and reservations never
  exceed capacity.
- *Breaker semantics*: N consecutive callback failures trip a FUDJ
  library open; later queries fail fast with ``BreakerOpenError`` until
  an explicit reset.
- *Observability*: all of the above surfaces in ``QueryMetrics``,
  ``sys.resources``/``sys.queries``, EXPLAIN ANALYZE, telemetry
  counters, and the shell's ``.budget``/``.breaker`` commands.
"""

import dataclasses
import json
import os
import threading

import pytest

from repro.database import Database
from repro.engine.costs import CostModel
from repro.engine.record import Record, Schema
from repro.engine.resources import (
    AdmissionController,
    CircuitBreaker,
    EntrySpillCodec,
    QueryResources,
    RecordSpillCodec,
    format_bytes,
    parse_bytes,
    simulate_admission,
)
from repro.errors import (
    AdmissionError,
    BreakerOpenError,
    FudjCallbackError,
    PlanError,
    ReproError,
)
from tests.helpers import BandJoin


# -- parsing -------------------------------------------------------------------


class TestParseBytes:
    def test_suffixes(self):
        assert parse_bytes("64kb") == 64 * 2**10
        assert parse_bytes("2mb") == 2 * 2**20
        assert parse_bytes("1.5gb") == 1.5 * 2**30
        assert parse_bytes("100b") == 100.0
        assert parse_bytes("4096") == 4096.0

    def test_numbers_pass_through(self):
        assert parse_bytes(65536) == 65536.0
        assert parse_bytes(1.5) == 1.5

    def test_disabled_spellings(self):
        for text in (None, "", "off", "none", "unlimited", "  OFF  "):
            assert parse_bytes(text) is None

    def test_garbage_raises(self):
        for bad in ("lots", "12qb", "mb", "1.2.3kb"):
            with pytest.raises(ValueError):
                parse_bytes(bad)

    def test_format_round_trip(self):
        for text in ("64kb", "2mb", "3gb", "1000b"):
            assert format_bytes(parse_bytes(text)) == text
        assert format_bytes(None) == "off"

    def test_format_prefers_exact_units(self):
        assert format_bytes(2**20) == "1mb"
        assert format_bytes(2**20 + 1) == f"{2**20 + 1}b"


# -- spill codecs --------------------------------------------------------------


SCHEMA = Schema(["id", "v"])


def make_record(i, v="x"):
    return Record.from_dict(SCHEMA, {"id": i, "v": v})


class TestRecordSpillCodec:
    def test_round_trip(self):
        codec = RecordSpillCodec(SCHEMA)
        record = make_record(7, "hello")
        clone = codec.decode(codec.encode(record))
        assert clone.schema == record.schema
        assert clone.to_dict() == record.to_dict()

    def test_rid_survives_and_is_negative(self):
        codec = RecordSpillCodec(SCHEMA)
        record = make_record(1)
        clone = codec.decode(codec.encode(record))
        assert record.rid is not None and record.rid < 0
        assert clone.rid == record.rid

    def test_size_matches_wire_size(self):
        record = make_record(3, "abc")
        assert RecordSpillCodec(SCHEMA).size(record) == record.serialized_size()

    def test_non_record_pinned(self):
        assert RecordSpillCodec(SCHEMA).encode("not a record") is None

    def test_schema_mismatch_pinned(self):
        codec = RecordSpillCodec(SCHEMA)
        other = Record.from_dict(Schema(["a"]), {"a": 1})
        assert codec.encode(other) is None

    def test_opaque_value_pinned(self):
        from repro.engine.operators.aggregate import RawState

        codec = RecordSpillCodec(None)
        partial = Record(Schema(["__key", "__states"]), (1, RawState([2])))
        assert codec.encode(partial) is None


class TestEntrySpillCodec:
    def test_round_trip_recomputes_key(self):
        codec = EntrySpillCodec(lambda r: ("rekeyed", r.to_dict()["id"]))
        record = make_record(5)
        bucket, key, clone = codec.decode(codec.encode((3, "stale", record)))
        assert bucket == 3
        assert key == ("rekeyed", 5)
        assert clone.to_dict() == record.to_dict()
        assert clone.rid == record.rid

    def test_size_matches_combine_pricing(self):
        record = make_record(2)
        codec = EntrySpillCodec(lambda r: None)
        assert codec.size((0, None, record)) == 9 + record.serialized_size()

    def test_non_int_bucket_pinned(self):
        codec = EntrySpillCodec(lambda r: None)
        assert codec.encode(("b", None, make_record(1))) is None


# -- the accountant ------------------------------------------------------------


class FakeStage:
    def __init__(self, name="stage"):
        self.name = name
        self.charged = {}

    def charge(self, worker, units):
        self.charged[worker] = self.charged.get(worker, 0.0) + units


class FakeTracer:
    enabled = False


class FakeCtx:
    tracer = FakeTracer()


def small_model(budget):
    return dataclasses.replace(CostModel(), worker_memory_bytes=float(budget))


class TestQueryResources:
    def test_observer_mode_returns_items_untouched(self):
        resources = QueryResources(CostModel(), enforce=False)
        items = [make_record(i) for i in range(4)]
        out = resources.admit(FakeCtx(), FakeStage(), 0, items,
                              RecordSpillCodec(SCHEMA))
        assert out is items
        assert resources.spill_files == 0
        assert resources.peak_reserved_bytes == sum(
            r.serialized_size() for r in items
        )

    def test_observer_mode_charges_model_spill_units(self):
        model = small_model(10)
        resources = QueryResources(model, enforce=False)
        stage = FakeStage()
        items = [make_record(i) for i in range(6)]
        total = sum(r.serialized_size() for r in items)
        resources.admit(FakeCtx(), stage, 2, items, RecordSpillCodec(SCHEMA))
        assert total > 10  # the scenario actually overflows
        assert stage.charged[2] == pytest.approx(model.spill_units(total))

    def test_observer_price_false_charges_nothing(self):
        resources = QueryResources(small_model(10), enforce=False)
        stage = FakeStage()
        resources.admit(FakeCtx(), stage, 0, [make_record(1)],
                        RecordSpillCodec(SCHEMA), price=False)
        assert stage.charged == {}

    def test_enforce_spills_and_preserves_order(self):
        resources = QueryResources(small_model(40), enforce=True)
        items = [make_record(i, f"value-{i}") for i in range(8)]
        expected = [r.to_dict() for r in items]
        out = resources.admit(FakeCtx(), FakeStage(), 0, items,
                              RecordSpillCodec(SCHEMA))
        assert resources.spill_files == 1
        assert resources.spill_bytes > 0
        assert resources.spilled_items > 0
        assert [r.to_dict() for r in out] == expected
        # The resident prefix is the original objects; the tail is clones.
        assert out[0] is items[0]
        assert out[-1] is not items[-1]

    def test_enforce_charge_matches_model_even_unpriced(self):
        model = small_model(40)
        resources = QueryResources(model, enforce=True)
        stage = FakeStage()
        items = [make_record(i) for i in range(8)]
        total = sum(r.serialized_size() for r in items)
        resources.admit(FakeCtx(), stage, 1, items, RecordSpillCodec(SCHEMA),
                        price=False)
        assert stage.charged[1] == pytest.approx(model.spill_units(total))
        assert resources.spill_units == pytest.approx(model.spill_units(total))

    def test_enforce_pins_unserializable_items(self):
        from repro.engine.operators.aggregate import RawState

        resources = QueryResources(small_model(30), enforce=True)
        partial_schema = Schema(["__key", "__states"])
        items = [make_record(i) for i in range(4)]
        items.append(Record(partial_schema, (9, RawState([1]))))
        out = resources.admit(FakeCtx(), FakeStage(), 0, items,
                              RecordSpillCodec(SCHEMA))
        assert resources.pinned_items >= 1
        assert out[-1] is items[-1]  # the opaque record stayed resident

    def test_spill_file_removed_after_replay(self):
        resources = QueryResources(small_model(20), enforce=True)
        resources.admit(FakeCtx(), FakeStage(), 0,
                        [make_record(i) for i in range(8)],
                        RecordSpillCodec(SCHEMA))
        assert resources._tempdir is not None
        assert os.listdir(resources._tempdir.name) == []
        resources.close()
        resources.close()  # idempotent
        assert resources._tempdir is None

    def test_peak_tracks_concurrent_worker_reservations(self):
        resources = QueryResources(CostModel(), enforce=False)
        stage = FakeStage()
        a = [make_record(1)]
        b = [make_record(2), make_record(3)]
        resources.admit(FakeCtx(), stage, 0, a, RecordSpillCodec(SCHEMA))
        resources.admit(FakeCtx(), stage, 1, b, RecordSpillCodec(SCHEMA))
        expected = sum(r.serialized_size() for r in a + b)
        assert resources.peak_reserved_bytes == expected


# -- admission: the threaded controller ---------------------------------------


class TestAdmissionController:
    def test_acquire_release_accounting(self):
        controller = AdmissionController(1000.0)
        ticket = controller.acquire(400)
        assert controller.reserved_bytes == 400
        assert controller.running == 1
        controller.release(ticket)
        assert controller.reserved_bytes == 0
        assert controller.running == 0
        assert controller.admitted_total == 1

    def test_oversized_query_clamps_to_capacity(self):
        controller = AdmissionController(1000.0)
        ticket = controller.acquire(50_000)
        assert ticket.reserved_bytes == 1000.0
        controller.release(ticket)

    def test_zero_queue_limit_still_admits_when_it_fits(self):
        controller = AdmissionController(1000.0, queue_limit=0)
        ticket = controller.acquire(100)
        controller.release(ticket)
        assert controller.admitted_total == 1
        assert controller.shed_total == 0

    def test_queue_full_sheds_immediately(self):
        controller = AdmissionController(1000.0, max_concurrent=1,
                                         queue_limit=0)
        ticket = controller.acquire(100)
        with pytest.raises(AdmissionError) as excinfo:
            controller.acquire(100)
        assert excinfo.value.reason == "queue-full"
        assert controller.shed_total == 1
        controller.release(ticket)

    def test_queue_timeout_sheds(self):
        controller = AdmissionController(1000.0, max_concurrent=1,
                                         queue_timeout=0.01)
        ticket = controller.acquire(100)
        with pytest.raises(AdmissionError) as excinfo:
            controller.acquire(100)
        assert excinfo.value.reason == "timeout"
        assert controller.timeout_total == 1
        controller.release(ticket)

    def test_threaded_burst_all_admitted_within_capacity(self):
        controller = AdmissionController(300.0)
        done = []

        def worker():
            ticket = controller.acquire(100)
            done.append(ticket)
            controller.release(ticket)

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(done) == 12
        assert controller.admitted_total == 12
        assert controller.peak_reserved_bytes <= 300.0
        assert controller.reserved_bytes == 0

    def test_snapshot_fields(self):
        snap = AdmissionController(512.0).snapshot()
        assert snap["capacity_bytes"] == 512.0
        for key in ("reserved_bytes", "running", "waiting", "admitted_total",
                    "shed_total", "timeout_total", "peak_reserved_bytes",
                    "peak_queue_depth"):
            assert snap[key] == 0


# -- admission: the pure simulator --------------------------------------------


class TestSimulateAdmission:
    def test_deterministic(self):
        arrivals = [(i * 0.1, 200, 1.0) for i in range(10)]
        a = simulate_admission(arrivals, capacity_bytes=500)
        b = simulate_admission(arrivals, capacity_bytes=500)
        assert a == b

    def test_everything_fits_runs_immediately(self):
        result = simulate_admission([(0.0, 100, 1.0), (0.0, 100, 1.0)],
                                    capacity_bytes=1000)
        assert result["admitted"] == 2
        assert result["max_queue_seconds"] == 0.0

    def test_contention_queues_fifo(self):
        result = simulate_admission(
            [(0.0, 400, 2.0), (0.1, 400, 1.0), (0.2, 400, 1.0)],
            capacity_bytes=500,
        )
        outcomes = result["outcomes"]
        assert [o["outcome"] for o in outcomes] == ["admitted"] * 3
        # Strict FIFO: the second arrival starts when the first finishes,
        # the third when the second finishes.
        assert outcomes[1]["start"] == pytest.approx(2.0)
        assert outcomes[2]["start"] == pytest.approx(3.0)
        assert outcomes[1]["queue_seconds"] == pytest.approx(1.9)

    def test_queue_full_sheds(self):
        result = simulate_admission(
            [(0.0, 500, 10.0), (0.1, 500, 1.0), (0.2, 500, 1.0)],
            capacity_bytes=500, queue_limit=1,
        )
        assert [o["outcome"] for o in result["outcomes"]] == [
            "admitted", "admitted", "queue-full",
        ]
        assert result["shed"] == 1

    def test_timeout_sheds_waiters(self):
        result = simulate_admission(
            [(0.0, 500, 10.0), (0.1, 500, 1.0)],
            capacity_bytes=500, queue_timeout=0.5,
        )
        assert result["outcomes"][1]["outcome"] == "timeout"
        assert result["outcomes"][1]["queue_seconds"] == pytest.approx(0.5)
        assert result["timeouts"] == 1

    def test_reservations_never_exceed_capacity(self):
        arrivals = [(i * 0.05, 150 + 37 * (i % 5), 0.7) for i in range(40)]
        result = simulate_admission(arrivals, capacity_bytes=600,
                                    queue_limit=8, queue_timeout=2.0)
        assert result["peak_reserved_bytes"] <= 600
        assert result["admitted"] + result["shed"] == 40

    def test_max_concurrent_limits_running(self):
        result = simulate_admission(
            [(0.0, 10, 1.0), (0.0, 10, 1.0), (0.0, 10, 1.0)],
            capacity_bytes=1000, max_concurrent=1,
        )
        starts = sorted(o["start"] for o in result["outcomes"])
        assert starts == [pytest.approx(0.0), pytest.approx(1.0),
                          pytest.approx(2.0)]


# -- circuit breaker -----------------------------------------------------------


class TestCircuitBreaker:
    def test_disabled_is_noop(self):
        breaker = CircuitBreaker(threshold=None)
        assert not breaker.enabled
        for _ in range(10):
            breaker.record_failure("j")
        breaker.check("j")  # never raises
        assert breaker.snapshot()["open"] == []

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            breaker.record_failure("j")
        breaker.check("j")  # still closed
        breaker.record_failure("j")
        assert breaker.trips == 1
        with pytest.raises(BreakerOpenError) as excinfo:
            breaker.check("j")
        assert excinfo.value.join_name == "j"
        assert excinfo.value.threshold == 3
        assert breaker.rejections == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure("j")
        breaker.record_failure("j")
        breaker.record_success("j")
        breaker.record_failure("j")
        breaker.check("j")  # 1 consecutive failure, not 3

    def test_state_is_per_library(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("bad")
        breaker.check("good")
        with pytest.raises(BreakerOpenError):
            breaker.check("bad")

    def test_reset_closes(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("a")
        breaker.record_failure("b")
        breaker.reset("a")
        breaker.check("a")
        with pytest.raises(BreakerOpenError):
            breaker.check("b")
        breaker.reset()
        breaker.check("b")


# -- end-to-end: budgeted execution -------------------------------------------


class ExplodingJoin(BandJoin):
    """A FUDJ library whose verify callback always fails."""

    name = "exploding"

    def verify(self, key1, key2, pplan):
        raise ValueError("boom")


def make_db(**kwargs):
    db = Database(num_partitions=4, **kwargs)
    db.create_type("T", [("id", "int"), ("k", "float"), ("pad", "string")])
    db.create_dataset("L", "T", "id")
    db.create_dataset("R", "T", "id")
    db.load("L", [{"id": i, "k": float(i % 7), "pad": "x" * 40}
                  for i in range(60)])
    db.load("R", [{"id": i, "k": float(i % 5) + 0.2, "pad": "y" * 40}
                  for i in range(60)])
    db.create_join("band_join", BandJoin, defaults=(1.0, 4))
    db.create_join("exploding", ExplodingJoin, defaults=(1.0, 4))
    return db


SQL = "SELECT l.id, r.id FROM L l, R r WHERE band_join(l.k, r.k)"
BAD_SQL = "SELECT l.id, r.id FROM L l, R r WHERE exploding(l.k, r.k)"


def row_list(result):
    return [tuple(sorted(row.items())) for row in result.rows]


class TestBudgetedExecution:
    def test_budgeted_rows_byte_identical_and_spill_observed(self):
        unbounded = make_db().execute(SQL)
        db = make_db(memory_budget="512b")
        budgeted = db.execute(SQL)
        assert row_list(budgeted) == row_list(unbounded)
        assert budgeted.metrics.spill_files > 0
        assert budgeted.metrics.spill_bytes > 0
        assert budgeted.metrics.peak_reserved_bytes > 0

    def test_budget_rewrites_cost_model_worker_memory(self):
        db = make_db(memory_budget="512b")
        assert db.cluster.cost_model.worker_memory_bytes == 512.0
        db.set_memory_budget("4kb")
        assert db.cluster.cost_model.worker_memory_bytes == 4096.0
        db.set_memory_budget(None)
        assert db.memory_budget is None

    def test_ungoverned_metrics_stay_zero(self):
        result = make_db().execute(SQL)
        assert result.metrics.spill_files == 0
        assert result.metrics.spill_bytes == 0.0
        assert result.metrics.queue_seconds == 0.0

    def test_metrics_dict_and_summary_line(self):
        db = make_db(memory_budget="512b")
        metrics = db.execute(SQL).metrics
        summary = metrics.to_dict()
        for key in ("peak_reserved_bytes", "spill_bytes", "spill_files",
                    "queue_seconds"):
            assert key in summary
        assert "spill files" in metrics.profile()

    def test_bad_budget_rejected(self):
        with pytest.raises(PlanError):
            Database(memory_budget="lots")
        with pytest.raises(PlanError):
            Database(memory_budget=-5)

    def test_explain_analyze_reports_governance(self):
        db = make_db(memory_budget="512b", breaker_threshold=3)
        result = db.execute("EXPLAIN ANALYZE " + SQL)
        text = "\n".join(row["plan"] for row in result.rows)
        assert "resources: budget 512b/worker" in text
        assert "admission: capacity" in text
        assert "breaker: threshold 3" in text

    def test_explain_analyze_silent_without_governance(self):
        result = make_db().execute("EXPLAIN ANALYZE " + SQL)
        text = "\n".join(row["plan"] for row in result.rows)
        assert "resources:" not in text
        assert "admission:" not in text

    def test_sys_resources_table(self):
        db = make_db(memory_budget="512b", breaker_threshold=3)
        db.execute(SQL)
        rows = db.execute("SELECT r.component, r.name, r.value "
                          "FROM sys.resources r").rows
        triples = {(row["r.component"], row["r.name"]) for row in rows}
        assert ("budget", "memory_budget_bytes") in triples
        assert ("admission", "admitted_total") in triples
        assert ("breaker", "threshold") in triples
        by_name = {(row["r.component"], row["r.name"]): row["r.value"]
                   for row in rows}
        assert by_name[("budget", "memory_budget_bytes")] == 512.0

    def test_telemetry_spill_counters(self):
        db = make_db(memory_budget="512b")
        db.execute(SQL)
        snapshot = json.loads(db.metrics_snapshot("json"))
        text = json.dumps(snapshot)
        assert "fudj_spill_bytes_total" in text
        assert "fudj_admission_total" in text

    def test_history_records_peak_reserved(self):
        db = make_db(memory_budget="512b")
        db.execute(SQL)
        rows = db.execute(
            "SELECT q.peak_reserved_bytes, q.spill_files FROM sys.queries q"
        ).rows
        assert any(row["q.peak_reserved_bytes"] > 0 for row in rows)
        assert any(row["q.spill_files"] > 0 for row in rows)


class TestAdmissionIntegration:
    def test_queue_full_shed_is_typed_and_logged(self):
        db = make_db(memory_budget="64kb", max_concurrent=1, queue_limit=0)
        ticket = db.admission.acquire(10)
        with pytest.raises(AdmissionError):
            db.execute(SQL)
        db.admission.release(ticket)
        statuses = [row["q.status"] for row in
                    db.execute("SELECT q.status FROM sys.queries q").rows]
        assert "shed" in statuses

    def test_queue_timeout_shed(self):
        db = make_db(memory_budget="64kb", max_concurrent=1,
                     queue_timeout=0.01)
        ticket = db.admission.acquire(10)
        with pytest.raises(AdmissionError) as excinfo:
            db.execute(SQL)
        assert excinfo.value.reason == "timeout"
        db.admission.release(ticket)

    def test_normal_queries_admitted_and_released(self):
        db = make_db(memory_budget="64kb")
        db.execute(SQL)
        db.execute(SQL)
        snap = db.admission.snapshot()
        assert snap["admitted_total"] >= 2
        assert snap["running"] == 0
        assert snap["reserved_bytes"] == 0


class TestBreakerIntegration:
    def test_breaker_trips_then_fails_fast_then_resets(self):
        db = make_db(breaker_threshold=2)
        for _ in range(2):
            with pytest.raises(FudjCallbackError):
                db.execute(BAD_SQL)
        assert db.breaker.snapshot()["open"]
        with pytest.raises(BreakerOpenError):
            db.execute(BAD_SQL)
        statuses = [row["q.status"] for row in
                    db.execute("SELECT q.status FROM sys.queries q").rows]
        assert "rejected" in statuses
        db.breaker.reset()
        # Closed again: the query reaches the callback and fails slow.
        with pytest.raises(FudjCallbackError):
            db.execute(BAD_SQL)

    def test_healthy_library_unaffected(self):
        db = make_db(breaker_threshold=2)
        for _ in range(2):
            with pytest.raises(FudjCallbackError):
                db.execute(BAD_SQL)
        assert len(db.execute(SQL)) > 0  # band_join still closed

    def test_no_threshold_no_breaker(self):
        db = make_db()
        assert db.breaker is None
        for _ in range(3):
            with pytest.raises(FudjCallbackError):
                db.execute(BAD_SQL)  # never trips


# -- shell + CLI ---------------------------------------------------------------


class TestShellAndCli:
    def _shell(self, **kwargs):
        from repro.cli import Shell

        lines = []
        shell = Shell(db=make_db(**kwargs), write=lines.append)
        return shell, lines

    def test_budget_dot_command_round_trip(self):
        shell, lines = self._shell()
        shell.feed(".budget")
        assert "budget = off" in lines
        shell.feed(".budget 64kb")
        assert shell.db.memory_budget == 64 * 2**10
        assert "budget = 64kb" in lines
        shell.feed(".budget off")
        assert shell.db.memory_budget is None

    def test_budget_bad_value_reports_error(self):
        shell, lines = self._shell()
        shell.feed(".budget lots")
        assert any("error" in str(line) for line in lines)
        assert shell.db.memory_budget is None

    def test_breaker_dot_command(self):
        shell, lines = self._shell(breaker_threshold=2)
        shell.feed(".breaker")
        assert any("threshold = 2" in str(line) for line in lines)
        shell.db.breaker.record_failure("exploding")
        shell.db.breaker.record_failure("exploding")
        shell.feed(".breaker show")
        assert any("exploding" in str(line) for line in lines)
        shell.feed(".breaker reset")
        assert shell.db.breaker.snapshot()["open"] == []

    def test_breaker_off_message(self):
        shell, lines = self._shell()
        shell.feed(".breaker")
        assert any("breaker = off" in str(line) for line in lines)

    def test_memory_budget_cli_flag(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "s.sql"
        script.write_text("CREATE TYPE T { id: int };\n")
        assert main(["--memory-budget", "64kb", str(script)]) == 0
        out = capsys.readouterr().out
        assert "memory budget active: 64kb" in out

    def test_memory_budget_flag_rejects_garbage(self, capsys):
        from repro.cli import main

        assert main(["--memory-budget", "lots"]) == 1
        assert "memory budget" in capsys.readouterr().err

    def test_demo_preserves_budget_and_breaker(self):
        shell, _ = self._shell(memory_budget="1mb", breaker_threshold=4)
        breaker = shell.db.breaker
        shell._load_demo("interval")
        assert shell.db.memory_budget == 2**20
        assert shell.db.breaker is breaker
