"""Telemetry layer: metrics registry, query history, ``sys.*`` tables.

The acceptance properties pinned down here:

- identical sessions produce **byte-identical** snapshots (Prometheus
  text and canonical JSON), including under seeded fault injection;
- ``sys.queries`` / ``sys.stages`` / ``sys.callbacks`` / ``sys.metrics``
  are reachable through plain SQL (the normal binder -> planner -> scan
  path), with ``SELECT *``, WHERE, and GROUP BY;
- telemetry charges **zero** cost-model units: a fresh database that
  never ran a query snapshots with every counter at 0, and snapshotting
  does not move a query's simulated seconds;
- history retention is bounded — the oldest record is evicted first and
  ``sys.queries`` row counts track the retained window exactly.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import Shell, main as cli_main
from repro.database import Database
from repro.engine.faults import FaultPlan
from repro.engine.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QueryHistory,
    SYS_TABLES,
    TelemetryError,
    phase_of,
    stage_op,
)
from repro.errors import CatalogError, QueryTimeoutError, ReproError


def make_db(**kwargs):
    db = Database(num_partitions=4, cores=4, **kwargs)
    db.execute("CREATE TYPE T { id: int, k: int, v: int }")
    db.execute("CREATE DATASET L(T) PRIMARY KEY id")
    db.execute("CREATE DATASET R(T) PRIMARY KEY id")
    db.load("L", [{"id": i, "k": i % 3, "v": i} for i in range(24)])
    db.load("R", [{"id": i, "k": i % 3, "v": i * 2} for i in range(16)])
    return db


JOIN_SQL = "SELECT l.id, r.v FROM L l, R r WHERE l.k = r.k"
GROUP_SQL = "SELECT l.k, COUNT(1) AS n FROM L l GROUP BY l.k"


def run_workload(db):
    db.execute(JOIN_SQL)
    db.execute(GROUP_SQL, trace=True)
    with pytest.raises(ReproError):
        db.execute("SELECT x.nope FROM Missing x")
    return db


# -- the registry primitives ---------------------------------------------------


class TestRegistry:
    def test_counter_accumulates_and_labels(self):
        c = Counter("hits", "", labelnames=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 1
        assert c.value(kind="zzz") == 0

    def test_counter_rejects_decrease_and_bad_labels(self):
        c = Counter("hits", "", labelnames=("kind",))
        with pytest.raises(TelemetryError):
            c.inc(-1, kind="a")
        with pytest.raises(TelemetryError):
            c.inc(wrong="a")
        with pytest.raises(TelemetryError):
            c.inc()

    def test_gauge_sets_and_decrements(self):
        g = Gauge("depth", "")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("lat", "", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        ((_, series),) = h.samples()
        assert series["counts"] == [1, 2]  # le=1: 1; le=10: 2
        assert series["count"] == 3
        assert series["sum"] == 55.5

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(TelemetryError):
            Histogram("h", "", buckets=(2.0, 1.0))
        with pytest.raises(TelemetryError):
            Histogram("h", "", buckets=())

    def test_get_or_create_and_kind_conflict(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        with pytest.raises(TelemetryError):
            r.gauge("x")

    def test_reset_keeps_families(self):
        r = MetricsRegistry()
        r.counter("x").inc(5)
        r.reset()
        assert r.counter("x").value() == 0
        assert [f.name for f in r.families()] == ["x"]

    def test_prometheus_exposition_shape(self):
        r = MetricsRegistry()
        r.counter("req_total", "Requests.", ("kind",)).inc(3, kind="q")
        r.histogram("lat", "", buckets=(1.0,)).observe(0.5)
        text = r.to_prometheus()
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{kind="q"} 3' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.5" in text
        assert "lat_count 1" in text

    def test_json_is_canonical(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.counter("a").inc()
        snapshot = json.loads(r.to_json())
        assert snapshot["format"] == "fudj-metrics"
        assert [f["name"] for f in snapshot["families"]] == ["a", "b"]


class TestStagePhaseLabels:
    def test_instance_ids_are_stripped(self):
        assert stage_op("scan#12") == "scan"
        assert stage_op("fudj-join#5/assign-left") == "assign-left"
        assert stage_op("fudj-join#5/summarize-right") == "summarize-right"

    def test_phase_classification(self):
        assert phase_of("summarize-left") == "summarize"
        assert phase_of("pplan") == "summarize"
        assert phase_of("assign-right") == "partition"
        for op in ("xleft", "xright", "combine", "dedup", "spread",
                   "broadcast", "route"):
            assert phase_of(op) == "combine"
        assert phase_of("scan") == "other"


# -- history -------------------------------------------------------------------


class TestQueryHistory:
    def test_eviction_is_oldest_first(self):
        h = QueryHistory(limit=3)
        for i in range(5):
            h.append({"id": i})
        assert [e["id"] for e in h.entries()] == [2, 3, 4]
        assert h.evicted == 2
        assert h.total_recorded == 5

    def test_shrinking_limit_trims(self):
        h = QueryHistory(limit=10)
        for i in range(6):
            h.append({"id": i})
        h.set_limit(2)
        assert [e["id"] for e in h.entries()] == [4, 5]

    def test_limit_must_be_positive(self):
        with pytest.raises(TelemetryError):
            QueryHistory(limit=0)
        with pytest.raises(TelemetryError):
            Database(history_limit=0)


# -- determinism ---------------------------------------------------------------


class TestDeterminism:
    def test_identical_sessions_snapshot_byte_identically(self):
        a, b = run_workload(make_db()), run_workload(make_db())
        assert a.metrics_snapshot() == b.metrics_snapshot()
        assert (a.metrics_snapshot("prometheus")
                == b.metrics_snapshot("prometheus"))

    def test_identical_under_fault_injection(self):
        def session():
            db = make_db(fault_plan=FaultPlan.parse("7:0.05"))
            db.execute(JOIN_SQL)
            db.execute(GROUP_SQL, trace=True)
            return db

        a, b = session(), session()
        assert a.metrics_snapshot() == b.metrics_snapshot()
        assert (a.metrics_snapshot("prometheus")
                == b.metrics_snapshot("prometheus"))
        # Faults actually fired — the retry counters are live, not zero.
        prom = a.metrics_snapshot("prometheus")
        assert "fudj_task_retries_total" in prom

    def test_registry_carries_no_wall_clocks(self):
        db = run_workload(make_db())
        snapshot = json.loads(db.metrics_snapshot())
        names = {f["name"] for f in snapshot["families"]}
        assert not any("wall" in name for name in names)

    def test_unknown_format_rejected(self):
        with pytest.raises(TelemetryError):
            make_db().metrics_snapshot("xml")


# -- zero cost -----------------------------------------------------------------


class TestZeroCost:
    def test_fresh_database_has_zero_charged_units(self):
        db = Database()
        snapshot = json.loads(db.metrics_snapshot())
        for family in snapshot["families"]:
            if family["name"] == "fudj_build_info":
                continue  # an info gauge: constitutionally 1, never a cost
            for sample in family["samples"]:
                assert sample.get("value", 0) == 0
                assert sample.get("count", 0) == 0

    def test_snapshotting_does_not_move_simulated_seconds(self):
        plain = make_db().execute(JOIN_SQL)
        observed_db = make_db()
        observed_db.metrics_snapshot()
        observed_db.metrics_snapshot("prometheus")
        observed = observed_db.execute(JOIN_SQL)
        observed_db.metrics_snapshot()
        assert (observed.metrics.simulated_seconds(12)
                == plain.metrics.simulated_seconds(12))
        assert (observed.metrics.total_cpu_units()
                == plain.metrics.total_cpu_units())

    def test_recording_charges_nothing(self):
        db = make_db()
        units = db.execute(JOIN_SQL).metrics.total_cpu_units()
        counted = db.telemetry.registry.counter("fudj_cpu_units_total")
        assert counted.value() == pytest.approx(units)


# -- recording -----------------------------------------------------------------


class TestRecording:
    def test_statuses_and_error_classes(self):
        db = run_workload(make_db())
        by_id = {e["id"]: e for e in db.telemetry.history.entries()}
        assert by_id[4]["status"] == "ok" and by_id[4]["kind"] == "select"
        assert by_id[6]["status"] == "error"
        assert by_id[6]["error_type"] == "CatalogError"
        assert "Missing" in by_id[6]["error"]

    def test_timeout_status(self):
        db = make_db()
        with pytest.raises(QueryTimeoutError):
            db.execute(JOIN_SQL, query_timeout=1e-9)
        entry = db.telemetry.history.entries()[-1]
        assert entry["status"] == "timeout"
        assert entry["error_type"] == "QueryTimeoutError"

    def test_parse_error_is_recorded_as_invalid(self):
        db = Database()
        with pytest.raises(ReproError):
            db.execute("SELEC nonsense")
        entry = db.telemetry.history.entries()[-1]
        assert entry["kind"] == "invalid"
        assert entry["status"] == "error"

    def test_phase_units_sum_to_cpu_units(self):
        db = make_db()
        db.execute(JOIN_SQL)
        entry = db.telemetry.history.entries()[-1]
        total = (entry["summarize_units"] + entry["partition_units"]
                 + entry["combine_units"] + entry["other_units"])
        assert total == pytest.approx(entry["cpu_units"])

    def test_ddl_is_recorded(self):
        db = Database()
        db.execute("CREATE TYPE T { id: int }")
        db.execute("CREATE DATASET D(T) PRIMARY KEY id")
        kinds = [e["kind"] for e in db.telemetry.history.entries()]
        assert kinds == ["create_type", "create_dataset"]
        counter = db.telemetry.registry.counter(
            "fudj_statements_total", labelnames=("kind",))
        assert counter.value(kind="create_type") == 1

    def test_reset_zeroes_registry_and_history(self):
        db = run_workload(make_db())
        db.telemetry.reset()
        assert len(db.telemetry.history) == 0
        assert db.execute("SELECT * FROM sys.queries").rows == []
        counter = db.telemetry.registry.counter("fudj_rows_returned_total")
        assert counter.value() == 0


# -- sys.* tables through SQL --------------------------------------------------


class TestSysTables:
    def test_select_star_from_sys_queries(self):
        db = run_workload(make_db())
        result = db.execute("SELECT * FROM sys.queries")
        assert result.schema == tuple(n for n, _ in SYS_TABLES["sys.queries"])
        assert len(result.rows) == 6  # the workload's statements
        assert result.rows[0]["kind"] == "create_type"

    def test_where_and_group_by(self):
        db = run_workload(make_db())
        errors = db.execute(
            "SELECT q.sql FROM sys.queries q WHERE q.status = 'error'"
        )
        assert len(errors.rows) == 1 and "Missing" in errors.rows[0]["q.sql"]
        grouped = db.execute(
            "SELECT q.status, COUNT(1) AS n FROM sys.queries q "
            "GROUP BY q.status"
        )
        counts = {row["q.status"]: row["n"] for row in grouped.rows}
        # 5 ok from the workload + the errors-query scan above (recorded
        # by the time this one runs; a scan never sees *itself*).
        assert counts == {"ok": 6, "error": 1}

    def test_sys_stages_phases(self):
        db = make_db()
        db.execute(JOIN_SQL)
        result = db.execute(
            "SELECT s.phase, SUM(s.cpu_units) AS units FROM sys.stages s "
            "GROUP BY s.phase"
        )
        phases = {row["s.phase"]: row["units"] for row in result.rows}
        assert set(phases) <= {"summarize", "partition", "combine", "other"}
        assert sum(phases.values()) > 0

    def test_sys_callbacks_only_for_traced_queries(self):
        db = make_db()
        db.execute(JOIN_SQL)  # untraced: no callback rows
        assert db.execute("SELECT * FROM sys.callbacks").rows == []

    def test_sys_metrics_matches_registry(self):
        db = run_workload(make_db())
        counter = db.telemetry.registry.counter("fudj_rows_returned_total")
        before = counter.value()  # the scan adds its own rows afterwards
        result = db.execute(
            "SELECT m.value FROM sys.metrics m "
            "WHERE m.metric = 'fudj_rows_returned_total'"
        )
        assert result.rows[0]["m.value"] == before

    def test_scan_sees_history_before_itself(self):
        db = Database()
        first = db.execute("SELECT * FROM sys.queries")
        assert first.rows == []  # not yet recorded when it scanned
        second = db.execute("SELECT * FROM sys.queries")
        assert len(second.rows) == 1
        assert second.rows[0]["sql"] == "SELECT * FROM sys.queries"

    def test_sys_tables_joinable_with_explain(self):
        db = run_workload(make_db())
        joined = db.execute(
            "SELECT q.sql, s.op FROM sys.queries q, sys.stages s "
            "WHERE q.id = s.query_id AND s.phase = 'combine'"
        )
        assert joined.rows and all("SELECT" in r["q.sql"]
                                   for r in joined.rows)
        plan = db.explain("SELECT * FROM sys.queries")
        assert "sys.queries" in plan

    def test_virtual_tables_are_protected(self):
        db = Database()
        with pytest.raises(ReproError):
            db.execute("DROP DATASET sys.queries")
        db.execute("CREATE TYPE T { id: int }")
        with pytest.raises(ReproError):
            db.create_dataset("sys.queries", "T", "id")
        assert "sys.queries" not in db.catalog.dataset_names()
        assert db.catalog.has_dataset("sys.queries")

    def test_every_registered_table_binds(self):
        db = Database()
        for name in SYS_TABLES:
            result = db.execute(f"SELECT * FROM {name}")
            assert result.schema == tuple(n for n, _ in SYS_TABLES[name])


# -- retention property --------------------------------------------------------


class TestRetentionProperty:
    @settings(max_examples=25, deadline=None)
    @given(limit=st.integers(min_value=1, max_value=12),
           statements=st.integers(min_value=0, max_value=30))
    def test_sys_queries_row_count_tracks_retention(self, limit, statements):
        db = Database(history_limit=limit)
        for _ in range(statements):
            try:
                db.execute("SELECT x.f FROM Nope x")
            except CatalogError:
                pass
        rows = db.execute("SELECT * FROM sys.queries").rows
        # The scan never sees itself: it shows only the prior statements.
        assert len(rows) == min(statements, limit)
        # The retained window is the most recent `limit` statements
        # (row order is partition order, so compare as a set of ids).
        ids = sorted(row["id"] for row in rows)
        assert ids == list(range(statements - len(rows) + 1,
                                 statements + 1))
        # The scan itself is on record by now (statement number
        # ``statements + 1``), so the live bookkeeping includes it.
        assert (db.telemetry.history.evicted
                == max(0, statements + 1 - limit))
        gauge = db.telemetry.registry.gauge("fudj_history_entries")
        assert gauge.value() == min(statements + 1, limit)


# -- the canonical metrics dict ------------------------------------------------


class TestMetricsDict:
    def test_query_result_to_dict(self):
        db = make_db()
        result = db.execute(GROUP_SQL)
        summary = result.to_dict(cores=4)
        assert summary["rows"] == 3
        assert summary["schema"] == ["l.k", "n"]
        assert summary["metrics"]["simulated_seconds"] == (
            result.metrics.simulated_seconds(4))
        assert summary["metrics"]["cpu_units"] == (
            result.metrics.total_cpu_units())

    def test_summary_is_an_alias(self):
        db = make_db()
        metrics = db.execute(GROUP_SQL).metrics
        assert metrics.summary() == metrics.to_dict()


# -- shell + CLI surfaces ------------------------------------------------------


class TestShellMetrics:
    def shell(self):
        lines = []
        return Shell(write=lines.append), lines

    def test_metrics_show(self):
        shell, lines = self.shell()
        shell.run_statement("SELECT q.id FROM sys.queries q")
        shell._dot_command(".metrics")
        text = "\n".join(str(line) for line in lines)
        assert "fudj_statements_total" in text
        assert 'fudj_queries_total{status="ok"} 1' in text

    def test_metrics_save_formats(self, tmp_path):
        shell, lines = self.shell()
        shell.run_statement("SELECT q.id FROM sys.queries q")
        json_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        shell._dot_command(f".metrics save {json_path}")
        shell._dot_command(f".metrics save {prom_path}")
        json.loads(json_path.read_text())  # valid canonical JSON
        assert "# TYPE" in prom_path.read_text()

    def test_metrics_reset_and_usage(self):
        shell, lines = self.shell()
        shell.run_statement("SELECT q.id FROM sys.queries q")
        shell._dot_command(".metrics reset")
        assert len(shell.db.telemetry.history) == 0
        shell._dot_command(".metrics bogus")
        assert any("usage" in str(line) for line in lines)

    def test_cli_metrics_out_flag(self, tmp_path):
        script = tmp_path / "s.sql"
        script.write_text("CREATE TYPE T { id: int };\n")
        out = tmp_path / "metrics.json"
        assert cli_main([ "--metrics-out", str(out), str(script)]) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["format"] == "fudj-metrics"

    def test_cli_metrics_out_needs_path(self, capsys):
        assert cli_main(["--metrics-out"]) == 1
