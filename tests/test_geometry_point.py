"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry import Point


class TestPoint:
    def test_coordinates(self):
        p = Point(3.0, 4.0)
        assert p.x == 3.0
        assert p.y == 4.0

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert Point(1.0, 2.0) != Point(2.0, 1.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))

    def test_ordering_is_lexicographic(self):
        assert Point(1.0, 5.0) < Point(2.0, 0.0)
        assert Point(1.0, 1.0) < Point(1.0, 2.0)

    def test_immutability(self):
        p = Point(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.x = 5.0

    def test_mbr_is_degenerate_rectangle(self):
        mbr = Point(2.0, 3.0).mbr()
        assert mbr.as_tuple() == (2.0, 3.0, 2.0, 3.0)
        assert mbr.area == 0.0

    def test_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == 5.0
        assert Point(1.0, 1.0).distance_to(Point(1.0, 1.0)) == 0.0

    def test_distance_is_symmetric(self):
        a, b = Point(-1.5, 2.0), Point(4.0, -3.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translate(self):
        assert Point(1.0, 2.0).translate(3.0, -1.0) == Point(4.0, 1.0)

    def test_as_tuple(self):
        assert Point(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_sorting_points(self):
        points = [Point(2, 1), Point(1, 2), Point(1, 1)]
        assert sorted(points) == [Point(1, 1), Point(1, 2), Point(2, 1)]
