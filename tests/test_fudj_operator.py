"""Tests for the FudjJoin physical operator (the Figure 8 plan)."""

import random

from repro.core import DuplicateElimination
from repro.engine import Cluster, Schema
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan
from repro.engine.operators import FudjJoin, Scan
from repro.serde.values import unbox
from tests.helpers import BandJoin, ModEquiJoin, nested_loop_band


def band_cluster(left_keys, right_keys, partitions=4):
    cluster = Cluster(num_partitions=partitions)
    left = cluster.create_dataset("L", Schema(["id", "k"]), "id")
    left.bulk_load({"id": i, "k": k} for i, k in enumerate(left_keys))
    right = cluster.create_dataset("R", Schema(["id", "k"]), "id")
    right.bulk_load({"id": i, "k": k} for i, k in enumerate(right_keys))
    return cluster


def lkey(record):
    return unbox(record["l.k"])


def rkey(record):
    return unbox(record["r.k"])


def run_band(left_keys, right_keys, join, **kwargs):
    cluster = band_cluster(left_keys, right_keys)
    op = FudjJoin(Scan("L", "l"), Scan("R", "r"), join, lkey, rkey, **kwargs)
    result = execute_plan(op, cluster)
    return sorted((row["l.k"], row["r.k"]) for row in result.rows)


class TestSingleJoinPath:
    def test_matches_ground_truth(self):
        rng = random.Random(42)
        left = [round(rng.uniform(0, 40), 3) for _ in range(80)]
        right = [round(rng.uniform(0, 40), 3) for _ in range(80)]
        got = run_band(left, right, BandJoin(1.0, 8))
        assert got == nested_loop_band(left, right, 1.0)

    def test_no_duplicates_despite_multi_assign(self):
        left = [10.0]
        right = [10.1]
        # Band window spans several buckets; pair must appear exactly once.
        got = run_band(left * 1, right, BandJoin(5.0, 8))
        assert got == [(10.0, 10.1)]

    def test_elimination_strategy_same_result(self):
        rng = random.Random(43)
        left = [round(rng.uniform(0, 20), 3) for _ in range(50)]
        right = [round(rng.uniform(0, 20), 3) for _ in range(50)]
        avoid = run_band(left, right, BandJoin(1.0, 8))
        elim = run_band(left, right, BandJoin(1.0, 8),
                        dedup=DuplicateElimination())
        assert avoid == elim

    def test_elimination_adds_a_shuffle_stage(self):
        cluster = band_cluster([1.0, 2.0], [1.5])
        op = FudjJoin(Scan("L", "l"), Scan("R", "r"), BandJoin(1.0, 4),
                      lkey, rkey, dedup=DuplicateElimination())
        ctx = ExecutionContext(cluster)
        op.execute(ctx)
        stage_names = [s.name for s in ctx.metrics.stages]
        assert any("dedup-shuffle" in name for name in stage_names)

    def test_empty_sides(self):
        assert run_band([], [1.0], BandJoin(1.0, 4)) == []
        assert run_band([1.0], [], BandJoin(1.0, 4)) == []


class TestMultiJoinPath:
    class ThetaBand(BandJoin):
        def match(self, b1, b2):
            return abs(b1 - b2) <= 1

    def test_matches_ground_truth(self):
        rng = random.Random(44)
        left = [round(rng.uniform(0, 30), 3) for _ in range(60)]
        right = [round(rng.uniform(0, 30), 3) for _ in range(60)]
        got = run_band(left, right, self.ThetaBand(1.0, 8))
        assert got == nested_loop_band(left, right, 1.0)

    def test_uses_broadcast_plan(self):
        cluster = band_cluster([1.0], [2.0])
        op = FudjJoin(Scan("L", "l"), Scan("R", "r"), self.ThetaBand(1.0, 4),
                      lkey, rkey)
        ctx = ExecutionContext(cluster)
        op.execute(ctx)
        stage_names = [s.name for s in ctx.metrics.stages]
        assert any("broadcast" in name for name in stage_names)
        assert any("spread" in name for name in stage_names)


class TestTranslationLayer:
    def test_translate_counts_conversions(self):
        cluster = band_cluster([1.0, 2.0, 3.0], [1.5, 2.5])
        op = FudjJoin(Scan("L", "l"), Scan("R", "r"), BandJoin(1.0, 4),
                      lkey, rkey, translate=True)
        ctx = ExecutionContext(cluster)
        op.execute(ctx)
        metrics = ctx.finish()
        # summarize (5) + assign (5) at minimum.
        assert metrics.translation_conversions >= 10

    def test_no_translate_counts_nothing(self):
        cluster = band_cluster([1.0, 2.0, 3.0], [1.5, 2.5])
        op = FudjJoin(Scan("L", "l"), Scan("R", "r"), BandJoin(1.0, 4),
                      lkey, rkey, translate=False)
        ctx = ExecutionContext(cluster)
        op.execute(ctx)
        assert ctx.finish().translation_conversions == 0

    def test_translate_costs_more_cpu(self):
        keys = [float(i) for i in range(100)]
        cluster = band_cluster(keys, keys)
        ctx_a = ExecutionContext(cluster)
        FudjJoin(Scan("L", "l"), Scan("R", "r"), BandJoin(0.5, 8),
                 lkey, rkey, translate=True).execute(ctx_a)
        ctx_b = ExecutionContext(cluster)
        FudjJoin(Scan("L", "l"), Scan("R", "r"), BandJoin(0.5, 8),
                 lkey, rkey, translate=False).execute(ctx_b)
        assert ctx_a.metrics.total_cpu_units() > ctx_b.metrics.total_cpu_units()


class TestSelfJoinOptimization:
    def test_summarize_once_produces_same_result(self):
        keys = [float(i) for i in range(40)]
        cluster = band_cluster(keys, keys)
        normal = FudjJoin(Scan("L", "l"), Scan("R", "r"), BandJoin(1.0, 8),
                          lkey, rkey, self_join=False)
        once = FudjJoin(Scan("L", "l"), Scan("R", "r"), BandJoin(1.0, 8),
                        lkey, rkey, self_join=True)
        a = execute_plan(normal, cluster)
        b = execute_plan(once, cluster)
        assert sorted(map(tuple, (r.items() for r in a.rows))) == sorted(
            map(tuple, (r.items() for r in b.rows))
        )

    def test_summarize_once_skips_a_stage(self):
        keys = [float(i) for i in range(10)]
        cluster = band_cluster(keys, keys)
        op = FudjJoin(Scan("L", "l"), Scan("R", "r"), BandJoin(1.0, 4),
                      lkey, rkey, self_join=True)
        ctx = ExecutionContext(cluster)
        op.execute(ctx)
        names = [s.name for s in ctx.metrics.stages]
        assert not any("summarize-right" in n for n in names)
